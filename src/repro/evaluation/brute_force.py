"""Exact (brute-force) solvers for tiny instances.

The k-center problem is NP-hard, so exact optima are only computable for
very small inputs; we use them in the test suite to verify the
approximation guarantees of the implemented algorithms (e.g. GMM's factor
2, OUTLIERSCLUSTER's factor 3 at the optimal radius).

Both solvers enumerate all ``C(n, k)`` center subsets; keep ``n`` below a
couple of dozen points.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from .._validation import check_k_z, check_points
from ..exceptions import InvalidParameterError
from ..metricspace.distance import Metric, get_metric

__all__ = ["optimal_kcenter_radius", "optimal_kcenter_with_outliers_radius"]

_MAX_BRUTE_FORCE_POINTS = 40


def _pairwise(points, metric) -> np.ndarray:
    pts = check_points(points)
    if pts.shape[0] > _MAX_BRUTE_FORCE_POINTS:
        raise InvalidParameterError(
            f"brute-force solvers accept at most {_MAX_BRUTE_FORCE_POINTS} points; "
            f"got {pts.shape[0]}"
        )
    return get_metric(metric).pairwise(pts)


def optimal_kcenter_radius(points, k: int, metric: str | Metric = "euclidean") -> float:
    """Exact optimal k-center radius ``r*_k(S)`` (centers restricted to ``S``).

    Enumerates every size-``k`` subset of the input as candidate centers
    and returns the smallest achievable radius.
    """
    distances = _pairwise(points, metric)
    n = distances.shape[0]
    k, _ = check_k_z(n, k, 0)
    best = np.inf
    indices = range(n)
    for subset in combinations(indices, k):
        radius = distances[:, subset].min(axis=1).max()
        best = min(best, radius)
    return float(best)


def optimal_kcenter_with_outliers_radius(
    points, k: int, z: int, metric: str | Metric = "euclidean"
) -> float:
    """Exact optimal radius ``r*_{k,z}(S)`` for k-center with ``z`` outliers.

    For every size-``k`` center subset, the ``z`` farthest points are
    discarded before taking the maximum distance; the minimum over all
    subsets is returned.
    """
    distances = _pairwise(points, metric)
    n = distances.shape[0]
    k, z = check_k_z(n, k, z)
    best = np.inf
    for subset in combinations(range(n), k):
        closest = distances[:, subset].min(axis=1)
        if z > 0:
            kth = n - z - 1
            radius = np.partition(closest, kth)[kth]
        else:
            radius = closest.max()
        best = min(best, radius)
    return float(best)
