"""Statistical helpers for experiment reporting.

The paper reports every measurement as an average over at least ten runs
together with a 95% confidence interval. This module provides the small
amount of statistics needed to do the same:

* :func:`mean_confidence_interval` — sample mean and half-width of the
  normal-approximation confidence interval;
* :func:`repeat_runs` — run a zero-argument callable several times
  (optionally reseeding it) and summarise a numeric field of its results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .._validation import check_positive_int
from ..exceptions import InvalidParameterError

__all__ = ["SummaryStatistics", "mean_confidence_interval", "repeat_runs"]

# Two-sided critical values of the standard normal distribution for the
# confidence levels experiments typically report.
_Z_VALUES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class SummaryStatistics:
    """Mean, spread, and confidence half-width of a sample of measurements."""

    mean: float
    std: float
    half_width: float
    n_samples: int

    @property
    def lower(self) -> float:
        """Lower end of the confidence interval."""
        return self.mean - self.half_width

    @property
    def upper(self) -> float:
        """Upper end of the confidence interval."""
        return self.mean + self.half_width

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4g} ± {self.half_width:.2g} (n={self.n_samples})"


def mean_confidence_interval(
    values: Sequence[float], *, confidence: float = 0.95
) -> SummaryStatistics:
    """Sample mean with a normal-approximation confidence interval.

    Parameters
    ----------
    values:
        The measurements (at least one).
    confidence:
        One of 0.90, 0.95 (default) or 0.99.
    """
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        raise InvalidParameterError("values must contain at least one measurement")
    if confidence not in _Z_VALUES:
        raise InvalidParameterError(
            f"confidence must be one of {sorted(_Z_VALUES)}; got {confidence}"
        )
    mean = float(array.mean())
    if array.size == 1:
        return SummaryStatistics(mean=mean, std=0.0, half_width=0.0, n_samples=1)
    std = float(array.std(ddof=1))
    half_width = _Z_VALUES[confidence] * std / np.sqrt(array.size)
    return SummaryStatistics(mean=mean, std=std, half_width=half_width, n_samples=int(array.size))


def repeat_runs(
    run: Callable[[int], object],
    *,
    n_runs: int = 10,
    extract: Callable[[object], float] = float,
    confidence: float = 0.95,
) -> SummaryStatistics:
    """Execute ``run(seed)`` for seeds ``0 .. n_runs-1`` and summarise a metric.

    Parameters
    ----------
    run:
        Callable receiving the run index (usable as a seed) and returning
        anything ``extract`` can turn into a number.
    n_runs:
        Number of repetitions (the paper uses at least 10).
    extract:
        Maps the run result to the numeric quantity being summarised
        (e.g. ``lambda result: result.radius``).
    confidence:
        Confidence level of the reported interval.
    """
    n_runs = check_positive_int(n_runs, name="n_runs")
    values = [float(extract(run(seed))) for seed in range(n_runs)]
    return mean_confidence_interval(values, confidence=confidence)
