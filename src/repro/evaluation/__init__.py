"""Evaluation harness: exact small-instance optima, ratio bookkeeping, experiment drivers, reporting."""

from .brute_force import optimal_kcenter_radius, optimal_kcenter_with_outliers_radius
from .experiments import (
    DEFAULT_K,
    ablation_coreset_stopping,
    ablation_partitioning,
    default_datasets,
    figure2_mr_kcenter,
    figure3_stream_kcenter,
    figure4_mr_outliers,
    figure5_stream_outliers,
    figure6_scaling_size,
    figure7_scaling_processors,
    figure7_wallclock_scaling,
    figure8_sequential,
)
from .ratio import BestRadiusRegistry, approximation_ratios
from .reporting import format_records, format_table, summarize_series
from .statistics import SummaryStatistics, mean_confidence_interval, repeat_runs

__all__ = [
    "DEFAULT_K",
    "BestRadiusRegistry",
    "ablation_coreset_stopping",
    "ablation_partitioning",
    "approximation_ratios",
    "default_datasets",
    "figure2_mr_kcenter",
    "figure3_stream_kcenter",
    "figure4_mr_outliers",
    "figure5_stream_outliers",
    "figure6_scaling_size",
    "figure7_scaling_processors",
    "figure7_wallclock_scaling",
    "figure8_sequential",
    "SummaryStatistics",
    "format_records",
    "format_table",
    "mean_confidence_interval",
    "optimal_kcenter_radius",
    "optimal_kcenter_with_outliers_radius",
    "repeat_runs",
    "summarize_series",
]
