"""Plain-text rendering of experiment results.

The benchmark harness regenerates the paper's figures as *tables* (this is
a terminal-first reproduction; plotting libraries are not available in the
offline environment). Each experiment driver returns a list of result
records (dictionaries); the helpers here turn them into aligned text
tables and short summaries that mirror the figure axes of the paper.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_records", "summarize_series"]


def _format_value(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.01:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render ``rows`` under ``headers`` as an aligned, pipe-separated table."""
    rendered_rows = [[_format_value(cell) for cell in row] for row in rows]
    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [render_row(list(headers)), "-+-".join("-" * w for w in widths)]
    lines.extend(render_row(row) for row in rendered_rows)
    return "\n".join(lines)


def format_records(records: Sequence[Mapping], columns: Sequence[str] | None = None) -> str:
    """Render a list of dictionaries as a table.

    Parameters
    ----------
    records:
        The result records (one per experimental configuration).
    columns:
        Optional explicit column order; defaults to the keys of the first
        record.
    """
    if not records:
        return "(no records)"
    if columns is None:
        columns = list(records[0].keys())
    rows = [[record.get(column, "") for column in columns] for record in records]
    return format_table(columns, rows)


def summarize_series(
    records: Sequence[Mapping],
    *,
    group_by: str,
    value: str,
) -> dict:
    """Group records by one key and report the mean of another.

    A tiny convenience used by the benchmark harness to print, e.g., the
    mean approximation ratio per coreset multiplier.
    """
    groups: dict = {}
    for record in records:
        groups.setdefault(record[group_by], []).append(float(record[value]))
    return {key: sum(values) / len(values) for key, values in groups.items()}
