"""Experiment drivers that regenerate the paper's figures.

Every public function in this module reproduces one figure of the
evaluation section (Section 5) as a list of result *records* (plain
dictionaries), one per experimental configuration, mirroring the axes of
the corresponding plot. The benchmark harness in ``benchmarks/`` calls
these drivers on scaled-down datasets and prints the records with
:func:`repro.evaluation.reporting.format_records`; ``EXPERIMENTS.md``
documents how the measured shapes compare with the paper.

The drivers accept the datasets and parameters explicitly so users can
re-run them at the paper's original scale; the defaults keep everything
laptop-sized.
"""

from __future__ import annotations

import os
import time
from typing import Mapping, Sequence

import numpy as np

from .._validation import check_random_state
from ..baselines.mccutchen import BaseStreamKCenter, BaseStreamOutliers
from ..baselines.charikar import CharikarKCenterOutliers
from ..core.assignment import radius_with_outliers, clustering_radius
from ..core.mr_kcenter import MapReduceKCenter
from ..core.mr_outliers import MapReduceKCenterOutliers
from ..core.sequential import SequentialKCenterOutliers
from ..core.stream_kcenter import CoresetStreamKCenter
from ..core.stream_outliers import CoresetStreamOutliers
from ..datasets.inflation import inflate
from ..datasets.loaders import higgs_like, power_like, wiki_like
from ..datasets.outliers import inject_outliers
from ..datasets.synthetic import GaussianMixtureSpec, gaussian_mixture
from ..streaming.runner import StreamingRunner
from ..streaming.stream import ArrayStream
from .ratio import approximation_ratios

__all__ = [
    "default_datasets",
    "DEFAULT_K",
    "figure2_mr_kcenter",
    "figure3_stream_kcenter",
    "figure4_mr_outliers",
    "figure5_stream_outliers",
    "figure6_scaling_size",
    "figure7_scaling_processors",
    "figure7_wallclock_scaling",
    "figure8_sequential",
    "ablation_coreset_stopping",
    "ablation_partitioning",
]


DEFAULT_K = {"higgs": 50, "power": 100, "wiki": 60}
"""Per-dataset k values used in the paper's k-center experiments (Figure 2)."""


def default_datasets(
    n_points: int = 2000,
    *,
    names: Sequence[str] = ("higgs", "power", "wiki"),
    random_state=None,
) -> dict[str, np.ndarray]:
    """Scaled-down synthetic stand-ins for the paper's three datasets."""
    rng = check_random_state(random_state)
    generators = {"higgs": higgs_like, "power": power_like, "wiki": wiki_like}
    return {
        name: generators[name](n_points, random_state=rng) for name in names
    }


def _attach_ratios(records: list[dict], *, group_keys: Sequence[str], radius_key: str = "radius") -> None:
    """Add a ``ratio`` field to each record, relative to the best radius of its group."""
    groups: dict[tuple, list[dict]] = {}
    for record in records:
        key = tuple(record[k] for k in group_keys)
        groups.setdefault(key, []).append(record)
    for members in groups.values():
        ratios = approximation_ratios(
            {id(member): member[radius_key] for member in members}
        )
        for member in members:
            member["ratio"] = ratios[id(member)]


# --------------------------------------------------------------------------------------
# Figure 2 — MapReduce k-center: approximation ratio vs coreset size and parallelism
# --------------------------------------------------------------------------------------


def figure2_mr_kcenter(
    datasets: Mapping[str, np.ndarray] | None = None,
    *,
    k_values: Mapping[str, int] | None = None,
    multipliers: Sequence[float] = (1, 2, 4, 8),
    ells: Sequence[int] = (2, 4, 8, 16),
    random_state=None,
) -> list[dict]:
    """Approximation ratio of the MapReduce k-center algorithm (Figure 2).

    ``mu = 1`` corresponds to the baseline of Malkomes et al. [26]; larger
    coreset multipliers should yield monotonically better ratios, and
    larger parallelism also helps because the union coreset grows.
    """
    rng = check_random_state(random_state)
    if datasets is None:
        datasets = default_datasets(random_state=rng)
    if k_values is None:
        k_values = DEFAULT_K

    records: list[dict] = []
    for name, points in datasets.items():
        k = int(k_values.get(name, 50))
        for ell in ells:
            for mu in multipliers:
                solver = MapReduceKCenter(
                    k,
                    ell=int(ell),
                    coreset_multiplier=float(mu),
                    random_state=int(rng.integers(2**31 - 1)),
                )
                start = time.perf_counter()
                result = solver.fit(points)
                elapsed = time.perf_counter() - start
                records.append(
                    {
                        "figure": "2",
                        "dataset": name,
                        "k": k,
                        "ell": int(ell),
                        "mu": float(mu),
                        "radius": result.radius,
                        "coreset_size": result.coreset_size,
                        "local_memory": result.stats.peak_local_memory,
                        "time_s": elapsed,
                    }
                )
    _attach_ratios(records, group_keys=("dataset", "ell"))
    return records


# --------------------------------------------------------------------------------------
# Figure 3 — Streaming k-center: ratio and throughput vs space
# --------------------------------------------------------------------------------------


def figure3_stream_kcenter(
    datasets: Mapping[str, np.ndarray] | None = None,
    *,
    k_values: Mapping[str, int] | None = None,
    multipliers: Sequence[int] = (1, 2, 4, 8, 16),
    base_instances: Sequence[int] = (1, 2, 4, 8, 16),
    batch_size: int | None = 1024,
    random_state=None,
) -> list[dict]:
    """CORESETSTREAM vs BASESTREAM: quality and throughput vs space (Figure 3).

    ``batch_size`` selects the batched streaming engine (``None`` falls
    back to the per-point path); the reported solutions are identical
    either way, only the throughput column changes.
    """
    rng = check_random_state(random_state)
    if datasets is None:
        datasets = default_datasets(random_state=rng)
    if k_values is None:
        k_values = DEFAULT_K

    records: list[dict] = []
    for name, points in datasets.items():
        k = int(k_values.get(name, 50))
        shuffled = ArrayStream(points, shuffle=True, random_state=int(rng.integers(2**31 - 1)))
        order = None  # ArrayStream shuffles internally and replays the same order.

        for mu in multipliers:
            algorithm = CoresetStreamKCenter(k, coreset_multiplier=float(mu))
            report = StreamingRunner(batch_size=batch_size).run(
                algorithm, ArrayStream(points, shuffle=True, random_state=0)
            )
            radius = clustering_radius(points, report.result.centers)
            records.append(
                {
                    "figure": "3",
                    "dataset": name,
                    "algorithm": "CoresetStream",
                    "space_param": int(mu),
                    "space": report.peak_memory,
                    "radius": radius,
                    "throughput": report.throughput,
                }
            )
        for m in base_instances:
            algorithm = BaseStreamKCenter(k, n_instances=int(m))
            report = StreamingRunner(batch_size=batch_size).run(
                algorithm, ArrayStream(points, shuffle=True, random_state=0)
            )
            radius = clustering_radius(points, report.result.centers)
            records.append(
                {
                    "figure": "3",
                    "dataset": name,
                    "algorithm": "BaseStream",
                    "space_param": int(m),
                    "space": report.peak_memory,
                    "radius": radius,
                    "throughput": report.throughput,
                }
            )
        del shuffled, order
    _attach_ratios(records, group_keys=("dataset",))
    return records


# --------------------------------------------------------------------------------------
# Figure 4 — MapReduce k-center with outliers: deterministic vs randomized
# --------------------------------------------------------------------------------------


def figure4_mr_outliers(
    datasets: Mapping[str, np.ndarray] | None = None,
    *,
    k: int = 20,
    z: int = 200,
    ell: int = 16,
    multipliers: Sequence[float] = (1, 2, 4, 8),
    random_state=None,
) -> list[dict]:
    """Deterministic vs randomized MapReduce with outliers (Figure 4).

    Outliers are injected with the paper's MEB procedure and — for the
    deterministic variant — adversarially packed into a single partition.
    The randomized variant uses coresets of size ``mu * (k + 6 z / ell)``.
    """
    rng = check_random_state(random_state)
    if datasets is None:
        datasets = default_datasets(random_state=rng)

    records: list[dict] = []
    for name, points in datasets.items():
        injection = inject_outliers(
            points, z, random_state=int(rng.integers(2**31 - 1))
        )
        augmented = injection.points
        for variant in ("deterministic", "randomized"):
            for mu in multipliers:
                solver = MapReduceKCenterOutliers(
                    k,
                    z,
                    ell=ell,
                    coreset_multiplier=float(mu),
                    randomized=(variant == "randomized"),
                    include_log_term=False,
                    partitioning="adversarial" if variant == "deterministic" else "random",
                    adversarial_indices=(
                        injection.outlier_indices if variant == "deterministic" else None
                    ),
                    random_state=int(rng.integers(2**31 - 1)),
                )
                start = time.perf_counter()
                result = solver.fit(augmented)
                elapsed = time.perf_counter() - start
                records.append(
                    {
                        "figure": "4",
                        "dataset": name,
                        "variant": variant,
                        "k": k,
                        "z": z,
                        "mu": float(mu),
                        "radius": result.radius,
                        "coreset_size": result.coreset_size,
                        "time_s": elapsed,
                        "coreset_time_s": result.coreset_time,
                        "solve_time_s": result.solve_time,
                    }
                )
    _attach_ratios(records, group_keys=("dataset",))
    return records


# --------------------------------------------------------------------------------------
# Figure 5 — Streaming k-center with outliers: ratio and throughput vs space
# --------------------------------------------------------------------------------------


def figure5_stream_outliers(
    datasets: Mapping[str, np.ndarray] | None = None,
    *,
    k: int = 20,
    z: int = 200,
    multipliers: Sequence[int] = (1, 2, 4, 8, 16),
    base_instances: Sequence[int] = (1, 2),
    base_buffer_capacity: int | None = None,
    batch_size: int | None = 1024,
    random_state=None,
) -> list[dict]:
    """CORESETOUTLIERS vs BASEOUTLIERS: quality and throughput vs space (Figure 5).

    ``base_buffer_capacity`` overrides the per-instance buffer of the
    baseline (its default ``k * z`` may exceed scaled-down dataset sizes,
    which would let the baseline simply store everything).
    ``batch_size`` selects the batched streaming engine (``None`` = the
    per-point path); solutions are identical either way.
    """
    rng = check_random_state(random_state)
    if datasets is None:
        datasets = default_datasets(random_state=rng)

    records: list[dict] = []
    for name, points in datasets.items():
        injection = inject_outliers(points, z, random_state=int(rng.integers(2**31 - 1)))
        augmented = injection.points

        for mu in multipliers:
            algorithm = CoresetStreamOutliers(k, z, coreset_multiplier=float(mu))
            report = StreamingRunner(batch_size=batch_size).run(
                algorithm, ArrayStream(augmented, shuffle=True, random_state=0)
            )
            radius = radius_with_outliers(augmented, report.result.centers, z)
            records.append(
                {
                    "figure": "5",
                    "dataset": name,
                    "algorithm": "CoresetOutliers",
                    "space_param": int(mu),
                    "space": report.peak_memory,
                    "radius": radius,
                    "throughput": report.throughput,
                }
            )
        for m in base_instances:
            algorithm = BaseStreamOutliers(
                k, z, n_instances=int(m), buffer_capacity=base_buffer_capacity
            )
            report = StreamingRunner(batch_size=batch_size).run(
                algorithm, ArrayStream(augmented, shuffle=True, random_state=0)
            )
            centers = report.result.centers
            radius = (
                radius_with_outliers(augmented, centers, z)
                if centers.size
                else float("inf")
            )
            records.append(
                {
                    "figure": "5",
                    "dataset": name,
                    "algorithm": "BaseOutliers",
                    "space_param": int(m),
                    "space": report.peak_memory,
                    "radius": radius,
                    "throughput": report.throughput,
                }
            )
    _attach_ratios(records, group_keys=("dataset",))
    return records


# --------------------------------------------------------------------------------------
# Figure 6 — Scalability with respect to input size
# --------------------------------------------------------------------------------------


def figure6_scaling_size(
    datasets: Mapping[str, np.ndarray] | None = None,
    *,
    k: int = 20,
    z: int = 200,
    ell: int = 16,
    mu: float = 8.0,
    size_factors: Sequence[float] = (1, 2, 4, 8),
    random_state=None,
) -> list[dict]:
    """Running time of the randomized MapReduce outlier algorithm vs input size (Figure 6).

    The paper inflates the datasets by factors 25/50/100; the defaults here
    use smaller factors so the simulation stays fast, but the construction
    is identical (SMOTE-like perturbation plus re-injected outliers).
    """
    rng = check_random_state(random_state)
    if datasets is None:
        datasets = default_datasets(n_points=1000, random_state=rng)

    records: list[dict] = []
    for name, points in datasets.items():
        for factor in size_factors:
            inflated = inflate(points, float(factor), random_state=int(rng.integers(2**31 - 1)))
            injection = inject_outliers(
                inflated, z, random_state=int(rng.integers(2**31 - 1))
            )
            solver = MapReduceKCenterOutliers(
                k,
                z,
                ell=ell,
                coreset_multiplier=mu,
                randomized=True,
                include_log_term=False,
                random_state=int(rng.integers(2**31 - 1)),
            )
            start = time.perf_counter()
            result = solver.fit(injection.points)
            elapsed = time.perf_counter() - start
            records.append(
                {
                    "figure": "6",
                    "dataset": name,
                    "size_factor": float(factor),
                    "n_points": injection.points.shape[0],
                    "radius": result.radius,
                    "time_s": elapsed,
                    # The coreset phase is the part whose work grows linearly
                    # with the input; the final solve has constant cost in the
                    # randomized variant (fixed union-coreset size).
                    "coreset_time_s": result.coreset_time,
                    "solve_time_s": result.solve_time,
                    "points_per_s": injection.points.shape[0] / elapsed if elapsed > 0 else float("inf"),
                }
            )
    return records


# --------------------------------------------------------------------------------------
# Figure 7 — Scalability with respect to the number of processors
# --------------------------------------------------------------------------------------


def figure7_scaling_processors(
    datasets: Mapping[str, np.ndarray] | None = None,
    *,
    k: int = 20,
    z: int = 200,
    ells: Sequence[int] = (1, 2, 4, 8, 16),
    union_multiplier: float = 8.0,
    backend: str | None = None,
    max_workers: int | None = None,
    random_state=None,
) -> list[dict]:
    """Coreset time vs solve time for varying parallelism (Figure 7).

    As in the paper, the size of the *union* of the coresets is held fixed
    at ``union_multiplier * (16 k + 6 z)`` so that every parallelism level
    targets the same solution quality; each partition then contributes a
    coreset of that size divided by ``ell``.

    With the default (serial) backend the parallel time of the coreset
    phase is *estimated* as the slowest reducer of round 1. Passing
    ``backend="threads"`` or ``"processes"`` executes the reducers on a
    real worker pool (``max_workers`` per run, default ``min(ell, cpus)``)
    so the reported ``wall_time_s`` is genuine multi-worker wall-clock.
    """
    rng = check_random_state(random_state)
    if datasets is None:
        datasets = default_datasets(random_state=rng)

    union_size = union_multiplier * (16 * k + 6 * z)
    records: list[dict] = []
    for name, points in datasets.items():
        injection = inject_outliers(points, z, random_state=int(rng.integers(2**31 - 1)))
        augmented = injection.points
        for ell in ells:
            per_partition = max(k + 1, int(round(union_size / ell)))
            base = k + max(1, int(np.ceil(6.0 * z / ell)))
            mu = max(1.0, per_partition / base)
            workers = max_workers
            if workers is None and backend is not None and backend != "serial":
                workers = max(1, min(int(ell), os.cpu_count() or 1))
            solver = MapReduceKCenterOutliers(
                k,
                z,
                ell=int(ell),
                coreset_multiplier=mu,
                randomized=True,
                include_log_term=False,
                random_state=int(rng.integers(2**31 - 1)),
                backend=backend,
                max_workers=workers,
            )
            start = time.perf_counter()
            result = solver.fit(augmented)
            wall_time = time.perf_counter() - start
            round1 = result.stats.rounds[0]
            records.append(
                {
                    "figure": "7",
                    "dataset": name,
                    "ell": int(ell),
                    "backend": backend or "serial",
                    "workers": int(workers or 1),
                    "per_partition_coreset": per_partition,
                    "union_coreset_size": result.coreset_size,
                    "radius": result.radius,
                    "coreset_time_parallel_s": round1.parallel_time,
                    "coreset_time_total_s": round1.sequential_time,
                    "solve_time_s": result.solve_time,
                    "wall_time_s": wall_time,
                    "peak_local_memory": result.stats.peak_local_memory,
                    "coordinator_peak_items": result.stats.coordinator_peak_items,
                    "peak_working_memory": result.peak_working_memory_size,
                }
            )
    return records


def figure7_wallclock_scaling(
    n_points: int = 100_000,
    *,
    k: int = 10,
    z: int = 60,
    dimension: int = 4,
    workers: Sequence[int] = (1, 2, 4),
    backend: str = "processes",
    coreset_multiplier: float = 4.0,
    random_state=None,
) -> list[dict]:
    """True wall-clock scaling of the coreset phase over real worker pools.

    Complements :func:`figure7_scaling_processors`: instead of varying
    ``ell`` under a simulated runtime, this fixes the problem (a synthetic
    ``n_points``-point instance, ``ell`` = max(workers)) and varies the
    number of *actual* workers executing the round-1 reducers on the
    chosen backend. Each record carries the end-to-end ``wall_time_s``
    and the ``speedup`` relative to the smallest worker count in
    ``workers`` (normally 1), which is the quantity the paper's Figure 7
    measures on a Spark cluster.

    All runs share one seed, so the solutions are identical across worker
    counts; only the wall-clock may differ.
    """
    rng = check_random_state(random_state)
    seed = int(rng.integers(2**31 - 1))
    spec = GaussianMixtureSpec(
        n_clusters=max(2, k), dimension=dimension, cluster_std=1.0, box_size=100.0
    )
    points = gaussian_mixture(n_points, spec, random_state=seed)
    injection = inject_outliers(points, z, random_state=seed + 1)
    augmented = injection.points
    ell = max(int(w) for w in workers)

    runs = []
    for n_workers in workers:
        solver = MapReduceKCenterOutliers(
            k,
            z,
            ell=ell,
            coreset_multiplier=coreset_multiplier,
            randomized=True,
            include_log_term=False,
            random_state=seed,
            backend=backend,
            max_workers=int(n_workers),
        )
        start = time.perf_counter()
        result = solver.fit(augmented)
        runs.append((int(n_workers), result, time.perf_counter() - start))

    baseline = min(runs, key=lambda run: run[0])[2]
    return [
        {
            "figure": "7-wallclock",
            "backend": backend,
            "workers": n_workers,
            "ell": ell,
            "n_points": augmented.shape[0],
            "radius": result.radius,
            "coreset_time_total_s": result.coreset_time,
            "wall_time_s": wall_time,
            "speedup": baseline / wall_time if wall_time > 0 else float("inf"),
        }
        for n_workers, result, wall_time in runs
    ]


# --------------------------------------------------------------------------------------
# Figure 8 — Sequential algorithms: running time and radius
# --------------------------------------------------------------------------------------


def figure8_sequential(
    datasets: Mapping[str, np.ndarray] | None = None,
    *,
    k: int = 20,
    z: int = 200,
    multipliers: Sequence[float] = (2, 4, 8),
    sample_size: int = 2000,
    random_state=None,
) -> list[dict]:
    """Sequential comparison: CHARIKARETAL vs MALKOMESETAL vs ours (Figure 8).

    The paper samples 10 000 points per dataset to keep Charikar et al.'s
    quadratic algorithm feasible; the default here samples 2 000 for the
    same reason at simulation speed. ``mu = 1`` is the MALKOMESETAL row.
    """
    rng = check_random_state(random_state)
    if datasets is None:
        datasets = default_datasets(n_points=sample_size, random_state=rng)

    records: list[dict] = []
    for name, points in datasets.items():
        sample = points
        if sample.shape[0] > sample_size:
            sample = sample[rng.choice(sample.shape[0], size=sample_size, replace=False)]
        injection = inject_outliers(sample, z, random_state=int(rng.integers(2**31 - 1)))
        augmented = injection.points

        charikar = CharikarKCenterOutliers(k, z, max_points=augmented.shape[0])
        charikar_result = charikar.fit(augmented)
        records.append(
            {
                "figure": "8",
                "dataset": name,
                "algorithm": "CharikarEtAl",
                "mu": None,
                "radius": charikar_result.radius,
                "time_s": charikar_result.elapsed_time,
            }
        )

        for mu in (1, *multipliers):
            solver = SequentialKCenterOutliers(
                k, z, coreset_multiplier=float(mu), random_state=int(rng.integers(2**31 - 1))
            )
            result = solver.fit(augmented)
            label = "MalkomesEtAl" if mu == 1 else f"Ours(mu={int(mu)})"
            records.append(
                {
                    "figure": "8",
                    "dataset": name,
                    "algorithm": label,
                    "mu": float(mu),
                    "radius": result.radius,
                    "time_s": result.elapsed_time,
                }
            )
    _attach_ratios(records, group_keys=("dataset",))
    return records


# --------------------------------------------------------------------------------------
# Ablations (design-choice studies beyond the paper's figures)
# --------------------------------------------------------------------------------------


def ablation_coreset_stopping(
    points: np.ndarray | None = None,
    *,
    k: int = 20,
    epsilons: Sequence[float] = (1.0, 0.5, 0.25),
    multipliers: Sequence[float] = (1, 2, 4, 8),
    ell: int = 8,
    random_state=None,
) -> list[dict]:
    """Epsilon-driven vs size-driven coreset stopping for MapReduce k-center.

    The theoretical rule adapts the coreset size to the dataset's doubling
    dimension; the size rule fixes it a priori. This ablation reports the
    coreset sizes and radii both rules produce on the same input.
    """
    rng = check_random_state(random_state)
    if points is None:
        points = higgs_like(2000, random_state=rng)

    records: list[dict] = []
    for epsilon in epsilons:
        solver = MapReduceKCenter(
            k, ell=ell, epsilon=float(epsilon), random_state=int(rng.integers(2**31 - 1))
        )
        result = solver.fit(points)
        records.append(
            {
                "rule": "epsilon",
                "parameter": float(epsilon),
                "coreset_size": result.coreset_size,
                "radius": result.radius,
            }
        )
    for mu in multipliers:
        solver = MapReduceKCenter(
            k, ell=ell, coreset_multiplier=float(mu), random_state=int(rng.integers(2**31 - 1))
        )
        result = solver.fit(points)
        records.append(
            {
                "rule": "mu",
                "parameter": float(mu),
                "coreset_size": result.coreset_size,
                "radius": result.radius,
            }
        )
    _attach_ratios(records, group_keys=())
    return records


def ablation_partitioning(
    points: np.ndarray | None = None,
    *,
    k: int = 20,
    z: int = 100,
    ell: int = 8,
    mu: float = 4.0,
    random_state=None,
) -> list[dict]:
    """Effect of the partitioning strategy on the outlier algorithm.

    Compares contiguous, random, and adversarial (all planted outliers in
    one partition) placements for the deterministic algorithm, plus the
    randomized variant, at a fixed coreset multiplier.
    """
    rng = check_random_state(random_state)
    if points is None:
        points = power_like(2000, random_state=rng)
    injection = inject_outliers(points, z, random_state=int(rng.integers(2**31 - 1)))
    augmented = injection.points

    configurations = [
        ("contiguous", False),
        ("random", False),
        ("adversarial", False),
        ("random", True),
    ]
    records: list[dict] = []
    for partitioning, randomized in configurations:
        solver = MapReduceKCenterOutliers(
            k,
            z,
            ell=ell,
            coreset_multiplier=mu,
            randomized=randomized,
            include_log_term=False,
            partitioning=partitioning,
            adversarial_indices=(
                injection.outlier_indices if partitioning == "adversarial" else None
            ),
            random_state=int(rng.integers(2**31 - 1)),
        )
        result = solver.fit(augmented)
        label = "randomized" if randomized else f"deterministic/{partitioning}"
        records.append(
            {
                "configuration": label,
                "coreset_size": result.coreset_size,
                "radius": result.radius,
            }
        )
    _attach_ratios(records, group_keys=())
    return records
