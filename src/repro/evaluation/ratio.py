"""Empirical approximation-ratio bookkeeping.

Computing exact optima is infeasible at the scales of the experiments, so
the paper estimates the approximation ratio of a run as

    radius of the returned clustering
    ---------------------------------
    best radius ever found for the same dataset / parameter configuration

:class:`BestRadiusRegistry` implements exactly that: experiments record
every radius they observe under a configuration key and then express each
run relative to the best (smallest) radius recorded for that key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = ["BestRadiusRegistry", "approximation_ratios"]


@dataclass
class BestRadiusRegistry:
    """Track the best (smallest) radius seen per configuration key.

    Examples
    --------
    >>> registry = BestRadiusRegistry()
    >>> registry.record(("higgs", 50), 12.0)
    >>> registry.record(("higgs", 50), 10.0)
    >>> registry.ratio(("higgs", 50), 12.0)
    1.2
    """

    _best: dict = field(default_factory=dict)

    def record(self, key: Hashable, radius: float) -> None:
        """Record an observed ``radius`` for configuration ``key``."""
        radius = float(radius)
        if radius < 0 or not np.isfinite(radius):
            raise InvalidParameterError("radius must be a finite, non-negative number")
        current = self._best.get(key)
        if current is None or radius < current:
            self._best[key] = radius

    def best(self, key: Hashable) -> float:
        """The best radius recorded for ``key`` (raises ``KeyError`` if none)."""
        return self._best[key]

    def ratio(self, key: Hashable, radius: float) -> float:
        """Approximation ratio of ``radius`` relative to the best known for ``key``.

        Degenerate configurations whose best radius is 0 report a ratio of
        1.0 when the queried radius is also 0, and ``inf`` otherwise.
        """
        best = self.best(key)
        radius = float(radius)
        if best == 0.0:
            return 1.0 if radius == 0.0 else float("inf")
        return radius / best

    def keys(self) -> list:
        """All configuration keys with at least one recorded radius."""
        return list(self._best)


def approximation_ratios(radii: dict, *, best: float | None = None) -> dict:
    """Express a mapping ``label -> radius`` as ratios to the best of the group.

    Parameters
    ----------
    radii:
        Mapping from an arbitrary label (algorithm name, parameter value)
        to the radius that configuration achieved.
    best:
        Optional externally-known best radius; defaults to the minimum of
        the provided values.
    """
    if not radii:
        return {}
    values = {label: float(value) for label, value in radii.items()}
    reference = min(values.values()) if best is None else float(best)
    if reference <= 0.0:
        return {label: (1.0 if value == 0.0 else float("inf")) for label, value in values.items()}
    return {label: value / reference for label, value in values.items()}
