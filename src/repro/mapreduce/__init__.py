"""Simulated MapReduce substrate: runtime with memory accounting and partitioners."""

from .partitioner import (
    split_adversarial,
    split_contiguous,
    split_random,
    split_round_robin,
    validate_partition,
)
from .runtime import JobStats, KeyValue, MapReduceRuntime, RoundStats, default_sizeof

__all__ = [
    "JobStats",
    "KeyValue",
    "MapReduceRuntime",
    "RoundStats",
    "default_sizeof",
    "split_adversarial",
    "split_contiguous",
    "split_random",
    "split_round_robin",
    "validate_partition",
]
