"""MapReduce substrate: accounting runtime, executor backends, and partitioners."""

from .backends import (
    ExecutorBackend,
    ProcessBackend,
    SerialBackend,
    SharedArray,
    ThreadBackend,
    available_backends,
    resolve_backend,
)
from .partitioner import (
    split_adversarial,
    split_contiguous,
    split_random,
    split_round_robin,
    validate_partition,
)
from .runtime import JobStats, KeyValue, MapReduceRuntime, RoundStats, default_sizeof

__all__ = [
    "ExecutorBackend",
    "JobStats",
    "KeyValue",
    "MapReduceRuntime",
    "ProcessBackend",
    "RoundStats",
    "SerialBackend",
    "SharedArray",
    "ThreadBackend",
    "available_backends",
    "default_sizeof",
    "resolve_backend",
    "split_adversarial",
    "split_contiguous",
    "split_random",
    "split_round_robin",
    "validate_partition",
]
