"""MapReduce substrate: accounting runtime, executor backends, and partitioners."""

from .backends import (
    ExecutorBackend,
    PartitionBuffer,
    ProcessBackend,
    SerialBackend,
    SharedArray,
    ThreadBackend,
    available_backends,
    resolve_backend,
)
from .partitioner import (
    ChunkRouter,
    draw_partition_seeds,
    hashed_assignment,
    split_adversarial,
    split_contiguous,
    split_random,
    split_round_robin,
    validate_partition,
)
from .runtime import (
    JobStats,
    KeyValue,
    MapReduceRuntime,
    RoundStats,
    StreamShuffleResult,
    default_sizeof,
)

__all__ = [
    "ChunkRouter",
    "ExecutorBackend",
    "JobStats",
    "KeyValue",
    "MapReduceRuntime",
    "PartitionBuffer",
    "ProcessBackend",
    "RoundStats",
    "SerialBackend",
    "SharedArray",
    "StreamShuffleResult",
    "ThreadBackend",
    "available_backends",
    "default_sizeof",
    "draw_partition_seeds",
    "hashed_assignment",
    "resolve_backend",
    "split_adversarial",
    "split_contiguous",
    "split_random",
    "split_round_robin",
    "validate_partition",
]
