"""Distributed MapReduce worker daemon and the TCP wire protocol.

``python -m repro.mapreduce.worker --listen HOST:PORT`` (or ``repro
worker --listen HOST:PORT``) starts a worker daemon: a small TCP server
that accepts reduce tasks from a coordinator-side
:class:`~repro.mapreduce.cluster.DistributedBackend`, executes them in
the worker's own address space, and streams the pickled results back.
One daemon serves any number of jobs, one connection per job; the
in-process :class:`~repro.mapreduce.cluster.LocalCluster` harness spawns
the same server on loopback sockets for deterministic tests.

Wire protocol
-------------
Every frame is a 9-byte header — a 1-byte opcode followed by an unsigned
8-byte big-endian payload length — and then the payload itself. Request
opcodes (coordinator to worker):

* ``h`` **HELLO** — empty payload; the worker replies OK with pickled
  metadata (pid, address, spill directory).
* ``r`` **REDUCER** — pickled reducer callable; becomes the connection's
  current reducer (sent once per round, not once per task). Replies OK.
* ``p`` **PUT** — pickled ``(origin_path, file_bytes)``: a disk-tier
  spill file pushed by value. The worker writes the bytes into its own
  spill directory and registers ``origin_path`` as an alias, so a
  disk-tier :class:`~repro.mapreduce.backends.SharedArray` handle
  pickled into a later task re-opens the *local copy* as a read-only
  memmap. Replies OK with the local path.
* ``t`` **TASK** — pickled ``(key, values)``: run the connection's
  reducer on the group. Replies RESULT with pickled
  ``(outputs, elapsed_seconds)``, or ERROR with a pickled
  ``(exception_type, message, traceback)`` summary when the reducer
  itself raised (an application failure the coordinator must not retry).
* ``q`` **QUIT** — end the connection. The worker deletes every spill
  file received on it, then replies OK and closes.

Response opcodes (worker to coordinator): ``o`` OK, ``R`` RESULT,
``E`` ERROR. Anything that breaks the framing — EOF mid-frame, an
unknown opcode — is a *transport* failure: the coordinator marks the
worker dead and retries its tasks on the surviving workers, while the
worker drops the connection and cleans up its received files. Memory-tier
partitions need no PUT at all: their handles pickle the rows by value
inside the TASK frame.
"""

from __future__ import annotations

import argparse
import os
import pickle
import shutil
import socket
import struct
import sys
import tempfile
import threading
import traceback
import uuid
from typing import Sequence

from ..exceptions import InvalidParameterError
from . import backends as _backends
from .backends import _timed_reduce

__all__ = [
    "OP_HELLO",
    "OP_REDUCER",
    "OP_PUT",
    "OP_TASK",
    "OP_QUIT",
    "OP_OK",
    "OP_RESULT",
    "OP_ERROR",
    "ProtocolError",
    "send_frame",
    "recv_frame",
    "WorkerServer",
    "serve",
    "main",
]


_HEADER = struct.Struct("!cQ")

OP_HELLO = b"h"
OP_REDUCER = b"r"
OP_PUT = b"p"
OP_TASK = b"t"
OP_QUIT = b"q"
OP_OK = b"o"
OP_RESULT = b"R"
OP_ERROR = b"E"

_REQUEST_OPS = (OP_HELLO, OP_REDUCER, OP_PUT, OP_TASK, OP_QUIT)

#: Upper bound on a single frame's payload, a corruption guard: a header
#: announcing more than this is treated as a broken stream rather than
#: honoured with a terabyte-sized allocation.
MAX_FRAME_BYTES = 1 << 40


class ProtocolError(ConnectionError):
    """The peer violated the framing (EOF mid-frame, bad opcode, oversized frame).

    A :class:`ConnectionError`, so coordinator-side code that treats
    ``OSError`` as "this worker is gone" handles truncated frames and
    vanished peers through one code path.
    """


def send_frame(sock: socket.socket, opcode: bytes, payload: bytes = b"") -> None:
    """Write one length-prefixed frame to ``sock``."""
    sock.sendall(_HEADER.pack(opcode, len(payload)))
    if payload:
        sock.sendall(payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`ProtocolError` on early EOF."""
    parts = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ProtocolError(
                f"connection closed mid-frame ({n - remaining} of {n} bytes received)"
            )
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


def recv_frame(sock: socket.socket) -> tuple[bytes, bytes]:
    """Read one frame; returns ``(opcode, payload)``."""
    opcode, length = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame announces {length} bytes; refusing")
    payload = _recv_exact(sock, length) if length else b""
    return opcode, payload


# -- worker-side spill aliasing --------------------------------------------------------

_CONNECTION_LOCAL = threading.local()
"""Per-connection spill-path aliases (each connection runs on its own thread)."""


def _translate_spill_path(path: str) -> str:
    """Resolve a coordinator-side spill path to this connection's local copy."""
    aliases = getattr(_CONNECTION_LOCAL, "spill_aliases", None)
    if aliases:
        return aliases.get(path, path)
    return path


def _install_spill_resolver() -> None:
    _backends.set_spill_path_resolver(_translate_spill_path)


# -- the server ------------------------------------------------------------------------


def parse_listen_address(spec: str) -> tuple[str, int]:
    """Parse a ``HOST:PORT`` listen spec (port 0 asks the OS for a free port)."""
    host, sep, port_text = str(spec).rpartition(":")
    if not sep or not host:
        raise InvalidParameterError(
            f"worker address must look like HOST:PORT; got {spec!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise InvalidParameterError(
            f"worker address must look like HOST:PORT; got {spec!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise InvalidParameterError(f"port must be in [0, 65535]; got {port}")
    return host, port


class WorkerServer:
    """A distributed-MapReduce worker: one TCP listener, one thread per connection.

    Parameters
    ----------
    host, port:
        Listen address. Port 0 (the default) binds a free port; the
        bound address is available as :attr:`address`.
    spill_dir:
        Directory for spill files received through PUT frames. ``None``
        (default) creates a worker-owned temporary directory that
        :meth:`shutdown` removes; a caller-provided directory is created
        if missing and left in place.
    fail_after_tasks, fail_mode:
        Deterministic failure injection for tests: after
        ``fail_after_tasks`` completed TASK frames the worker "dies" on
        the next one — ``fail_mode="close"`` drops the connection cold,
        ``fail_mode="truncate"`` first writes a partial result frame
        (header plus a few bytes) so the coordinator exercises its
        truncated-frame path. Once triggered the worker stays dead for
        every later task until :meth:`revive` is called.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        spill_dir: str | None = None,
        fail_after_tasks: int | None = None,
        fail_mode: str = "close",
    ) -> None:
        if fail_mode not in ("close", "truncate"):
            raise InvalidParameterError(
                f"fail_mode must be 'close' or 'truncate'; got {fail_mode!r}"
            )
        if fail_after_tasks is not None and fail_after_tasks < 0:
            raise InvalidParameterError("fail_after_tasks must be >= 0 or None")
        _install_spill_resolver()
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        bound = self._listener.getsockname()
        self.host, self.port = bound[0], bound[1]
        self.address = f"{self.host}:{self.port}"
        if spill_dir is None:
            self._spill_dir = tempfile.mkdtemp(prefix="repro-worker-")
            self._owns_spill_dir = True
        else:
            os.makedirs(spill_dir, exist_ok=True)
            self._spill_dir = os.fspath(spill_dir)
            self._owns_spill_dir = False
        self._fail_after = fail_after_tasks
        self._fail_mode = fail_mode
        self._failed = False
        self._tasks_completed = 0
        self._lock = threading.Lock()
        self._shutdown = threading.Event()
        self._connections: set[socket.socket] = set()
        self._handler_threads: list[threading.Thread] = []
        self._serve_thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------------------

    @property
    def spill_dir(self) -> str:
        """Directory holding the spill files this worker received."""
        return self._spill_dir

    @property
    def tasks_completed(self) -> int:
        """TASK frames answered with a RESULT so far (all connections)."""
        with self._lock:
            return self._tasks_completed

    def revive(self) -> None:
        """Clear a triggered failure injection so the worker serves again."""
        with self._lock:
            self._failed = False
            self._tasks_completed = 0

    def serve_forever(self) -> None:
        """Accept connections until :meth:`shutdown`; blocks the calling thread."""
        while not self._shutdown.is_set():
            try:
                conn, _peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with self._lock:
                if self._shutdown.is_set():
                    conn.close()
                    break
                self._connections.add(conn)
                thread = threading.Thread(
                    target=self._handle_connection, args=(conn,), daemon=True
                )
                # Prune finished handlers so a long-lived daemon serving
                # many jobs does not accumulate dead Thread objects.
                self._handler_threads = [
                    handler for handler in self._handler_threads if handler.is_alive()
                ]
                self._handler_threads.append(thread)
            thread.start()

    def serve_in_background(self) -> "WorkerServer":
        """Run :meth:`serve_forever` on a daemon thread; returns ``self``."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        self._serve_thread = thread
        return self

    def shutdown(self) -> None:
        """Stop accepting, drop live connections, join handlers, remove owned files."""
        self._shutdown.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass
        with self._lock:
            connections = list(self._connections)
            threads = list(self._handler_threads)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        for thread in threads:
            thread.join(timeout=5.0)
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None
        if self._owns_spill_dir:
            shutil.rmtree(self._spill_dir, ignore_errors=True)

    def __enter__(self) -> "WorkerServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- failure injection -------------------------------------------------------------

    def _should_fail_now(self) -> bool:
        with self._lock:
            if self._failed:
                return True
            if (
                self._fail_after is not None
                and self._tasks_completed >= self._fail_after
            ):
                self._failed = True
                return True
        return False

    def _die_on(self, conn: socket.socket) -> None:
        if self._fail_mode == "truncate":
            # A result header announcing a payload that never arrives: the
            # coordinator must fail on the truncated frame, not hang.
            try:
                conn.sendall(_HEADER.pack(OP_RESULT, 1 << 20) + b"dead")
            except OSError:  # pragma: no cover - peer already gone
                pass
        try:
            conn.shutdown(socket.SHUT_RDWR)
        except OSError:  # pragma: no cover - peer already gone
            pass

    # -- connection handling -----------------------------------------------------------

    def _handle_connection(self, conn: socket.socket) -> None:
        aliases: dict[str, str] = {}
        received: list[str] = []
        _CONNECTION_LOCAL.spill_aliases = aliases
        reducer = None
        try:
            while not self._shutdown.is_set():
                opcode, payload = recv_frame(conn)
                if opcode == OP_QUIT:
                    # Delete the received files *before* acknowledging, so a
                    # coordinator that saw the OK can rely on the cleanup.
                    self._cleanup_received(received, aliases)
                    send_frame(conn, OP_OK)
                    break
                if opcode == OP_HELLO:
                    info = {
                        "pid": os.getpid(),
                        "address": self.address,
                        "spill_dir": self._spill_dir,
                    }
                    send_frame(conn, OP_OK, pickle.dumps(info))
                elif opcode == OP_REDUCER:
                    # An unpicklable reducer (module only on the coordinator,
                    # version skew) is an application error, not a transport
                    # one: report it instead of dying, so the coordinator
                    # does not retry the identical payload elsewhere.
                    try:
                        reducer = pickle.loads(payload)
                    except Exception as exc:
                        send_frame(conn, OP_ERROR, pickle.dumps(self._summarize(exc)))
                    else:
                        send_frame(conn, OP_OK)
                elif opcode == OP_PUT:
                    try:
                        origin_path, data = pickle.loads(payload)
                        local_path = os.path.join(
                            self._spill_dir, f"recv-{uuid.uuid4().hex}.npy"
                        )
                        with open(local_path, "wb") as handle:
                            handle.write(data)
                    except Exception as exc:
                        send_frame(conn, OP_ERROR, pickle.dumps(self._summarize(exc)))
                    else:
                        aliases[os.fspath(origin_path)] = local_path
                        received.append(local_path)
                        send_frame(conn, OP_OK, pickle.dumps(local_path))
                elif opcode == OP_TASK:
                    if self._should_fail_now():
                        self._die_on(conn)
                        return
                    try:
                        if reducer is None:
                            raise RuntimeError(
                                "TASK received before any REDUCER on this connection"
                            )
                        key, values = pickle.loads(payload)
                        outputs, elapsed = _timed_reduce(reducer, key, values)
                    except Exception as exc:
                        send_frame(conn, OP_ERROR, pickle.dumps(self._summarize(exc)))
                    else:
                        send_frame(conn, OP_RESULT, pickle.dumps((outputs, elapsed)))
                        with self._lock:
                            self._tasks_completed += 1
                else:
                    raise ProtocolError(f"unknown opcode {opcode!r}")
        except (ProtocolError, OSError, EOFError, pickle.UnpicklingError):
            pass  # the peer vanished or spoke garbage; drop the connection
        finally:
            _CONNECTION_LOCAL.spill_aliases = None
            self._cleanup_received(received, aliases)
            conn.close()
            with self._lock:
                self._connections.discard(conn)

    @staticmethod
    def _summarize(exc: BaseException) -> tuple[str, str, str]:
        """The ``(type, message, traceback)`` triple an ERROR frame carries."""
        return (type(exc).__name__, str(exc), traceback.format_exc())

    @staticmethod
    def _cleanup_received(received: list[str], aliases: dict[str, str]) -> None:
        """Delete spill files received on a connection. Idempotent."""
        while received:
            path = received.pop()
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
        aliases.clear()


def serve(listen: str, *, spill_dir: str | None = None) -> int:
    """Run a worker daemon on ``listen`` (``HOST:PORT``) until interrupted.

    Handles SIGTERM like Ctrl-C: the daemon drops its connections and
    removes its owned spill directory before exiting, so supervisors
    that stop workers with a plain ``kill`` leave no orphans behind.
    """
    host, port = parse_listen_address(listen)
    server = WorkerServer(host, port, spill_dir=spill_dir)
    print(f"repro worker listening on {server.address}", flush=True)
    previous_handler = None
    try:
        import signal

        previous_handler = signal.signal(
            signal.SIGTERM, lambda signum, frame: sys.exit(0)
        )
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.shutdown()
        if previous_handler is not None:
            import signal

            signal.signal(signal.SIGTERM, previous_handler)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point for ``python -m repro.mapreduce.worker``."""
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Distributed MapReduce worker daemon (see repro.mapreduce.cluster)",
    )
    parser.add_argument(
        "--listen", default="127.0.0.1:0", metavar="HOST:PORT",
        help="address to listen on (port 0 picks a free port; the bound "
             "address is printed on startup)",
    )
    parser.add_argument(
        "--spill-dir", default=None,
        help="directory for spill files received from coordinators "
             "(default: a worker-owned temporary directory)",
    )
    args = parser.parse_args(argv)
    return serve(args.listen, spill_dir=args.spill_dir)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
