"""A MapReduce runtime with memory accounting and pluggable execution backends.

The paper's algorithms are 2-round MapReduce computations; what their
analysis actually constrains is (a) the number of rounds, (b) the local
memory ``M_L`` any single reducer needs, and (c) the aggregate memory
``M_A`` across reducers. This module provides a small, deterministic
MapReduce engine that executes arbitrary mapper/reducer functions while
*faithfully tracking those three quantities*, plus per-reducer wall-clock
time so that the parallel running time of a round can be reported as the
maximum reducer time (the quantity a real cluster would exhibit).

Execution model
---------------
The map and shuffle phases always run in the coordinating process, as
does all accounting: reduce groups are formed, sized with ``sizeof``, and
checked against the local memory limit *before* any reducer runs. Only
then is the reduce phase handed to an
:class:`~repro.mapreduce.backends.ExecutorBackend`:

* ``backend="serial"`` — reducers run one after the other in the calling
  process. The deterministic reference; also the default when
  ``max_workers`` is 1 or unset.
* ``backend="threads"`` — reducers run on a thread pool. Best when the
  reducer work is dominated by NumPy kernels (they release the GIL), and
  when reducers close over large in-process state, since nothing is
  serialised. The default when ``max_workers`` > 1, matching this
  engine's historical behavior.
* ``backend="processes"`` — reducers run on a process pool. Each task
  pickles the reducer callable and its group values, so reducers must be
  module-level functions (or partials of them); in exchange the GIL no
  longer serialises pure-Python reducer work. Large point matrices should
  be published once via :meth:`MapReduceRuntime.share_array`, which under
  this backend places them in POSIX shared memory so tasks reference them
  by name instead of copying them.
* ``backend="distributed"`` — reducers run on remote worker daemons over
  TCP (see the "Distributed backend" section below).

Distributed backend
-------------------
``backend="distributed"`` plus ``workers=["host:port", ...]`` hands the
reduce phase to a set of worker daemons, each started with ``repro
worker --listen HOST:PORT`` (or ``python -m repro.mapreduce.worker``) —
the first backend that scales past a single machine. The coordinator
speaks a length-prefixed TCP protocol (a 1-byte opcode plus an 8-byte
big-endian payload length per frame; the opcodes are documented in
:mod:`repro.mapreduce.worker`): per round it ships the pickled reducer
once per worker, then one TASK frame per reduce group, and collects the
pickled ``(outputs, elapsed)`` results. Placement is round-robin — the
group at position ``i`` (the partition index, for the shuffle rounds)
goes to worker ``i mod W`` — a pure function of the partition index, so
which worker computes what is as deterministic as the shuffle routing
itself.

Partition payloads travel by storage tier: memory-tier partitions (the
default under this backend) pickle their rows by value inside the task;
disk-tier spill files are pushed once per worker as raw ``.npy`` bytes
and re-opened remotely as read-only memmaps, so a file is shipped at
most once per worker however many rounds reference it. A worker that
dies mid-job (refused connection, reset, truncated frame) has its
unfinished groups requeued round-robin onto the surviving workers —
reducers are pure, so the retried job is bit-identical — and
:attr:`JobStats.worker_assignments` records every attempt while
:attr:`JobStats.bytes_shipped` totals the payload bytes that crossed
the wire. All randomness is drawn in the coordinator before dispatch,
so the distributed drivers agree bit-for-bit with the serial reference;
the equivalence matrix in
``tests/properties/test_property_distributed_equivalence.py`` enforces
this against an in-process loopback
:class:`~repro.mapreduce.cluster.LocalCluster`.

Rule of thumb: ``threads`` wins when reducers are thin wrappers around
vectorised NumPy calls and payloads are large (zero serialisation);
``processes`` wins when reducers spend significant time in Python
bytecode (GMM's incremental loop, radius search probes) or when true CPU
isolation is wanted — provided the per-task payload is kept small, e.g.
index arrays over a shared point matrix.

Out-of-core shuffle
-------------------
The paper's analysis bounds the *reducers'* memory at ``O(n / ell)``
per partition — but a map/shuffle that first materialises the full
``(n, d)`` matrix in the coordinator silently re-introduces an ``O(n)``
coordinator bound, making the coordinator (not the reducers) the limit
on dataset size. :meth:`MapReduceRuntime.shuffle_stream` removes that
bound: it consumes the input as a sequence of ``(m, d)`` chunks (from a
:class:`~repro.streaming.stream.PointStream`, a generator over a file,
or a memory-mapped array), routes each chunk's rows directly into
per-partition :class:`~repro.mapreduce.backends.PartitionBuffer`
storage via a :class:`~repro.mapreduce.partitioner.ChunkRouter`, and
returns the sealed partitions as
:class:`~repro.mapreduce.backends.SharedArray` handles. Under the
``processes`` backend the buffers are POSIX shared-memory segments that
reducers attach to by name; under ``serial``/``threads`` they are plain
per-partition arrays in the shared address space. Either way the
coordinator's own working set during the shuffle is ``O(chunk)``:
routing metadata plus one chunk in flight.

Because the routers are pure functions of the global point index (the
random split uses a seeded counter-based hash, see
:func:`~repro.mapreduce.partitioner.hashed_assignment`), a streamed
shuffle lands every point in exactly the partition the in-memory
``split_*`` functions produce — so the drivers' ``fit_stream`` is
bit-identical to ``fit`` on every backend while restoring the paper's
memory model: reducers hold ``O(n/ell)``, the coordinator holds
``O(chunk + union coreset)``. The job-level
:attr:`JobStats.coordinator_peak_items` records that coordinator
working set (in points) so the space metric of the Figure 7 experiments
is reported for both drive paths.

Storage tiers
-------------
*Where the sealed partitions live* is a knob orthogonal to the executor
backend: ``storage=`` on the runtime (and on
:meth:`MapReduceRuntime.shuffle_stream`, both drivers' ``fit_stream``,
and the CLI ``mr-*`` commands) selects a
:class:`~repro.mapreduce.backends.PartitionStore` tier:

* ``"memory"`` — plain per-partition arrays in the coordinator's
  address space; the natural tier for the serial and thread backends.
* ``"shared"`` — POSIX shared-memory segments that process-backend
  workers attach to by name; bounded by ``/dev/shm`` (typically half of
  RAM).
* ``"disk"`` — per-partition ``.npy`` spill files, appended chunk by
  chunk and finalized as read-only :class:`numpy.memmap` matrices that
  workers open by *path*; bounded by disk instead of ``/dev/shm``, which
  is what makes single-host datasets beyond shared memory drivable while
  each reducer still only keeps its ``O(n/ell)`` partition resident.
* ``"auto"`` (default) — the historical backend pairing (shared memory
  for the process pool, plain arrays otherwise) unless
  ``memory_budget_bytes`` is set and the estimated partition-tier
  footprint exceeds it (or the stream is unsized), in which case the
  shuffle spills to disk. See
  :func:`~repro.mapreduce.backends.resolve_storage`.

Every tier produces bit-identical partitions (the routing never
changes); :attr:`JobStats.storage_tier` and :attr:`JobStats.spilled_bytes`
record which tier ran and how many bytes went to disk, and
:func:`repro.core.planner.plan_mapreduce` predicts the per-tier
footprints up front.

Accounting is backend-agnostic by construction: every backend returns the
same per-group outputs and in-reducer timings, the runtime collects them
in deterministic (insertion) key order, and the recorded
:class:`RoundStats` are therefore identical across backends modulo the
timing values themselves. The cross-backend equivalence suite in
``tests/mapreduce/test_backends.py`` enforces this.

The engine is intentionally general (key-value pairs, one mapper and one
reducer per round) so that other algorithms can be expressed on it, but
the k-center drivers in :mod:`repro.core.mr_kcenter` and
:mod:`repro.core.mr_outliers` only need the two-round pattern.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Sequence

import numpy as np

from ..exceptions import (
    EmptyStreamError,
    InvalidParameterError,
    MemoryBudgetExceededError,
)
from ..streaming.stream import GeneratorStream, PointStream
from .backends import (
    ExecutorBackend,
    PartitionBuffer,
    SharedArray,
    available_storage_tiers,
    resolve_backend,
    resolve_storage,
)
from .partitioner import ChunkRouter

__all__ = [
    "KeyValue",
    "RoundStats",
    "JobStats",
    "StreamShuffleResult",
    "StreamedPartition",
    "MapReduceRuntime",
    "default_sizeof",
    "identity_mapper",
    "shuffle_point_stream",
]


KeyValue = tuple[Hashable, object]
"""A key-value pair as consumed and produced by mappers and reducers."""

Mapper = Callable[[Hashable, object], Iterable[KeyValue]]
Reducer = Callable[[Hashable, list], Iterable[KeyValue]]


def default_sizeof(value: object) -> int:
    """Default memory accounting: NumPy arrays count rows, sized objects count ``len``, else 1.

    The unit is "points" (items), matching the paper's memory bounds which
    are stated in numbers of stored points rather than bytes.
    """
    if isinstance(value, np.ndarray):
        return int(value.shape[0]) if value.ndim > 0 else 1
    try:
        return len(value)  # type: ignore[arg-type]
    except TypeError:
        return 1


@dataclass
class RoundStats:
    """Accounting for one MapReduce round.

    Attributes
    ----------
    round_index:
        0-based index of the round within the job.
    n_reducers:
        Number of distinct keys (reduce groups) in the round.
    reducer_input_sizes:
        Memory (in items, per :func:`default_sizeof`) received by each
        reducer, keyed by reduce key.
    reducer_times:
        Wall-clock seconds spent inside each reducer.
    map_time:
        Wall-clock seconds spent in the map + shuffle phase.
    """

    round_index: int
    n_reducers: int = 0
    reducer_input_sizes: dict = field(default_factory=dict)
    reducer_times: dict = field(default_factory=dict)
    map_time: float = 0.0

    @property
    def max_local_memory(self) -> int:
        """Largest reducer input size in this round (the round's ``M_L``)."""
        return max(self.reducer_input_sizes.values(), default=0)

    @property
    def total_memory(self) -> int:
        """Sum of reducer input sizes in this round (contribution to ``M_A``)."""
        return sum(self.reducer_input_sizes.values())

    @property
    def parallel_time(self) -> float:
        """Parallel reduce time estimate: the slowest reducer of the round."""
        return max(self.reducer_times.values(), default=0.0)

    @property
    def sequential_time(self) -> float:
        """Total reduce time if every reducer ran on a single processor."""
        return sum(self.reducer_times.values())


@dataclass
class JobStats:
    """Aggregated accounting over all rounds executed by a runtime."""

    rounds: list[RoundStats] = field(default_factory=list)
    #: Largest working set (in points) the *coordinator* itself held at
    #: any moment: the full input for the in-memory path, one routing
    #: chunk plus the inter-round coreset union for the streamed path.
    #: This is the quantity the out-of-core shuffle bounds at
    #: ``O(chunk + coreset)``.
    coordinator_peak_items: int = 0
    #: Partition-storage tier the streamed shuffle used
    #: (``"memory"``/``"shared"``/``"disk"``); ``None`` when no streamed
    #: shuffle ran.
    storage_tier: str | None = None
    #: Bytes of partition data written to spill files (0 unless the
    #: ``"disk"`` tier ran).
    spilled_bytes: int = 0
    #: One dict per round executed on the distributed backend, mapping
    #: each reduce key to the worker addresses attempted in order (a
    #: list longer than one records a retry after a worker failure).
    #: Empty for the single-host backends.
    worker_assignments: list = field(default_factory=list)
    #: Total payload bytes shipped to distributed workers (reducers,
    #: pushed spill files and task payloads); 0 for single-host backends.
    bytes_shipped: int = 0

    @property
    def n_rounds(self) -> int:
        """Number of rounds executed."""
        return len(self.rounds)

    @property
    def peak_local_memory(self) -> int:
        """The job's ``M_L``: the largest reducer input over all rounds."""
        return max((r.max_local_memory for r in self.rounds), default=0)

    @property
    def aggregate_memory(self) -> int:
        """The job's ``M_A``: the largest per-round total reducer input."""
        return max((r.total_memory for r in self.rounds), default=0)

    @property
    def peak_working_memory_size(self) -> int:
        """The paper's space metric for the whole job, in stored points.

        The largest working set any single participant (a reducer *or*
        the coordinator) held — the MapReduce counterpart of the
        streaming algorithms' ``peak_working_memory_size``.
        """
        return max(self.peak_local_memory, self.coordinator_peak_items)

    @property
    def parallel_time(self) -> float:
        """Parallel time estimate: per round, map time plus slowest reducer."""
        return sum(r.map_time + r.parallel_time for r in self.rounds)

    @property
    def sequential_time(self) -> float:
        """Time the job would take with a single processor."""
        return sum(r.map_time + r.sequential_time for r in self.rounds)


@dataclass(frozen=True)
class StreamedPartition:
    """One shuffled partition: its point matrix plus the global-index column.

    ``__len__`` reports the number of *points*, so the runtime's memory
    accounting charges a streamed round-1 reducer exactly what the
    in-memory path charges it (the index column is metadata). Picklable
    on every backend (the members are :class:`SharedArray` handles).
    """

    points: SharedArray
    indices: SharedArray

    def __len__(self) -> int:
        return len(self.points)


def identity_mapper(key, value):
    """Pass pre-keyed pairs straight into the shuffle (streamed rounds)."""
    yield (key, value)


@dataclass(frozen=True)
class StreamShuffleResult:
    """Outcome of an out-of-core map/shuffle pass.

    Attributes
    ----------
    parts:
        One sealed ``(n_i, d)`` :class:`SharedArray` per partition
        (possibly zero-row for partitions the routing left empty).
    index_parts:
        Matching ``(n_i,)`` arrays of global stream indices, so reducers
        can report solutions in terms of the original data. ``None`` when
        the shuffle was run with ``with_indices=False``.
    n_points:
        Total number of stream points routed.
    dimension:
        Point dimensionality observed on the stream.
    chunk_peak:
        Largest single chunk (in points) the coordinator held in flight.
    storage_tier:
        Partition-storage tier the shuffle used
        (``"memory"``/``"shared"``/``"disk"``).
    spilled_bytes:
        Bytes of partition data written to spill files (0 unless the
        ``"disk"`` tier ran).
    """

    parts: list
    index_parts: list | None
    n_points: int
    dimension: int
    chunk_peak: int
    storage_tier: str = "memory"
    spilled_bytes: int = 0


class MapReduceRuntime:
    """MapReduce engine with memory accounting and a pluggable reduce executor.

    Parameters
    ----------
    local_memory_limit:
        Optional hard cap (in items) on the input any single reducer may
        receive; exceeding it raises
        :class:`~repro.exceptions.MemoryBudgetExceededError`. ``None``
        disables enforcement (accounting still happens).
    sizeof:
        Item-size function used for memory accounting; defaults to
        :func:`default_sizeof`.
    max_workers:
        Worker count for the pooled backends. ``None`` means 1 for the
        default (backend-less) configuration and one worker per CPU when
        an explicit ``"threads"``/``"processes"`` backend is named.
    backend:
        ``"serial"``, ``"threads"``, ``"processes"``, ``"distributed"``,
        an :class:`~repro.mapreduce.backends.ExecutorBackend` instance,
        or ``None`` (historical behavior: threads when ``max_workers``
        > 1, serial otherwise — or distributed when ``workers`` is
        given). See the module docstring for when each backend wins.
        Reducers must not share mutable state unsafely on the pooled
        backends, and must be picklable for ``"processes"`` and
        ``"distributed"``. Backends named by string are owned and closed
        by the runtime; an instance passed in stays open across
        :meth:`close` so its pool can be reused, and is closed by the
        caller.
    workers:
        Worker daemon addresses (``["host:port", ...]``) for the
        distributed backend; selects ``backend="distributed"`` when no
        backend is named. See the "Distributed backend" section of the
        module docstring.
    storage:
        Partition-storage tier for :meth:`shuffle_stream`: ``"auto"``
        (default), ``"memory"``, ``"shared"`` or ``"disk"``. See the
        "Storage tiers" section of the module docstring.
    spill_dir:
        Directory for ``"disk"``-tier spill files. ``None`` (default)
        uses a runtime-owned temporary directory that :meth:`close`
        removes; a caller-provided directory is created if missing and
        left in place (only the spill files themselves are deleted).
    memory_budget_bytes:
        Budget (bytes) for the in-memory partition tiers under
        ``storage="auto"``: a shuffle whose estimated partition
        footprint exceeds it — or cannot be estimated, for unsized
        streams — spills to disk. ``None`` disables the budget.

    Examples
    --------
    >>> runtime = MapReduceRuntime()
    >>> pairs = [(None, [1, 2, 3, 4])]
    >>> def mapper(key, values):
    ...     for v in values:
    ...         yield (v % 2, v)
    >>> def reducer(key, values):
    ...     yield (key, sum(values))
    >>> sorted(runtime.execute_round(pairs, mapper, reducer))
    [(0, 6), (1, 4)]
    """

    def __init__(
        self,
        *,
        local_memory_limit: int | None = None,
        sizeof: Callable[[object], int] = default_sizeof,
        max_workers: int | None = None,
        backend: str | ExecutorBackend | None = None,
        workers=None,
        storage: str = "auto",
        spill_dir: str | None = None,
        memory_budget_bytes: int | None = None,
    ) -> None:
        if local_memory_limit is not None and local_memory_limit < 1:
            raise InvalidParameterError("local_memory_limit must be >= 1 or None")
        if max_workers is not None and max_workers < 1:
            raise InvalidParameterError("max_workers must be >= 1")
        if storage not in available_storage_tiers():
            raise InvalidParameterError(
                f"unknown storage tier {storage!r}; available: "
                f"{', '.join(available_storage_tiers())}"
            )
        if memory_budget_bytes is not None and memory_budget_bytes < 1:
            raise InvalidParameterError("memory_budget_bytes must be >= 1 or None")
        self._local_memory_limit = local_memory_limit
        self._sizeof = sizeof
        # Backends named by string (or defaulted) are created, and therefore
        # owned and closed, by this runtime; instances passed in belong to
        # the caller, whose pool must survive (and be reusable after) close().
        self._owns_backend = backend is None or isinstance(backend, str)
        self._backend = resolve_backend(backend, max_workers=max_workers, workers=workers)
        self._storage = storage
        self._spill_dir = spill_dir
        self._own_spill_dir: str | None = None
        self._memory_budget_bytes = memory_budget_bytes
        self._shared_arrays: list[SharedArray] = []
        self._stats = JobStats()

    # -- lifecycle ---------------------------------------------------------------------

    @property
    def backend(self) -> ExecutorBackend:
        """The executor backend running this runtime's reduce phases."""
        return self._backend

    def share_array(self, array) -> SharedArray:
        """Publish a large array for cheap access from reducers on any backend.

        Arrays shared through the runtime are released by :meth:`close`
        even when the backend itself is caller-owned. The array is
        charged to the coordinator's working set (it was materialised
        here to be published); the streamed shuffle avoids exactly this
        charge.
        """
        shared = self._backend.share_array(array)
        self._shared_arrays.append(shared)
        self.note_coordinator_items(len(shared))
        return shared

    def note_coordinator_items(self, items: int) -> None:
        """Record that the coordinator held ``items`` points at one moment."""
        self._stats.coordinator_peak_items = max(
            self._stats.coordinator_peak_items, int(items)
        )

    def _ensure_spill_dir(self, override: str | None = None) -> str:
        """The directory disk-tier spill files go to (created on first use)."""
        caller_dir = override if override is not None else self._spill_dir
        if caller_dir is not None:
            os.makedirs(caller_dir, exist_ok=True)
            return caller_dir
        if self._own_spill_dir is None:
            self._own_spill_dir = tempfile.mkdtemp(prefix="repro-spill-")
        return self._own_spill_dir

    def shuffle_stream(
        self,
        chunks: Iterable[np.ndarray],
        router: ChunkRouter,
        *,
        with_indices: bool = True,
        dtype=np.float64,
        partition_size_hint: int | None = None,
        max_chunk_rows: int | None = None,
        storage: str | None = None,
        spill_dir: str | None = None,
    ) -> StreamShuffleResult:
        """Route a chunked point stream into per-partition buffers (out of core).

        ``chunks`` yields ``(m, d)`` arrays in stream order (e.g. from
        :meth:`repro.streaming.stream.PointStream.iterate_batches`);
        ``router`` decides each row's partition from its global stream
        index alone. Rows are scattered into per-partition
        :class:`~repro.mapreduce.backends.PartitionBuffer` storage on
        the tier ``storage`` selects (``None`` defers to the runtime's
        ``storage=`` default; see the "Storage tiers" section of the
        module docstring) — so the coordinator never assembles the full
        ``(n, d)`` matrix; its working set is one chunk plus routing
        metadata, recorded in :attr:`JobStats.coordinator_peak_items`.
        The tier that ran and the bytes it spilled are recorded in
        :attr:`JobStats.storage_tier` / :attr:`JobStats.spilled_bytes`.

        The sealed partitions are registered with the runtime and
        released by :meth:`close`; on a mid-stream failure every
        partially-filled buffer (shared segment or spill file) is closed
        and unlinked before the exception propagates. ``max_chunk_rows``
        re-splits oversized incoming chunks (sources with native
        batching, such as
        :class:`~repro.streaming.stream.GeneratorStream`, may deliver
        chunks larger than the requested size) so the coordinator's
        in-flight working set — and the recorded ``chunk_peak`` — stays
        bounded regardless of the source's granularity.
        """
        if max_chunk_rows is not None and max_chunk_rows < 1:
            raise InvalidParameterError("max_chunk_rows must be >= 1 (or None)")
        if storage is not None and storage not in available_storage_tiers():
            # Validated before any chunk is consumed: a typo'd tier must not
            # cost a single-pass stream its first chunk.
            raise InvalidParameterError(
                f"unknown storage tier {storage!r}; available: "
                f"{', '.join(available_storage_tiers())}"
            )
        dtype = np.dtype(dtype)
        hint = partition_size_hint
        if hint is None and router.n_total is not None:
            hint = max(1, -(-router.n_total // router.ell))  # ceil division
        # The partition footprint can only be estimated once the first chunk
        # reveals the dimension; until then the tier is undecided.
        estimated_bytes: int | None = None
        buffers: list[PartitionBuffer] | None = None
        index_buffers: list[PartitionBuffer] | None = None
        sealed: list[SharedArray] = []
        dimension: int | None = None
        tier: str | None = None
        chunk_peak = 0

        def bounded_chunks():
            for chunk in chunks:
                chunk = np.asarray(chunk, dtype=dtype)
                if chunk.ndim != 2:
                    raise InvalidParameterError(
                        f"shuffle chunks must be (m, d) arrays; got ndim={chunk.ndim}"
                    )
                if max_chunk_rows is None or chunk.shape[0] <= max_chunk_rows:
                    yield chunk
                else:
                    for start in range(0, chunk.shape[0], max_chunk_rows):
                        yield chunk[start : start + max_chunk_rows]

        try:
            for chunk in bounded_chunks():
                m = chunk.shape[0]
                if m == 0:
                    continue
                if buffers is None:
                    dimension = int(chunk.shape[1])
                    if router.n_total is not None:
                        row_bytes = dimension * dtype.itemsize
                        if with_indices:
                            row_bytes += np.dtype(np.intp).itemsize
                        estimated_bytes = router.n_total * row_bytes
                    tier = resolve_storage(
                        storage if storage is not None else self._storage,
                        backend=self._backend,
                        estimated_bytes=estimated_bytes,
                        memory_budget_bytes=self._memory_budget_bytes,
                    )
                    tier_spill_dir = (
                        self._ensure_spill_dir(spill_dir) if tier == "disk" else None
                    )
                    capacity = hint or max(1, m)
                    buffers = [
                        PartitionBuffer(
                            dimension,
                            dtype=dtype,
                            storage=tier,
                            initial_capacity=capacity,
                            spill_dir=tier_spill_dir,
                        )
                        for _ in range(router.ell)
                    ]
                    if with_indices:
                        index_buffers = [
                            PartitionBuffer(
                                None,
                                dtype=np.intp,
                                storage=tier,
                                initial_capacity=capacity,
                                spill_dir=tier_spill_dir,
                            )
                            for _ in range(router.ell)
                        ]
                elif chunk.shape[1] != dimension:
                    raise InvalidParameterError(
                        f"chunk has dimension {chunk.shape[1]}, expected {dimension}"
                    )
                chunk_peak = max(chunk_peak, m)
                global_indices = router.points_routed + np.arange(m, dtype=np.intp)
                assignment = router.route(m)
                # Stable sort keeps stream order inside each partition, matching
                # the increasing-index order of the in-memory split_* functions.
                order = np.argsort(assignment, kind="stable")
                counts = np.bincount(assignment, minlength=router.ell)
                sorted_rows = chunk[order]
                sorted_indices = global_indices[order]
                start = 0
                for partition_id, count in enumerate(counts):
                    stop = start + int(count)
                    if stop > start:
                        buffers[partition_id].append(sorted_rows[start:stop])
                        if index_buffers is not None:
                            index_buffers[partition_id].append(sorted_indices[start:stop])
                    start = stop

            if buffers is None:
                raise EmptyStreamError("the stream delivered no points to shuffle")
            if router.n_total is not None and router.points_routed != router.n_total:
                raise InvalidParameterError(
                    f"the stream delivered {router.points_routed} points but "
                    f"declared {router.n_total}"
                )

            spilled = sum(buffer.spilled_bytes for buffer in buffers)
            parts = []
            for buffer in buffers:
                parts.append(buffer.finalize())
                sealed.append(parts[-1])
            index_parts: list | None = None
            if index_buffers is not None:
                spilled += sum(buffer.spilled_bytes for buffer in index_buffers)
                index_parts = []
                for buffer in index_buffers:
                    index_parts.append(buffer.finalize())
                    sealed.append(index_parts[-1])
        except BaseException:
            # A failure (or interrupt) mid-shuffle must not strand the
            # partially-filled shared segments / spill files — nor any
            # partition already sealed when a later finalize fails —
            # until process exit.
            for handle in sealed:
                handle.close()
            for buffer in (buffers or []) + (index_buffers or []):
                buffer.close()
            raise

        self._shared_arrays.extend(sealed)
        self.note_coordinator_items(chunk_peak)
        self._stats.storage_tier = tier
        self._stats.spilled_bytes += spilled
        return StreamShuffleResult(
            parts=parts,
            index_parts=index_parts,
            n_points=router.points_routed,
            dimension=dimension,
            chunk_peak=chunk_peak,
            storage_tier=tier,
            spilled_bytes=spilled,
        )

    def close(self) -> None:
        """Release resources this runtime owns. Idempotent.

        Arrays published via :meth:`share_array` are always released; the
        backend's pools are shut down only when the runtime created the
        backend itself (from a name or the default). A backend instance
        passed in by the caller is left running so it can be reused across
        runtimes — the caller closes it.
        """
        while self._shared_arrays:
            self._shared_arrays.pop().close()
        if self._own_spill_dir is not None:
            spill_dir, self._own_spill_dir = self._own_spill_dir, None
            shutil.rmtree(spill_dir, ignore_errors=True)
        if self._owns_backend:
            self._backend.close()

    def __enter__(self) -> "MapReduceRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- accounting --------------------------------------------------------------------

    @property
    def stats(self) -> JobStats:
        """Accumulated per-round and per-job accounting."""
        return self._stats

    def reset(self) -> None:
        """Forget all accounting from previous rounds."""
        self._stats = JobStats()

    def _account_groups(
        self, stats: RoundStats, groups: dict[Hashable, list]
    ) -> None:
        """Record reducer input sizes and enforce the local memory limit.

        Runs in the coordinator before any reducer is dispatched, so the
        accounting (and limit enforcement) is identical on every backend.
        """
        stats.n_reducers = len(groups)
        for key, values in groups.items():
            size = sum(self._sizeof(v) for v in values)
            stats.reducer_input_sizes[key] = size
            if self._local_memory_limit is not None and size > self._local_memory_limit:
                raise MemoryBudgetExceededError(
                    f"reducer for key {key!r} received {size} items, "
                    f"exceeding the local memory limit of {self._local_memory_limit}"
                )

    # -- execution ---------------------------------------------------------------------

    def execute_round(
        self,
        pairs: Sequence[KeyValue],
        mapper: Mapper,
        reducer: Reducer,
    ) -> list[KeyValue]:
        """Execute one map-shuffle-reduce round and return the output pairs.

        ``mapper`` is applied to every input pair and must yield zero or
        more ``(key, value)`` pairs; values with equal keys are grouped and
        handed to ``reducer`` as a list (in emission order, making the
        engine deterministic); the concatenation of all reducer outputs is
        returned, in the deterministic insertion order of the reduce keys
        regardless of the backend.
        """
        stats = RoundStats(round_index=self._stats.n_rounds)

        map_start = time.perf_counter()
        groups: dict[Hashable, list] = {}
        for key, value in pairs:
            for out_key, out_value in mapper(key, value):
                groups.setdefault(out_key, []).append(out_value)
        stats.map_time = time.perf_counter() - map_start

        self._account_groups(stats, groups)

        results = self._backend.run_reducers(reducer, groups)
        outputs: list[KeyValue] = []
        for key in groups:
            produced, elapsed = results[key]
            outputs.extend(produced)
            stats.reducer_times[key] = elapsed

        # Distributed rounds additionally report where each group ran and
        # how many payload bytes crossed the wire; see JobStats.
        take_accounting = getattr(self._backend, "take_round_accounting", None)
        if take_accounting is not None:
            assignments, shipped = take_accounting()
            self._stats.worker_assignments.append(assignments)
            self._stats.bytes_shipped += shipped

        self._stats.rounds.append(stats)
        return outputs

    def execute_job(
        self,
        pairs: Sequence[KeyValue],
        rounds: Sequence[tuple[Mapper, Reducer]],
    ) -> list[KeyValue]:
        """Execute several rounds in sequence, feeding each round's output to the next."""
        current = list(pairs)
        for mapper, reducer in rounds:
            current = self.execute_round(current, mapper, reducer)
        return current


def shuffle_point_stream(
    runtime: MapReduceRuntime,
    stream,
    *,
    ell: int,
    partitioning: str,
    rng: np.random.Generator,
    chunk_size: int,
    storage: str | None = None,
    spill_dir: str | None = None,
) -> tuple[list[StreamedPartition], int, int]:
    """The drivers' shared out-of-core shuffle prologue.

    Wraps ``stream`` (a :class:`~repro.streaming.stream.PointStream` or
    any iterable of points/batches), probes its length, caps ``ell`` at
    the length when it is known, builds the matching
    :class:`~repro.mapreduce.partitioner.ChunkRouter` — consuming ``rng``
    exactly like the in-memory ``split_*`` path (one variate for the
    random hash seed, nothing for the deterministic strategies) — and
    runs :meth:`MapReduceRuntime.shuffle_stream` with oversized native
    batches re-split to ``chunk_size``, on the partition-storage tier
    ``storage`` selects (``None`` defers to the runtime's default).

    Returns ``(partitions, n_points, ell_used)``. A stream that declares
    length 0 raises :class:`~repro.exceptions.EmptyStreamError`
    deterministically, before any buffer is allocated. Both MapReduce
    drivers route through this single helper so the
    bit-identical-to-``fit`` guarantee cannot drift between them. Note
    the one caveat it cannot remove: for unknown-length streams ``ell``
    is used as given (the in-memory path caps it at ``n``), so exact
    ``fit`` equivalence on tiny inputs additionally needs ``ell <= n``
    or a sized stream.
    """
    if chunk_size < 1:
        raise InvalidParameterError("chunk_size must be >= 1")
    if not isinstance(stream, PointStream):
        stream = GeneratorStream(stream)
    try:
        n_hint = len(stream)
    except TypeError:
        n_hint = None
    if n_hint == 0:
        raise EmptyStreamError("the stream declares length 0; nothing to shuffle")
    ell_used = ell if n_hint is None else min(ell, n_hint)
    if partitioning == "random":
        router = ChunkRouter(
            ell_used, "random", n_total=n_hint, seed=int(rng.integers(2**63 - 1))
        )
    else:
        router = ChunkRouter(ell_used, partitioning, n_total=n_hint)
    shuffled = runtime.shuffle_stream(
        stream.iterate_batches(chunk_size),
        router,
        max_chunk_rows=chunk_size,
        storage=storage,
        spill_dir=spill_dir,
    )
    parts = [
        StreamedPartition(points, indices)
        for points, indices in zip(shuffled.parts, shuffled.index_parts)
    ]
    return parts, shuffled.n_points, ell_used
