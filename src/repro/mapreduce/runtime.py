"""A MapReduce runtime with memory accounting and pluggable execution backends.

The paper's algorithms are 2-round MapReduce computations; what their
analysis actually constrains is (a) the number of rounds, (b) the local
memory ``M_L`` any single reducer needs, and (c) the aggregate memory
``M_A`` across reducers. This module provides a small, deterministic
MapReduce engine that executes arbitrary mapper/reducer functions while
*faithfully tracking those three quantities*, plus per-reducer wall-clock
time so that the parallel running time of a round can be reported as the
maximum reducer time (the quantity a real cluster would exhibit).

Execution model
---------------
The map and shuffle phases always run in the coordinating process, as
does all accounting: reduce groups are formed, sized with ``sizeof``, and
checked against the local memory limit *before* any reducer runs. Only
then is the reduce phase handed to an
:class:`~repro.mapreduce.backends.ExecutorBackend`:

* ``backend="serial"`` — reducers run one after the other in the calling
  process. The deterministic reference; also the default when
  ``max_workers`` is 1 or unset.
* ``backend="threads"`` — reducers run on a thread pool. Best when the
  reducer work is dominated by NumPy kernels (they release the GIL), and
  when reducers close over large in-process state, since nothing is
  serialised. The default when ``max_workers`` > 1, matching this
  engine's historical behavior.
* ``backend="processes"`` — reducers run on a process pool. Each task
  pickles the reducer callable and its group values, so reducers must be
  module-level functions (or partials of them); in exchange the GIL no
  longer serialises pure-Python reducer work. Large point matrices should
  be published once via :meth:`MapReduceRuntime.share_array`, which under
  this backend places them in POSIX shared memory so tasks reference them
  by name instead of copying them.

Rule of thumb: ``threads`` wins when reducers are thin wrappers around
vectorised NumPy calls and payloads are large (zero serialisation);
``processes`` wins when reducers spend significant time in Python
bytecode (GMM's incremental loop, radius search probes) or when true CPU
isolation is wanted — provided the per-task payload is kept small, e.g.
index arrays over a shared point matrix.

Accounting is backend-agnostic by construction: every backend returns the
same per-group outputs and in-reducer timings, the runtime collects them
in deterministic (insertion) key order, and the recorded
:class:`RoundStats` are therefore identical across backends modulo the
timing values themselves. The cross-backend equivalence suite in
``tests/mapreduce/test_backends.py`` enforces this.

The engine is intentionally general (key-value pairs, one mapper and one
reducer per round) so that other algorithms can be expressed on it, but
the k-center drivers in :mod:`repro.core.mr_kcenter` and
:mod:`repro.core.mr_outliers` only need the two-round pattern.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Sequence

import numpy as np

from ..exceptions import InvalidParameterError, MemoryBudgetExceededError
from .backends import ExecutorBackend, SharedArray, resolve_backend

__all__ = ["KeyValue", "RoundStats", "JobStats", "MapReduceRuntime", "default_sizeof"]


KeyValue = tuple[Hashable, object]
"""A key-value pair as consumed and produced by mappers and reducers."""

Mapper = Callable[[Hashable, object], Iterable[KeyValue]]
Reducer = Callable[[Hashable, list], Iterable[KeyValue]]


def default_sizeof(value: object) -> int:
    """Default memory accounting: NumPy arrays count rows, sized objects count ``len``, else 1.

    The unit is "points" (items), matching the paper's memory bounds which
    are stated in numbers of stored points rather than bytes.
    """
    if isinstance(value, np.ndarray):
        return int(value.shape[0]) if value.ndim > 0 else 1
    try:
        return len(value)  # type: ignore[arg-type]
    except TypeError:
        return 1


@dataclass
class RoundStats:
    """Accounting for one MapReduce round.

    Attributes
    ----------
    round_index:
        0-based index of the round within the job.
    n_reducers:
        Number of distinct keys (reduce groups) in the round.
    reducer_input_sizes:
        Memory (in items, per :func:`default_sizeof`) received by each
        reducer, keyed by reduce key.
    reducer_times:
        Wall-clock seconds spent inside each reducer.
    map_time:
        Wall-clock seconds spent in the map + shuffle phase.
    """

    round_index: int
    n_reducers: int = 0
    reducer_input_sizes: dict = field(default_factory=dict)
    reducer_times: dict = field(default_factory=dict)
    map_time: float = 0.0

    @property
    def max_local_memory(self) -> int:
        """Largest reducer input size in this round (the round's ``M_L``)."""
        return max(self.reducer_input_sizes.values(), default=0)

    @property
    def total_memory(self) -> int:
        """Sum of reducer input sizes in this round (contribution to ``M_A``)."""
        return sum(self.reducer_input_sizes.values())

    @property
    def parallel_time(self) -> float:
        """Parallel reduce time estimate: the slowest reducer of the round."""
        return max(self.reducer_times.values(), default=0.0)

    @property
    def sequential_time(self) -> float:
        """Total reduce time if every reducer ran on a single processor."""
        return sum(self.reducer_times.values())


@dataclass
class JobStats:
    """Aggregated accounting over all rounds executed by a runtime."""

    rounds: list[RoundStats] = field(default_factory=list)

    @property
    def n_rounds(self) -> int:
        """Number of rounds executed."""
        return len(self.rounds)

    @property
    def peak_local_memory(self) -> int:
        """The job's ``M_L``: the largest reducer input over all rounds."""
        return max((r.max_local_memory for r in self.rounds), default=0)

    @property
    def aggregate_memory(self) -> int:
        """The job's ``M_A``: the largest per-round total reducer input."""
        return max((r.total_memory for r in self.rounds), default=0)

    @property
    def parallel_time(self) -> float:
        """Parallel time estimate: per round, map time plus slowest reducer."""
        return sum(r.map_time + r.parallel_time for r in self.rounds)

    @property
    def sequential_time(self) -> float:
        """Time the job would take with a single processor."""
        return sum(r.map_time + r.sequential_time for r in self.rounds)


class MapReduceRuntime:
    """MapReduce engine with memory accounting and a pluggable reduce executor.

    Parameters
    ----------
    local_memory_limit:
        Optional hard cap (in items) on the input any single reducer may
        receive; exceeding it raises
        :class:`~repro.exceptions.MemoryBudgetExceededError`. ``None``
        disables enforcement (accounting still happens).
    sizeof:
        Item-size function used for memory accounting; defaults to
        :func:`default_sizeof`.
    max_workers:
        Worker count for the pooled backends. ``None`` means 1 for the
        default (backend-less) configuration and one worker per CPU when
        an explicit ``"threads"``/``"processes"`` backend is named.
    backend:
        ``"serial"``, ``"threads"``, ``"processes"``, an
        :class:`~repro.mapreduce.backends.ExecutorBackend` instance, or
        ``None`` (historical behavior: threads when ``max_workers`` > 1,
        serial otherwise). See the module docstring for when each backend
        wins. Reducers must not share mutable state unsafely on the
        pooled backends, and must be picklable for ``"processes"``.
        Backends named by string are owned and closed by the runtime;
        an instance passed in stays open across :meth:`close` so its
        pool can be reused, and is closed by the caller.

    Examples
    --------
    >>> runtime = MapReduceRuntime()
    >>> pairs = [(None, [1, 2, 3, 4])]
    >>> def mapper(key, values):
    ...     for v in values:
    ...         yield (v % 2, v)
    >>> def reducer(key, values):
    ...     yield (key, sum(values))
    >>> sorted(runtime.execute_round(pairs, mapper, reducer))
    [(0, 6), (1, 4)]
    """

    def __init__(
        self,
        *,
        local_memory_limit: int | None = None,
        sizeof: Callable[[object], int] = default_sizeof,
        max_workers: int | None = None,
        backend: str | ExecutorBackend | None = None,
    ) -> None:
        if local_memory_limit is not None and local_memory_limit < 1:
            raise InvalidParameterError("local_memory_limit must be >= 1 or None")
        if max_workers is not None and max_workers < 1:
            raise InvalidParameterError("max_workers must be >= 1")
        self._local_memory_limit = local_memory_limit
        self._sizeof = sizeof
        # Backends named by string (or defaulted) are created, and therefore
        # owned and closed, by this runtime; instances passed in belong to
        # the caller, whose pool must survive (and be reusable after) close().
        self._owns_backend = backend is None or isinstance(backend, str)
        self._backend = resolve_backend(backend, max_workers=max_workers)
        self._shared_arrays: list[SharedArray] = []
        self._stats = JobStats()

    # -- lifecycle ---------------------------------------------------------------------

    @property
    def backend(self) -> ExecutorBackend:
        """The executor backend running this runtime's reduce phases."""
        return self._backend

    def share_array(self, array) -> SharedArray:
        """Publish a large array for cheap access from reducers on any backend.

        Arrays shared through the runtime are released by :meth:`close`
        even when the backend itself is caller-owned.
        """
        shared = self._backend.share_array(array)
        self._shared_arrays.append(shared)
        return shared

    def close(self) -> None:
        """Release resources this runtime owns. Idempotent.

        Arrays published via :meth:`share_array` are always released; the
        backend's pools are shut down only when the runtime created the
        backend itself (from a name or the default). A backend instance
        passed in by the caller is left running so it can be reused across
        runtimes — the caller closes it.
        """
        while self._shared_arrays:
            self._shared_arrays.pop().close()
        if self._owns_backend:
            self._backend.close()

    def __enter__(self) -> "MapReduceRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- accounting --------------------------------------------------------------------

    @property
    def stats(self) -> JobStats:
        """Accumulated per-round and per-job accounting."""
        return self._stats

    def reset(self) -> None:
        """Forget all accounting from previous rounds."""
        self._stats = JobStats()

    def _account_groups(
        self, stats: RoundStats, groups: dict[Hashable, list]
    ) -> None:
        """Record reducer input sizes and enforce the local memory limit.

        Runs in the coordinator before any reducer is dispatched, so the
        accounting (and limit enforcement) is identical on every backend.
        """
        stats.n_reducers = len(groups)
        for key, values in groups.items():
            size = sum(self._sizeof(v) for v in values)
            stats.reducer_input_sizes[key] = size
            if self._local_memory_limit is not None and size > self._local_memory_limit:
                raise MemoryBudgetExceededError(
                    f"reducer for key {key!r} received {size} items, "
                    f"exceeding the local memory limit of {self._local_memory_limit}"
                )

    # -- execution ---------------------------------------------------------------------

    def execute_round(
        self,
        pairs: Sequence[KeyValue],
        mapper: Mapper,
        reducer: Reducer,
    ) -> list[KeyValue]:
        """Execute one map-shuffle-reduce round and return the output pairs.

        ``mapper`` is applied to every input pair and must yield zero or
        more ``(key, value)`` pairs; values with equal keys are grouped and
        handed to ``reducer`` as a list (in emission order, making the
        engine deterministic); the concatenation of all reducer outputs is
        returned, in the deterministic insertion order of the reduce keys
        regardless of the backend.
        """
        stats = RoundStats(round_index=self._stats.n_rounds)

        map_start = time.perf_counter()
        groups: dict[Hashable, list] = {}
        for key, value in pairs:
            for out_key, out_value in mapper(key, value):
                groups.setdefault(out_key, []).append(out_value)
        stats.map_time = time.perf_counter() - map_start

        self._account_groups(stats, groups)

        results = self._backend.run_reducers(reducer, groups)
        outputs: list[KeyValue] = []
        for key in groups:
            produced, elapsed = results[key]
            outputs.extend(produced)
            stats.reducer_times[key] = elapsed

        self._stats.rounds.append(stats)
        return outputs

    def execute_job(
        self,
        pairs: Sequence[KeyValue],
        rounds: Sequence[tuple[Mapper, Reducer]],
    ) -> list[KeyValue]:
        """Execute several rounds in sequence, feeding each round's output to the next."""
        current = list(pairs)
        for mapper, reducer in rounds:
            current = self.execute_round(current, mapper, reducer)
        return current
