"""A simulated MapReduce runtime with memory and work accounting.

The paper's algorithms are 2-round MapReduce computations; what their
analysis actually constrains is (a) the number of rounds, (b) the local
memory ``M_L`` any single reducer needs, and (c) the aggregate memory
``M_A`` across reducers. This module provides a small, deterministic,
single-process MapReduce engine that executes arbitrary mapper/reducer
functions while *faithfully tracking those three quantities*, plus
per-reducer wall-clock time so that the "parallel" running time of a
round can be estimated as the maximum reducer time (the quantity a real
cluster would exhibit).

The engine is intentionally general (key-value pairs, one mapper and one
reducer per round) so that other algorithms can be expressed on it, but
the k-center drivers in :mod:`repro.core.mr_kcenter` and
:mod:`repro.core.mr_outliers` only need the two-round pattern.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Sequence

import numpy as np

from ..exceptions import InvalidParameterError, MemoryBudgetExceededError

__all__ = ["KeyValue", "RoundStats", "JobStats", "MapReduceRuntime", "default_sizeof"]


KeyValue = tuple[Hashable, object]
"""A key-value pair as consumed and produced by mappers and reducers."""

Mapper = Callable[[Hashable, object], Iterable[KeyValue]]
Reducer = Callable[[Hashable, list], Iterable[KeyValue]]


def default_sizeof(value: object) -> int:
    """Default memory accounting: NumPy arrays count rows, sized objects count ``len``, else 1.

    The unit is "points" (items), matching the paper's memory bounds which
    are stated in numbers of stored points rather than bytes.
    """
    if isinstance(value, np.ndarray):
        return int(value.shape[0]) if value.ndim > 0 else 1
    try:
        return len(value)  # type: ignore[arg-type]
    except TypeError:
        return 1


@dataclass
class RoundStats:
    """Accounting for one MapReduce round.

    Attributes
    ----------
    round_index:
        0-based index of the round within the job.
    n_reducers:
        Number of distinct keys (reduce groups) in the round.
    reducer_input_sizes:
        Memory (in items, per :func:`default_sizeof`) received by each
        reducer, keyed by reduce key.
    reducer_times:
        Wall-clock seconds spent inside each reducer.
    map_time:
        Wall-clock seconds spent in the map + shuffle phase.
    """

    round_index: int
    n_reducers: int = 0
    reducer_input_sizes: dict = field(default_factory=dict)
    reducer_times: dict = field(default_factory=dict)
    map_time: float = 0.0

    @property
    def max_local_memory(self) -> int:
        """Largest reducer input size in this round (the round's ``M_L``)."""
        return max(self.reducer_input_sizes.values(), default=0)

    @property
    def total_memory(self) -> int:
        """Sum of reducer input sizes in this round (contribution to ``M_A``)."""
        return sum(self.reducer_input_sizes.values())

    @property
    def parallel_time(self) -> float:
        """Simulated parallel reduce time: the slowest reducer of the round."""
        return max(self.reducer_times.values(), default=0.0)

    @property
    def sequential_time(self) -> float:
        """Total reduce time if every reducer ran on a single processor."""
        return sum(self.reducer_times.values())


@dataclass
class JobStats:
    """Aggregated accounting over all rounds executed by a runtime."""

    rounds: list[RoundStats] = field(default_factory=list)

    @property
    def n_rounds(self) -> int:
        """Number of rounds executed."""
        return len(self.rounds)

    @property
    def peak_local_memory(self) -> int:
        """The job's ``M_L``: the largest reducer input over all rounds."""
        return max((r.max_local_memory for r in self.rounds), default=0)

    @property
    def aggregate_memory(self) -> int:
        """The job's ``M_A``: the largest per-round total reducer input."""
        return max((r.total_memory for r in self.rounds), default=0)

    @property
    def parallel_time(self) -> float:
        """Simulated parallel time: per round, map time plus slowest reducer."""
        return sum(r.map_time + r.parallel_time for r in self.rounds)

    @property
    def sequential_time(self) -> float:
        """Time the job would take with a single processor."""
        return sum(r.map_time + r.sequential_time for r in self.rounds)


class MapReduceRuntime:
    """Deterministic single-process MapReduce engine with accounting.

    Parameters
    ----------
    local_memory_limit:
        Optional hard cap (in items) on the input any single reducer may
        receive; exceeding it raises
        :class:`~repro.exceptions.MemoryBudgetExceededError`. ``None``
        disables enforcement (accounting still happens).
    sizeof:
        Item-size function used for memory accounting; defaults to
        :func:`default_sizeof`.
    max_workers:
        Number of threads used to execute reducers concurrently. The
        default of 1 runs everything sequentially (fully deterministic
        timing); larger values give genuine speed-ups for NumPy-heavy
        reducers (which release the GIL) while keeping the output order
        deterministic. Reducer functions must not share mutable state
        unsafely when this is raised above 1.

    Examples
    --------
    >>> runtime = MapReduceRuntime()
    >>> pairs = [(None, [1, 2, 3, 4])]
    >>> def mapper(key, values):
    ...     for v in values:
    ...         yield (v % 2, v)
    >>> def reducer(key, values):
    ...     yield (key, sum(values))
    >>> sorted(runtime.execute_round(pairs, mapper, reducer))
    [(0, 6), (1, 4)]
    """

    def __init__(
        self,
        *,
        local_memory_limit: int | None = None,
        sizeof: Callable[[object], int] = default_sizeof,
        max_workers: int = 1,
    ) -> None:
        if local_memory_limit is not None and local_memory_limit < 1:
            raise InvalidParameterError("local_memory_limit must be >= 1 or None")
        if max_workers < 1:
            raise InvalidParameterError("max_workers must be >= 1")
        self._local_memory_limit = local_memory_limit
        self._sizeof = sizeof
        self._max_workers = int(max_workers)
        self._stats = JobStats()

    # -- accounting ------------------------------------------------------------------

    @property
    def stats(self) -> JobStats:
        """Accumulated per-round and per-job accounting."""
        return self._stats

    def reset(self) -> None:
        """Forget all accounting from previous rounds."""
        self._stats = JobStats()

    # -- execution -------------------------------------------------------------------

    def execute_round(
        self,
        pairs: Sequence[KeyValue],
        mapper: Mapper,
        reducer: Reducer,
    ) -> list[KeyValue]:
        """Execute one map-shuffle-reduce round and return the output pairs.

        ``mapper`` is applied to every input pair and must yield zero or
        more ``(key, value)`` pairs; values with equal keys are grouped and
        handed to ``reducer`` as a list (in emission order, making the
        engine deterministic); the concatenation of all reducer outputs is
        returned.
        """
        stats = RoundStats(round_index=self._stats.n_rounds)

        map_start = time.perf_counter()
        groups: dict[Hashable, list] = {}
        for key, value in pairs:
            for out_key, out_value in mapper(key, value):
                groups.setdefault(out_key, []).append(out_value)
        stats.map_time = time.perf_counter() - map_start

        stats.n_reducers = len(groups)
        for key, values in groups.items():
            size = sum(self._sizeof(v) for v in values)
            stats.reducer_input_sizes[key] = size
            if self._local_memory_limit is not None and size > self._local_memory_limit:
                raise MemoryBudgetExceededError(
                    f"reducer for key {key!r} received {size} items, "
                    f"exceeding the local memory limit of {self._local_memory_limit}"
                )

        def run_reducer(key, values) -> tuple[list[KeyValue], float]:
            reduce_start = time.perf_counter()
            produced = list(reducer(key, values))
            return produced, time.perf_counter() - reduce_start

        outputs: list[KeyValue] = []
        if self._max_workers == 1 or len(groups) <= 1:
            for key, values in groups.items():
                produced, elapsed = run_reducer(key, values)
                outputs.extend(produced)
                stats.reducer_times[key] = elapsed
        else:
            # Reducers run concurrently, but their outputs are concatenated in
            # the deterministic (insertion) order of the reduce keys.
            with ThreadPoolExecutor(max_workers=self._max_workers) as executor:
                futures = {
                    key: executor.submit(run_reducer, key, values)
                    for key, values in groups.items()
                }
            for key in groups:
                produced, elapsed = futures[key].result()
                outputs.extend(produced)
                stats.reducer_times[key] = elapsed

        self._stats.rounds.append(stats)
        return outputs

    def execute_job(
        self,
        pairs: Sequence[KeyValue],
        rounds: Sequence[tuple[Mapper, Reducer]],
    ) -> list[KeyValue]:
        """Execute several rounds in sequence, feeding each round's output to the next."""
        current = list(pairs)
        for mapper, reducer in rounds:
            current = self.execute_round(current, mapper, reducer)
        return current
