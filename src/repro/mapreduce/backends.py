"""Pluggable executor backends for the MapReduce runtime.

The runtime in :mod:`repro.mapreduce.runtime` separates *what* a round
computes (map, shuffle, memory accounting) from *how* the reduce phase is
executed. The latter is delegated to an :class:`ExecutorBackend`, of
which three implementations are provided:

* :class:`SerialBackend` (``"serial"``) — runs reducers one after the
  other in the calling process. Fully deterministic timing; the reference
  implementation every other backend must agree with.
* :class:`ThreadBackend` (``"threads"``) — runs reducers on a
  :class:`~concurrent.futures.ThreadPoolExecutor`. Gives real speed-ups
  for NumPy-heavy reducers (which release the GIL inside vectorised
  kernels) with zero serialisation cost, because all threads share the
  coordinator's address space.
* :class:`ProcessBackend` (``"processes"``) — runs reducers on a
  :class:`~concurrent.futures.ProcessPoolExecutor`. Sidesteps the GIL
  entirely, so pure-Python reducer work also scales, at the price of
  pickling the reducer callable and its per-group values for every task.

To keep the process backend cheap for the dominant payload — the point
matrix, which every reducer of the k-center drivers needs — large NumPy
arrays can be published once through :meth:`ExecutorBackend.share_array`
and referenced from reducers as a :class:`SharedArray`. Under the process
backend the array is copied a single time into POSIX shared memory
(:mod:`multiprocessing.shared_memory`); worker processes attach to the
segment by name when they first unpickle a reference, so shipping a task
costs a few bytes of metadata instead of the matrix. Under the serial and
thread backends :class:`SharedArray` is a zero-copy wrapper around the
original array.

Orthogonal to *where reducers run* is *where the shuffle's partition rows
live* while they are being assembled. That is the :class:`PartitionStore`
protocol, with three tiers (see :func:`resolve_storage`):

* :class:`MemoryPartitionStore` (``"memory"``) — plain NumPy arrays in
  the coordinator's address space; the natural tier for the serial and
  thread backends (their reducers share that address space anyway).
* :class:`SharedMemoryPartitionStore` (``"shared"``) — POSIX
  shared-memory segments, bounded by ``/dev/shm`` (typically half of
  RAM); the natural tier for the process backend, whose workers attach
  to a sealed partition by segment name instead of receiving a pickled
  copy.
* :class:`DiskPartitionStore` (``"disk"``) — per-partition ``.npy``
  spill files that chunks are appended to and that :meth:`finalize
  <DiskPartitionStore.finalize>` reopens as read-only
  :class:`numpy.memmap` matrices. Worker processes open the file by
  *path* when they unpickle a handle — the disk twin of the
  shared-memory by-name handoff, again without pickling any row data —
  which lifts the ``/dev/shm`` ceiling on single-host dataset size: a
  reducer's working set stays ``O(n/ell)`` resident while the sealed
  partitions live on disk.

:class:`PartitionBuffer` validates and appends rows and delegates the
actual storage to one of these tiers.

Reducer callables handed to :class:`ProcessBackend` must be picklable:
module-level functions, or :func:`functools.partial` of module-level
functions over picklable arguments. The k-center drivers in
:mod:`repro.core` are written this way so that any backend can run them.
"""

from __future__ import annotations

import os
import struct
import sys
import time
import uuid
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from multiprocessing import shared_memory
from typing import Hashable, Protocol, runtime_checkable

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = [
    "ExecutorBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "SharedArray",
    "PartitionStore",
    "MemoryPartitionStore",
    "SharedMemoryPartitionStore",
    "DiskPartitionStore",
    "PartitionBuffer",
    "available_backends",
    "available_storage_tiers",
    "resolve_backend",
    "resolve_storage",
    "set_spill_path_resolver",
]


def _timed_reduce(reducer, key, values):
    """Run one reducer call and measure the wall-clock time spent inside it.

    Module-level so that the process backend can submit it to a
    :class:`~concurrent.futures.ProcessPoolExecutor`; the timing is taken
    in the worker, so it measures reducer compute, not serialisation.
    """
    start = time.perf_counter()
    produced = list(reducer(key, values))
    return produced, time.perf_counter() - start


# -- shared arrays ---------------------------------------------------------------------


_ATTACHED_SEGMENTS: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}
"""Per-process cache of shared-memory segments attached by :func:`_attach_shared_array`.

Keeping the :class:`~multiprocessing.shared_memory.SharedMemory` object
alive here is load-bearing: if it were garbage collected, the buffer
backing the returned array views would be unmapped under them. The cache
is bounded by :func:`_evict_released_segments`: once nothing outside the
cache references a segment's view (all tasks using it are done), the
attachment is closed on the next attach — so a long-lived, caller-owned
process pool reused across many runs does not accumulate mappings of
segments the coordinator has long unlinked.
"""


def _evict_released_segments() -> None:
    """Close cached attachments that no task references anymore.

    CPython reference counting makes this exact: the view's references
    are the cache tuple, the local binding below, and ``getrefcount``'s
    own argument — three in total when no :class:`SharedArray` (or any
    array derived from the view without a copy) is alive outside the
    cache. Entries still in use are left untouched.
    """
    for name in list(_ATTACHED_SEGMENTS):
        segment, view = _ATTACHED_SEGMENTS[name]
        if sys.getrefcount(view) <= 3:
            del _ATTACHED_SEGMENTS[name]
            del view
            segment.close()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker involvement.

    On Python < 3.13 every attach registers the segment with a resource
    tracker, which then tries to unlink it at process exit — wrong for
    segments owned by the coordinator (and a source of tracker warnings).
    Python 3.13+ exposes ``track=False``; for older versions registration
    is suppressed for the duration of the attach.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13 has no track parameter
        pass
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


def _attach_shared_array(meta: tuple[str, tuple, str]) -> "SharedArray":
    """Reconstruct a :class:`SharedArray` in a worker process from its metadata."""
    name, shape, dtype = meta
    _evict_released_segments()
    cached = _ATTACHED_SEGMENTS.get(name)
    if cached is None:
        segment = _attach_untracked(name)
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
        view.flags.writeable = False
        _ATTACHED_SEGMENTS[name] = (segment, view)
        cached = (segment, view)
    return SharedArray(cached[1], meta=meta)


_SPILL_PATH_RESOLVER = None
"""Optional hook translating spill paths at attach time.

Distributed workers receive disk-tier spill files pushed by value (see
:mod:`repro.mapreduce.worker`) and store them under their own spill
directory; the hook maps the coordinator-side path carried by a pickled
handle to the worker-local copy. ``None`` (the default everywhere except
inside a worker) leaves paths untouched.
"""


def set_spill_path_resolver(resolver) -> None:
    """Install ``resolver`` (a ``path -> path`` callable, or ``None``) globally."""
    global _SPILL_PATH_RESOLVER
    _SPILL_PATH_RESOLVER = resolver


def _attach_spilled_array(meta: tuple[str, tuple, str]) -> "SharedArray":
    """Reconstruct a spilled :class:`SharedArray` in a worker process by path.

    The worker memory-maps the ``.npy`` spill file read-only; nothing is
    copied and the attached handle never owns (so never unlinks) the
    file — the coordinator's sealed handle does. On a distributed worker
    the path is first translated to the locally-received copy of the
    pushed file (see :func:`set_spill_path_resolver`).
    """
    path, shape, dtype = meta
    if _SPILL_PATH_RESOLVER is not None:
        path = _SPILL_PATH_RESOLVER(path)
    return SharedArray.from_spill_file(path, shape, dtype)


def _rebuild_by_value(array: np.ndarray) -> "SharedArray":
    """Reconstruct a by-value :class:`SharedArray` from its pickled rows."""
    array = np.asarray(array)
    array.flags.writeable = False
    return SharedArray(array, by_value=True)


class SharedArray:
    """A read-only NumPy array that reducers can reference cheaply on any backend.

    Instances are created by :meth:`ExecutorBackend.share_array` and by
    the partition stores' ``finalize``. Under the serial and thread
    backends the wrapper holds the original array (zero copy). Under the
    process backend the data lives out of line and pickling serialises
    only a handle: ``(name, shape, dtype)`` for a shared-memory segment,
    ``(path, shape, dtype)`` for an on-disk ``.npy`` spill file that the
    worker memory-maps read-only. Handles from the in-process memory
    tier can optionally pickle their rows by value (``by_value=True``),
    which is correct on every backend but pays the copy.
    """

    __slots__ = ("_array", "_segment", "_meta", "_spill_meta", "_owns_spill", "_by_value")

    def __init__(
        self,
        array: np.ndarray,
        *,
        segment: shared_memory.SharedMemory | None = None,
        meta: tuple[str, tuple, str] | None = None,
        spill_meta: tuple[str, tuple, str] | None = None,
        owns_spill: bool = False,
        by_value: bool = False,
    ) -> None:
        self._array = array
        self._segment = segment
        self._meta = meta
        self._spill_meta = spill_meta
        self._owns_spill = owns_spill
        self._by_value = by_value

    @classmethod
    def wrap(cls, array) -> "SharedArray":
        """Zero-copy wrapper for in-process backends."""
        return cls(np.asarray(array))

    @classmethod
    def copy_to_shared_memory(cls, array) -> "SharedArray":
        """Copy ``array`` once into a new shared-memory segment (owned by the caller)."""
        arr = np.ascontiguousarray(array)
        segment = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=segment.buf)
        view[...] = arr
        view.flags.writeable = False
        return cls(view, segment=segment, meta=(segment.name, arr.shape, arr.dtype.str))

    @classmethod
    def from_filled_segment(
        cls, segment: shared_memory.SharedMemory, shape: tuple, dtype: np.dtype
    ) -> "SharedArray":
        """Wrap an already-filled shared-memory segment without copying.

        Used by :class:`PartitionBuffer` to hand off a partition matrix it
        assembled chunk by chunk; ownership of ``segment`` transfers to
        the returned wrapper (its :meth:`close` unlinks the segment).
        """
        view = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
        view.flags.writeable = False
        return cls(view, segment=segment, meta=(segment.name, shape, np.dtype(dtype).str))

    @classmethod
    def from_spill_file(
        cls, path: str, shape: tuple, dtype, *, owner: bool = False
    ) -> "SharedArray":
        """Memory-map an on-disk ``.npy`` spill file without copying it.

        Used by :class:`DiskPartitionStore` to hand off a partition it
        appended chunk by chunk. The owner-side handle (``owner=True``)
        deletes the file on :meth:`close`; handles attached in worker
        processes never do.
        """
        if int(np.prod(tuple(shape))) == 0:
            # mmap cannot map zero bytes; an empty partition is read eagerly
            # (it costs nothing) so zero-row spill files stay valid handles.
            view = np.load(path)
            view.flags.writeable = False
        else:
            view = np.load(path, mmap_mode="r")
        expected = (tuple(shape), np.dtype(dtype))
        if (view.shape, view.dtype) != expected:  # pragma: no cover - corruption guard
            raise InvalidParameterError(
                f"spill file {path} holds {view.shape} {view.dtype}; expected {expected}"
            )
        return cls(
            view,
            spill_meta=(os.fspath(path), tuple(shape), np.dtype(dtype).str),
            owns_spill=owner,
        )

    @property
    def array(self) -> np.ndarray:
        """The underlying read-only ``ndarray``."""
        return self._array

    @property
    def shape(self) -> tuple:
        return self._array.shape

    @property
    def dtype(self) -> np.dtype:
        return self._array.dtype

    def __len__(self) -> int:
        return len(self._array)

    def __getitem__(self, item) -> np.ndarray:
        return self._array[item]

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        if dtype is not None:
            return self._array.astype(dtype)
        return self._array

    def __reduce__(self):
        if self._meta is not None:
            return (_attach_shared_array, (self._meta,))
        if self._spill_meta is not None:
            return (_attach_spilled_array, (self._spill_meta,))
        if self._by_value:
            return (_rebuild_by_value, (np.asarray(self._array),))
        raise TypeError(
            "this SharedArray wraps a plain in-process array and cannot be "
            "sent to another process; obtain it from a process backend's "
            "share_array() instead"
        )

    def close(self) -> None:
        """Release the backing storage (owner side: also unlink/delete it)."""
        if self._segment is not None:
            self._array = np.empty(0, dtype=self._array.dtype)
            self._segment.close()
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
            self._segment = None
        if self._owns_spill and self._spill_meta is not None:
            # Drop the memmap view before deleting the file; on POSIX the
            # unlink is safe even if stray views are still mapped.
            path = self._spill_meta[0]
            self._array = np.empty(0, dtype=self._array.dtype)
            self._owns_spill = False
            try:
                os.unlink(path)
            except FileNotFoundError:  # pragma: no cover - already deleted
                pass


# -- partition storage tiers -----------------------------------------------------------


@runtime_checkable
class PartitionStore(Protocol):
    """Where one shuffle partition's rows live while being assembled.

    A store receives pre-validated row blocks through :meth:`append`,
    seals itself exactly once through :meth:`finalize` (returning a
    read-only :class:`SharedArray` whose pickled form is a cheap handle,
    never the row data — except for the in-process memory tier, which
    pickles by value), and releases any storage that was never handed
    off through :meth:`close` (idempotent, also safe after finalize).
    """

    #: Tier name: ``"memory"``, ``"shared"`` or ``"disk"``.
    tier: str

    @property
    def n_rows(self) -> int:
        """Rows appended so far."""
        ...

    @property
    def spilled_bytes(self) -> int:
        """Bytes this store wrote to disk (0 for the in-memory tiers)."""
        ...

    def append(self, rows: np.ndarray) -> None:
        """Store a validated ``(m, d)`` (or ``(m,)``) block of rows."""
        ...

    def finalize(self) -> SharedArray:
        """Seal the store and hand off its contents."""
        ...

    def close(self) -> None:
        """Release storage that was never handed off. Idempotent."""
        ...


def _partition_shape(dimension: int | None, capacity) -> tuple:
    """Row-block shape: ``(capacity, d)``, or ``(capacity,)`` for 1-d buffers."""
    if dimension is None:
        return (capacity,)
    return (capacity, dimension)


class _GrowableStore:
    """Shared capacity-doubling append logic of the two in-memory tiers."""

    def __init__(self, dimension: int | None, dtype: np.dtype, initial_capacity: int) -> None:
        self._dimension = dimension
        self._dtype = dtype
        self._n = 0
        self._segment, self._storage = self._allocate(initial_capacity)

    def _shape(self, capacity) -> tuple:
        return _partition_shape(self._dimension, capacity)

    def _allocate(self, capacity: int):  # pragma: no cover - abstract
        raise NotImplementedError

    @staticmethod
    def _release(segment: shared_memory.SharedMemory | None) -> None:
        if segment is not None:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass

    @property
    def n_rows(self) -> int:
        return self._n

    @property
    def spilled_bytes(self) -> int:
        return 0

    def append(self, rows: np.ndarray) -> None:
        m = rows.shape[0]
        needed = self._n + m
        capacity = self._storage.shape[0]
        if needed > capacity:
            new_segment, grown = self._allocate(max(needed, 2 * capacity))
            grown[: self._n] = self._storage[: self._n]
            old_segment, self._segment = self._segment, new_segment
            self._storage = grown
            self._release(old_segment)
        self._storage[self._n : needed] = rows
        self._n = needed

    def close(self) -> None:
        if self._segment is not None:
            self._storage = np.empty(self._shape(0), dtype=self._dtype)
            segment, self._segment = self._segment, None
            self._release(segment)


class MemoryPartitionStore(_GrowableStore):
    """Partition rows in a plain NumPy array in the coordinator's address space.

    The right tier for the serial and thread backends, whose reducers
    share the coordinator's memory. The sealed handle pickles its rows
    *by value*, so the tier stays usable (at a copy cost) even under the
    process backend.
    """

    tier = "memory"

    def _allocate(self, capacity: int):
        return None, np.empty(self._shape(capacity), dtype=self._dtype)

    def finalize(self) -> SharedArray:
        view = self._storage[: self._n]
        view.flags.writeable = False
        return SharedArray(view, by_value=True)


class SharedMemoryPartitionStore(_GrowableStore):
    """Partition rows in a POSIX shared-memory segment.

    The right tier for the process backend: :meth:`finalize` transfers
    the filled segment to the returned :class:`SharedArray`, which
    worker processes attach to *by name* instead of receiving a pickled
    copy. Capacity is bounded by ``/dev/shm`` (typically half of RAM).
    """

    tier = "shared"

    def _allocate(self, capacity: int):
        shape = self._shape(capacity)
        nbytes = int(np.prod(shape)) * self._dtype.itemsize
        segment = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
        return segment, np.ndarray(shape, dtype=self._dtype, buffer=segment.buf)

    def finalize(self) -> SharedArray:
        segment = self._segment
        self._segment = None
        return SharedArray.from_filled_segment(segment, self._shape(self._n), self._dtype)


_NPY_HEADER_SIZE = 128
"""Fixed on-disk ``.npy`` header size reserved by :class:`DiskPartitionStore`.

The header is rewritten in place at finalize time (once the row count is
known), so it must have a fixed length; 128 bytes fits any realistic
``(n, d)`` shape with room to spare and keeps the data 64-byte aligned
for the memmap.
"""


def _npy_header(shape: tuple, dtype: np.dtype) -> bytes:
    """A version-1.0 ``.npy`` header padded to exactly ``_NPY_HEADER_SIZE`` bytes."""
    descr = np.lib.format.dtype_to_descr(dtype)
    header = (
        f"{{'descr': {descr!r}, 'fortran_order': False, 'shape': {tuple(shape)!r}, }}"
    ).encode("latin1")
    payload_len = _NPY_HEADER_SIZE - 10  # magic (6) + version (2) + length field (2)
    if len(header) + 1 > payload_len:  # pragma: no cover - astronomically large shapes
        raise InvalidParameterError(f"spill header for shape {shape} exceeds the reserved size")
    payload = header.ljust(payload_len - 1, b" ") + b"\n"
    return b"\x93NUMPY\x01\x00" + struct.pack("<H", payload_len) + payload


class DiskPartitionStore:
    """Partition rows appended to an on-disk ``.npy`` spill file.

    Chunks are written straight through to the file (the coordinator
    keeps no copy), a placeholder header is rewritten with the true
    shape at finalize time, and the sealed partition is reopened as a
    read-only :class:`numpy.memmap`. Worker processes unpickling the
    handle open the file by path — no row data is ever pickled — so the
    tier mirrors the shared-memory by-name handoff while being bounded
    by disk instead of ``/dev/shm``.
    """

    tier = "disk"

    def __init__(self, dimension: int | None, dtype: np.dtype, spill_dir: str) -> None:
        self._dimension = dimension
        self._dtype = dtype
        self._n = 0
        self._spilled = 0
        self._path = os.path.join(os.fspath(spill_dir), f"part-{uuid.uuid4().hex}.npy")
        self._file = open(self._path, "w+b")
        self._file.write(b"\0" * _NPY_HEADER_SIZE)

    def _shape(self, capacity) -> tuple:
        return _partition_shape(self._dimension, capacity)

    @property
    def n_rows(self) -> int:
        return self._n

    @property
    def spilled_bytes(self) -> int:
        return self._spilled

    def append(self, rows: np.ndarray) -> None:
        data = np.ascontiguousarray(rows)
        self._file.write(data.data)
        self._n += rows.shape[0]
        self._spilled += data.nbytes

    def finalize(self) -> SharedArray:
        shape = self._shape(self._n)
        self._file.seek(0)
        self._file.write(_npy_header(shape, self._dtype))
        self._file.close()
        self._file = None
        path, self._path = self._path, None
        return SharedArray.from_spill_file(path, shape, self._dtype, owner=True)

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._path is not None:
            path, self._path = self._path, None
            try:
                os.unlink(path)
            except FileNotFoundError:  # pragma: no cover - already deleted
                pass


_STORAGE_TIERS = ("disk", "memory", "shared")


def available_storage_tiers() -> tuple[str, ...]:
    """Names accepted by the ``storage=`` knobs (``"auto"`` plus the concrete tiers)."""
    return ("auto",) + _STORAGE_TIERS


def resolve_storage(
    storage: str | None,
    *,
    backend: "ExecutorBackend | None" = None,
    estimated_bytes: int | None = None,
    memory_budget_bytes: int | None = None,
) -> str:
    """Turn a storage knob (``"auto"``/``"memory"``/``"shared"``/``"disk"``) into a tier.

    ``"auto"`` (or ``None``) preserves the historical pairing — shared
    memory under a backend with ``uses_shared_memory`` (the process
    pool), plain in-process arrays otherwise — unless a
    ``memory_budget_bytes`` is given and the shuffle's estimated
    partition-tier footprint exceeds it (or is unknown, for unsized
    streams), in which case the shuffle spills to disk.
    """
    if storage is None:
        storage = "auto"
    if storage in _STORAGE_TIERS:
        return storage
    if storage != "auto":
        raise InvalidParameterError(
            f"unknown storage tier {storage!r}; available: "
            f"{', '.join(available_storage_tiers())}"
        )
    if memory_budget_bytes is not None and (
        estimated_bytes is None or estimated_bytes > memory_budget_bytes
    ):
        return "disk"
    return "shared" if getattr(backend, "uses_shared_memory", False) else "memory"


class PartitionBuffer:
    """Append-only row buffer for one shuffle partition, on a pluggable storage tier.

    The out-of-core shuffle routes each incoming chunk's rows directly
    into per-partition buffers so the coordinator never assembles the
    full ``(n, d)`` matrix. The buffer validates and counts rows and
    delegates storage to a :class:`PartitionStore`:

    * ``storage="memory"`` — a plain NumPy array in the current address
      space (:class:`MemoryPartitionStore`);
    * ``storage="shared"`` — a POSIX shared-memory segment
      (:class:`SharedMemoryPartitionStore`);
    * ``storage="disk"`` — an on-disk ``.npy`` spill file
      (:class:`DiskPartitionStore`; requires ``spill_dir``).

    The legacy ``shared=`` flag maps to ``"shared"``/``"memory"`` when
    ``storage`` is not given. The in-memory tiers grow geometrically
    (amortised O(1) appends; for unknown-length streams the overshoot is
    at most 2x the partition size, and exact-size preallocation is
    available through ``initial_capacity``); the disk tier appends
    straight to its file. ``dimension=None`` stores scalar rows (a 1-d
    buffer), which the drivers use for the global-index column that
    rides along with each partition's points.
    """

    def __init__(
        self,
        dimension: int | None,
        *,
        dtype=np.float64,
        shared: bool = False,
        initial_capacity: int = 1024,
        storage: str | None = None,
        spill_dir: str | None = None,
    ) -> None:
        if dimension is not None and dimension < 1:
            raise InvalidParameterError("dimension must be >= 1 (or None for 1-d rows)")
        if initial_capacity < 1:
            raise InvalidParameterError("initial_capacity must be >= 1")
        if storage is None:
            storage = "shared" if shared else "memory"
        if storage not in _STORAGE_TIERS:
            raise InvalidParameterError(
                f"unknown storage tier {storage!r}; available: "
                f"{', '.join(_STORAGE_TIERS)} (resolve 'auto' with resolve_storage())"
            )
        self._dimension = None if dimension is None else int(dimension)
        self._dtype = np.dtype(dtype)
        self._finalized = False
        if storage == "disk":
            if spill_dir is None:
                raise InvalidParameterError("disk partition storage requires a spill_dir")
            self._store: PartitionStore = DiskPartitionStore(
                self._dimension, self._dtype, spill_dir
            )
        elif storage == "shared":
            self._store = SharedMemoryPartitionStore(
                self._dimension, self._dtype, int(initial_capacity)
            )
        else:
            self._store = MemoryPartitionStore(
                self._dimension, self._dtype, int(initial_capacity)
            )

    def _shape(self, capacity) -> tuple:
        return _partition_shape(self._dimension, capacity)

    @property
    def n_rows(self) -> int:
        """Rows appended so far."""
        return self._store.n_rows

    @property
    def storage_tier(self) -> str:
        """Name of the tier the rows live on (``"memory"``/``"shared"``/``"disk"``)."""
        return self._store.tier

    @property
    def shared(self) -> bool:
        """Whether the buffer lives in POSIX shared memory."""
        return self._store.tier == "shared"

    @property
    def spilled_bytes(self) -> int:
        """Bytes this buffer wrote to disk (0 for the in-memory tiers)."""
        return self._store.spilled_bytes

    def append(self, rows) -> None:
        """Append a block of rows (``(m, d)``, or ``(m,)`` for 1-d buffers)."""
        if self._finalized:
            raise InvalidParameterError("cannot append to a finalized PartitionBuffer")
        rows = np.asarray(rows, dtype=self._dtype)
        expected_ndim = 1 if self._dimension is None else 2
        if rows.ndim != expected_ndim or (
            self._dimension is not None and rows.shape[1] != self._dimension
        ):
            raise InvalidParameterError(
                f"rows must have shape {self._shape('m')}; got {rows.shape}"
            )
        if rows.shape[0] == 0:
            return
        self._store.append(rows)

    def finalize(self) -> SharedArray:
        """Seal the buffer and return its contents as a read-only :class:`SharedArray`.

        Zero-copy: the returned wrapper views the buffer's own storage
        (the shared-memory segment or spill file transfers to it for the
        out-of-line tiers). The buffer cannot be appended to afterwards.
        """
        if self._finalized:
            raise InvalidParameterError("PartitionBuffer already finalized")
        self._finalized = True
        return self._store.finalize()

    def close(self) -> None:
        """Release storage that was never handed off. Idempotent."""
        self._store.close()


# -- backends --------------------------------------------------------------------------


@runtime_checkable
class ExecutorBackend(Protocol):
    """How the reduce phase of a MapReduce round is executed.

    Implementations must return one ``(outputs, elapsed_seconds)`` entry
    per reduce group, keyed like ``groups`` — the runtime relies on that
    to keep accounting and output order identical across backends.
    """

    name: str

    def run_reducers(
        self, reducer, groups: dict[Hashable, list]
    ) -> dict[Hashable, tuple[list, float]]:
        """Execute ``reducer`` on every group and return outputs plus timings."""
        ...

    def share_array(self, array) -> SharedArray:
        """Publish a large array for cheap access from reducers."""
        ...

    def close(self) -> None:
        """Release pools and shared resources. Idempotent."""
        ...


class SerialBackend:
    """Reference backend: reducers run sequentially in the calling process."""

    name = "serial"
    #: Reducers share the coordinator's address space; shuffle partition
    #: buffers can live on the plain heap.
    uses_shared_memory = False

    def run_reducers(self, reducer, groups):
        return {key: _timed_reduce(reducer, key, values) for key, values in groups.items()}

    def share_array(self, array) -> SharedArray:
        return SharedArray.wrap(array)

    def close(self) -> None:
        pass


class ThreadBackend:
    """Reducers run concurrently on a thread pool (shared address space, GIL applies)."""

    name = "threads"
    uses_shared_memory = False

    def __init__(self, max_workers: int | None = None) -> None:
        self._max_workers = _check_workers(max_workers)
        self._pool: ThreadPoolExecutor | None = None

    @property
    def max_workers(self) -> int:
        return self._max_workers

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self._max_workers)
        return self._pool

    def run_reducers(self, reducer, groups):
        if self._max_workers == 1 or len(groups) <= 1:
            return {
                key: _timed_reduce(reducer, key, values) for key, values in groups.items()
            }
        pool = self._ensure_pool()
        futures = {
            key: pool.submit(_timed_reduce, reducer, key, values)
            for key, values in groups.items()
        }
        return {key: future.result() for key, future in futures.items()}

    def share_array(self, array) -> SharedArray:
        return SharedArray.wrap(array)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessBackend:
    """Reducers run on a process pool; large arrays travel via shared memory.

    Reducer callables (and their group values) are pickled per task, so
    they must be module-level functions or partials thereof. Arrays
    published with :meth:`share_array` are copied once into shared memory
    and referenced by name from the workers.
    """

    name = "processes"
    #: Reducers run in separate processes; shuffle partition buffers are
    #: placed in POSIX shared memory so tasks reference them by name.
    uses_shared_memory = True

    def __init__(self, max_workers: int | None = None) -> None:
        self._max_workers = _check_workers(max_workers)
        self._pool: ProcessPoolExecutor | None = None
        self._shared: list[SharedArray] = []

    @property
    def max_workers(self) -> int:
        return self._max_workers

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self._max_workers)
        return self._pool

    def run_reducers(self, reducer, groups):
        pool = self._ensure_pool()
        futures = {
            key: pool.submit(_timed_reduce, reducer, key, values)
            for key, values in groups.items()
        }
        return {key: future.result() for key, future in futures.items()}

    def share_array(self, array) -> SharedArray:
        shared = SharedArray.copy_to_shared_memory(array)
        self._shared.append(shared)
        return shared

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        while self._shared:
            self._shared.pop().close()


_BACKENDS = {
    "serial": SerialBackend,
    "threads": ThreadBackend,
    "processes": ProcessBackend,
}

#: Registered lazily in :func:`resolve_backend` (the implementation lives
#: in :mod:`repro.mapreduce.cluster`, which imports this module).
_DISTRIBUTED = "distributed"


def _check_workers(max_workers: int | None) -> int:
    if max_workers is None:
        return os.cpu_count() or 1
    if max_workers < 1:
        raise InvalidParameterError("max_workers must be >= 1")
    return int(max_workers)


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`resolve_backend` (and the ``backend=`` knobs)."""
    return tuple(sorted((*_BACKENDS, _DISTRIBUTED)))


def resolve_backend(
    backend: str | ExecutorBackend | None = None,
    *,
    max_workers: int | None = None,
    workers=None,
) -> ExecutorBackend:
    """Turn a backend name (or ``None``, or a ready instance) into a backend.

    ``None`` preserves the runtime's historical behavior: a thread pool
    when ``max_workers`` > 1, the serial reference otherwise — unless
    ``workers`` (a sequence of ``host:port`` addresses) is given, which
    selects the distributed backend. Strings are looked up among
    :func:`available_backends`; for ``"threads"`` and ``"processes"`` a
    ``max_workers`` of ``None`` means one worker per CPU, and
    ``"distributed"`` requires ``workers``.
    """
    if backend is None and workers is not None:
        backend = _DISTRIBUTED
    if backend is None:
        if max_workers is not None and max_workers > 1:
            return ThreadBackend(max_workers)
        return SerialBackend()
    if not isinstance(backend, str):
        if workers is not None:
            raise InvalidParameterError(
                "workers= addresses only apply to the 'distributed' backend name; "
                "configure the backend instance directly instead"
            )
        if isinstance(backend, ExecutorBackend):
            return backend
        raise InvalidParameterError(
            f"backend must be a string or an ExecutorBackend; got {backend!r}"
        )
    name = backend.lower()
    if name == _DISTRIBUTED:
        from .cluster import DistributedBackend

        if workers is None:
            raise InvalidParameterError(
                "the distributed backend requires worker addresses "
                "(workers=['host:port', ...]); start daemons with "
                "'repro worker --listen HOST:PORT'"
            )
        if max_workers is not None:
            _check_workers(max_workers)  # validated, but the address list rules
        return DistributedBackend(workers)
    if workers is not None:
        raise InvalidParameterError(
            f"workers= addresses only apply to the 'distributed' backend; "
            f"got backend={backend!r} (use max_workers= for pool sizes)"
        )
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; available: {', '.join(available_backends())}"
        ) from None
    if factory is SerialBackend:
        if max_workers is not None:
            _check_workers(max_workers)  # validate even though serial ignores it
        return SerialBackend()
    return factory(max_workers)
