"""Pluggable executor backends for the MapReduce runtime.

The runtime in :mod:`repro.mapreduce.runtime` separates *what* a round
computes (map, shuffle, memory accounting) from *how* the reduce phase is
executed. The latter is delegated to an :class:`ExecutorBackend`, of
which three implementations are provided:

* :class:`SerialBackend` (``"serial"``) — runs reducers one after the
  other in the calling process. Fully deterministic timing; the reference
  implementation every other backend must agree with.
* :class:`ThreadBackend` (``"threads"``) — runs reducers on a
  :class:`~concurrent.futures.ThreadPoolExecutor`. Gives real speed-ups
  for NumPy-heavy reducers (which release the GIL inside vectorised
  kernels) with zero serialisation cost, because all threads share the
  coordinator's address space.
* :class:`ProcessBackend` (``"processes"``) — runs reducers on a
  :class:`~concurrent.futures.ProcessPoolExecutor`. Sidesteps the GIL
  entirely, so pure-Python reducer work also scales, at the price of
  pickling the reducer callable and its per-group values for every task.

To keep the process backend cheap for the dominant payload — the point
matrix, which every reducer of the k-center drivers needs — large NumPy
arrays can be published once through :meth:`ExecutorBackend.share_array`
and referenced from reducers as a :class:`SharedArray`. Under the process
backend the array is copied a single time into POSIX shared memory
(:mod:`multiprocessing.shared_memory`); worker processes attach to the
segment by name when they first unpickle a reference, so shipping a task
costs a few bytes of metadata instead of the matrix. Under the serial and
thread backends :class:`SharedArray` is a zero-copy wrapper around the
original array.

Reducer callables handed to :class:`ProcessBackend` must be picklable:
module-level functions, or :func:`functools.partial` of module-level
functions over picklable arguments. The k-center drivers in
:mod:`repro.core` are written this way so that any backend can run them.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from multiprocessing import shared_memory
from typing import Hashable, Protocol, runtime_checkable

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = [
    "ExecutorBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "SharedArray",
    "PartitionBuffer",
    "available_backends",
    "resolve_backend",
]


def _timed_reduce(reducer, key, values):
    """Run one reducer call and measure the wall-clock time spent inside it.

    Module-level so that the process backend can submit it to a
    :class:`~concurrent.futures.ProcessPoolExecutor`; the timing is taken
    in the worker, so it measures reducer compute, not serialisation.
    """
    start = time.perf_counter()
    produced = list(reducer(key, values))
    return produced, time.perf_counter() - start


# -- shared arrays ---------------------------------------------------------------------


_ATTACHED_SEGMENTS: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}
"""Per-process cache of shared-memory segments attached by :func:`_attach_shared_array`.

Keeping the :class:`~multiprocessing.shared_memory.SharedMemory` object
alive here is load-bearing: if it were garbage collected, the buffer
backing the returned array views would be unmapped under them. The cache
is bounded by :func:`_evict_released_segments`: once nothing outside the
cache references a segment's view (all tasks using it are done), the
attachment is closed on the next attach — so a long-lived, caller-owned
process pool reused across many runs does not accumulate mappings of
segments the coordinator has long unlinked.
"""


def _evict_released_segments() -> None:
    """Close cached attachments that no task references anymore.

    CPython reference counting makes this exact: the view's references
    are the cache tuple, the local binding below, and ``getrefcount``'s
    own argument — three in total when no :class:`SharedArray` (or any
    array derived from the view without a copy) is alive outside the
    cache. Entries still in use are left untouched.
    """
    for name in list(_ATTACHED_SEGMENTS):
        segment, view = _ATTACHED_SEGMENTS[name]
        if sys.getrefcount(view) <= 3:
            del _ATTACHED_SEGMENTS[name]
            del view
            segment.close()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker involvement.

    On Python < 3.13 every attach registers the segment with a resource
    tracker, which then tries to unlink it at process exit — wrong for
    segments owned by the coordinator (and a source of tracker warnings).
    Python 3.13+ exposes ``track=False``; for older versions registration
    is suppressed for the duration of the attach.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13 has no track parameter
        pass
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


def _attach_shared_array(meta: tuple[str, tuple, str]) -> "SharedArray":
    """Reconstruct a :class:`SharedArray` in a worker process from its metadata."""
    name, shape, dtype = meta
    _evict_released_segments()
    cached = _ATTACHED_SEGMENTS.get(name)
    if cached is None:
        segment = _attach_untracked(name)
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
        view.flags.writeable = False
        _ATTACHED_SEGMENTS[name] = (segment, view)
        cached = (segment, view)
    return SharedArray(cached[1], meta=meta)


class SharedArray:
    """A read-only NumPy array that reducers can reference cheaply on any backend.

    Instances are created by :meth:`ExecutorBackend.share_array`. Under
    the serial and thread backends the wrapper holds the original array
    (zero copy). Under the process backend the data lives in a named
    shared-memory segment: pickling the wrapper serialises only
    ``(name, shape, dtype)``, and unpickling in a worker attaches to the
    segment instead of copying the data.
    """

    __slots__ = ("_array", "_segment", "_meta")

    def __init__(
        self,
        array: np.ndarray,
        *,
        segment: shared_memory.SharedMemory | None = None,
        meta: tuple[str, tuple, str] | None = None,
    ) -> None:
        self._array = array
        self._segment = segment
        self._meta = meta

    @classmethod
    def wrap(cls, array) -> "SharedArray":
        """Zero-copy wrapper for in-process backends."""
        return cls(np.asarray(array))

    @classmethod
    def copy_to_shared_memory(cls, array) -> "SharedArray":
        """Copy ``array`` once into a new shared-memory segment (owned by the caller)."""
        arr = np.ascontiguousarray(array)
        segment = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=segment.buf)
        view[...] = arr
        view.flags.writeable = False
        return cls(view, segment=segment, meta=(segment.name, arr.shape, arr.dtype.str))

    @classmethod
    def from_filled_segment(
        cls, segment: shared_memory.SharedMemory, shape: tuple, dtype: np.dtype
    ) -> "SharedArray":
        """Wrap an already-filled shared-memory segment without copying.

        Used by :class:`PartitionBuffer` to hand off a partition matrix it
        assembled chunk by chunk; ownership of ``segment`` transfers to
        the returned wrapper (its :meth:`close` unlinks the segment).
        """
        view = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
        view.flags.writeable = False
        return cls(view, segment=segment, meta=(segment.name, shape, np.dtype(dtype).str))

    @property
    def array(self) -> np.ndarray:
        """The underlying read-only ``ndarray``."""
        return self._array

    @property
    def shape(self) -> tuple:
        return self._array.shape

    @property
    def dtype(self) -> np.dtype:
        return self._array.dtype

    def __len__(self) -> int:
        return len(self._array)

    def __getitem__(self, item) -> np.ndarray:
        return self._array[item]

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        if dtype is not None:
            return self._array.astype(dtype)
        return self._array

    def __reduce__(self):
        if self._meta is None:
            raise TypeError(
                "this SharedArray wraps a plain in-process array and cannot be "
                "sent to another process; obtain it from a process backend's "
                "share_array() instead"
            )
        return (_attach_shared_array, (self._meta,))

    def close(self) -> None:
        """Release the shared-memory segment (owner side: also unlink it)."""
        if self._segment is not None:
            self._array = np.empty(0, dtype=self._array.dtype)
            self._segment.close()
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
            self._segment = None


class PartitionBuffer:
    """Append-only, capacity-doubling row buffer for one shuffle partition.

    The out-of-core shuffle routes each incoming chunk's rows directly
    into per-partition buffers so the coordinator never assembles the
    full ``(n, d)`` matrix. Two storage flavours:

    * ``shared=False`` — a plain NumPy array in the current address
      space; right for the serial and thread backends, whose reducers
      share the coordinator's memory anyway.
    * ``shared=True`` — a POSIX shared-memory segment; right for the
      process backend, where :meth:`finalize` yields a
      :class:`SharedArray` that worker processes attach to by name
      instead of receiving a pickled copy.

    Capacity grows geometrically (amortised O(1) appends); for unknown-
    length streams the overshoot is at most 2x the partition size, and
    exact-size preallocation is available through ``initial_capacity``.
    ``dimension=None`` stores scalar rows (a 1-d buffer), which the
    drivers use for the global-index column that rides along with each
    partition's points.
    """

    def __init__(
        self,
        dimension: int | None,
        *,
        dtype=np.float64,
        shared: bool = False,
        initial_capacity: int = 1024,
    ) -> None:
        if dimension is not None and dimension < 1:
            raise InvalidParameterError("dimension must be >= 1 (or None for 1-d rows)")
        if initial_capacity < 1:
            raise InvalidParameterError("initial_capacity must be >= 1")
        self._dimension = None if dimension is None else int(dimension)
        self._dtype = np.dtype(dtype)
        self._shared = bool(shared)
        self._n = 0
        self._segment, self._storage = self._allocate(int(initial_capacity))
        self._finalized = False

    def _shape(self, capacity) -> tuple:
        if self._dimension is None:
            return (capacity,)
        return (capacity, self._dimension)

    def _allocate(self, capacity: int):
        """Allocate fresh storage of ``capacity`` rows; returns ``(segment, view)``."""
        shape = self._shape(capacity)
        if not self._shared:
            return None, np.empty(shape, dtype=self._dtype)
        nbytes = int(np.prod(shape)) * self._dtype.itemsize
        segment = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
        return segment, np.ndarray(shape, dtype=self._dtype, buffer=segment.buf)

    @staticmethod
    def _release(segment: shared_memory.SharedMemory | None) -> None:
        if segment is not None:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass

    @property
    def n_rows(self) -> int:
        """Rows appended so far."""
        return self._n

    @property
    def shared(self) -> bool:
        """Whether the buffer lives in POSIX shared memory."""
        return self._shared

    def append(self, rows) -> None:
        """Append a block of rows (``(m, d)``, or ``(m,)`` for 1-d buffers)."""
        if self._finalized:
            raise InvalidParameterError("cannot append to a finalized PartitionBuffer")
        rows = np.asarray(rows, dtype=self._dtype)
        expected_ndim = 1 if self._dimension is None else 2
        if rows.ndim != expected_ndim or (
            self._dimension is not None and rows.shape[1] != self._dimension
        ):
            raise InvalidParameterError(
                f"rows must have shape {self._shape('m')}; got {rows.shape}"
            )
        m = rows.shape[0]
        if m == 0:
            return
        needed = self._n + m
        capacity = self._storage.shape[0]
        if needed > capacity:
            new_segment, grown = self._allocate(max(needed, 2 * capacity))
            grown[: self._n] = self._storage[: self._n]
            old_segment, self._segment = self._segment, new_segment
            self._storage = grown
            self._release(old_segment)
        self._storage[self._n : needed] = rows
        self._n = needed

    def finalize(self) -> SharedArray:
        """Seal the buffer and return its contents as a read-only :class:`SharedArray`.

        Zero-copy: the returned wrapper views the buffer's own storage
        (the shared-memory segment transfers to it for ``shared=True``
        buffers). The buffer cannot be appended to afterwards.
        """
        if self._finalized:
            raise InvalidParameterError("PartitionBuffer already finalized")
        self._finalized = True
        if self._shared:
            segment = self._segment
            self._segment = None
            return SharedArray.from_filled_segment(
                segment, self._shape(self._n), self._dtype
            )
        view = self._storage[: self._n]
        view.flags.writeable = False
        return SharedArray(view)

    def close(self) -> None:
        """Release a shared segment that was never handed off. Idempotent."""
        if self._segment is not None:
            self._storage = np.empty(self._shape(0), dtype=self._dtype)
            segment, self._segment = self._segment, None
            self._release(segment)


# -- backends --------------------------------------------------------------------------


@runtime_checkable
class ExecutorBackend(Protocol):
    """How the reduce phase of a MapReduce round is executed.

    Implementations must return one ``(outputs, elapsed_seconds)`` entry
    per reduce group, keyed like ``groups`` — the runtime relies on that
    to keep accounting and output order identical across backends.
    """

    name: str

    def run_reducers(
        self, reducer, groups: dict[Hashable, list]
    ) -> dict[Hashable, tuple[list, float]]:
        """Execute ``reducer`` on every group and return outputs plus timings."""
        ...

    def share_array(self, array) -> SharedArray:
        """Publish a large array for cheap access from reducers."""
        ...

    def close(self) -> None:
        """Release pools and shared resources. Idempotent."""
        ...


class SerialBackend:
    """Reference backend: reducers run sequentially in the calling process."""

    name = "serial"
    #: Reducers share the coordinator's address space; shuffle partition
    #: buffers can live on the plain heap.
    uses_shared_memory = False

    def run_reducers(self, reducer, groups):
        return {key: _timed_reduce(reducer, key, values) for key, values in groups.items()}

    def share_array(self, array) -> SharedArray:
        return SharedArray.wrap(array)

    def close(self) -> None:
        pass


class ThreadBackend:
    """Reducers run concurrently on a thread pool (shared address space, GIL applies)."""

    name = "threads"
    uses_shared_memory = False

    def __init__(self, max_workers: int | None = None) -> None:
        self._max_workers = _check_workers(max_workers)
        self._pool: ThreadPoolExecutor | None = None

    @property
    def max_workers(self) -> int:
        return self._max_workers

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self._max_workers)
        return self._pool

    def run_reducers(self, reducer, groups):
        if self._max_workers == 1 or len(groups) <= 1:
            return {
                key: _timed_reduce(reducer, key, values) for key, values in groups.items()
            }
        pool = self._ensure_pool()
        futures = {
            key: pool.submit(_timed_reduce, reducer, key, values)
            for key, values in groups.items()
        }
        return {key: future.result() for key, future in futures.items()}

    def share_array(self, array) -> SharedArray:
        return SharedArray.wrap(array)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessBackend:
    """Reducers run on a process pool; large arrays travel via shared memory.

    Reducer callables (and their group values) are pickled per task, so
    they must be module-level functions or partials thereof. Arrays
    published with :meth:`share_array` are copied once into shared memory
    and referenced by name from the workers.
    """

    name = "processes"
    #: Reducers run in separate processes; shuffle partition buffers are
    #: placed in POSIX shared memory so tasks reference them by name.
    uses_shared_memory = True

    def __init__(self, max_workers: int | None = None) -> None:
        self._max_workers = _check_workers(max_workers)
        self._pool: ProcessPoolExecutor | None = None
        self._shared: list[SharedArray] = []

    @property
    def max_workers(self) -> int:
        return self._max_workers

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self._max_workers)
        return self._pool

    def run_reducers(self, reducer, groups):
        pool = self._ensure_pool()
        futures = {
            key: pool.submit(_timed_reduce, reducer, key, values)
            for key, values in groups.items()
        }
        return {key: future.result() for key, future in futures.items()}

    def share_array(self, array) -> SharedArray:
        shared = SharedArray.copy_to_shared_memory(array)
        self._shared.append(shared)
        return shared

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        while self._shared:
            self._shared.pop().close()


_BACKENDS = {
    "serial": SerialBackend,
    "threads": ThreadBackend,
    "processes": ProcessBackend,
}


def _check_workers(max_workers: int | None) -> int:
    if max_workers is None:
        return os.cpu_count() or 1
    if max_workers < 1:
        raise InvalidParameterError("max_workers must be >= 1")
    return int(max_workers)


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`resolve_backend` (and the ``backend=`` knobs)."""
    return tuple(sorted(_BACKENDS))


def resolve_backend(
    backend: str | ExecutorBackend | None = None, *, max_workers: int | None = None
) -> ExecutorBackend:
    """Turn a backend name (or ``None``, or a ready instance) into a backend.

    ``None`` preserves the runtime's historical behavior: a thread pool
    when ``max_workers`` > 1, the serial reference otherwise. Strings are
    looked up among :func:`available_backends`; for ``"threads"`` and
    ``"processes"`` a ``max_workers`` of ``None`` means one worker per CPU.
    """
    if backend is None:
        if max_workers is not None and max_workers > 1:
            return ThreadBackend(max_workers)
        return SerialBackend()
    if not isinstance(backend, str):
        if isinstance(backend, ExecutorBackend):
            return backend
        raise InvalidParameterError(
            f"backend must be a string or an ExecutorBackend; got {backend!r}"
        )
    try:
        factory = _BACKENDS[backend.lower()]
    except KeyError:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; available: {', '.join(available_backends())}"
        ) from None
    if factory is SerialBackend:
        if max_workers is not None:
            _check_workers(max_workers)  # validate even though serial ignores it
        return SerialBackend()
    return factory(max_workers)
