"""Coordinator side of the distributed executor backend.

:class:`DistributedBackend` implements the
:class:`~repro.mapreduce.backends.ExecutorBackend` protocol over TCP: it
ships each reduce group to one of a fixed set of worker daemons (see
:mod:`repro.mapreduce.worker` for the daemon and the wire protocol),
runs the reducer remotely, and collects the pickled results. It slots
into :class:`~repro.mapreduce.runtime.MapReduceRuntime` like any other
backend — ``backend="distributed"`` plus ``workers=["host:port", ...]``
— and the drivers' results are bit-identical to the serial reference
because all randomness is drawn in the coordinator before dispatch.

Placement and payloads
----------------------
Reduce groups are placed round-robin: the group at enumeration position
``i`` (for the shuffle rounds, exactly the partition index) goes to
worker ``i mod W``. Placement is therefore a pure function of the
partition index and the worker list, matching the pure-function routing
of the shuffle itself. The reducer callable is shipped once per round
per worker, not once per task. Partition payloads travel by tier:

* memory-tier partitions (the default under this backend) pickle their
  rows *by value* inside the TASK frame;
* disk-tier spill files are detected while pickling the task (the
  handles carry their path), pushed once per worker as raw ``.npy``
  bytes in a PUT frame, and re-opened worker-side as read-only memmaps —
  no row data is pickled, and a file already pushed to a worker is never
  pushed twice. ``push_spills=False`` skips the push for same-host
  clusters whose workers can open the coordinator's files directly.
* shared-memory-tier handles pickle by segment *name* and therefore
  resolve only on workers sharing the coordinator's ``/dev/shm`` (a
  loopback cluster); cross-host jobs should use the memory or disk tier.

Failure model
-------------
A transport failure — refused connection, reset, EOF or truncated frame
mid-result — marks the worker dead for the rest of the job and requeues
its unfinished groups round-robin onto the surviving workers (reducers
are pure, so a retry is safe and bit-identical). When no worker
survives, :class:`~repro.exceptions.WorkerUnavailableError` reports the
last failure seen per worker. An exception raised *by the reducer* is
deterministic and is not retried: it surfaces as
:class:`~repro.exceptions.WorkerTaskError` with the remote traceback.
Per-round attempts and shipped bytes are recorded in
:attr:`~repro.mapreduce.runtime.JobStats.worker_assignments` and
:attr:`~repro.mapreduce.runtime.JobStats.bytes_shipped`.

:class:`LocalCluster` spawns N in-process loopback workers (real TCP,
real pickling, deterministic failure injection) so the full distributed
path runs in CI without any remote machines.
"""

from __future__ import annotations

import io
import pickle
import socket
import threading
from typing import Hashable, Sequence

import numpy as np

from ..exceptions import (
    InvalidParameterError,
    WorkerTaskError,
    WorkerUnavailableError,
)
from .backends import SharedArray
from .worker import (
    OP_ERROR,
    OP_OK,
    OP_PUT,
    OP_QUIT,
    OP_REDUCER,
    OP_RESULT,
    OP_TASK,
    WorkerServer,
    recv_frame,
    send_frame,
)

__all__ = [
    "DistributedBackend",
    "LocalCluster",
    "parse_worker_address",
]


def parse_worker_address(spec) -> tuple[str, int]:
    """Parse a worker address: ``"host:port"`` or a ``(host, port)`` pair."""
    if isinstance(spec, tuple) and len(spec) == 2:
        host, port = spec
    else:
        host, sep, port = str(spec).rpartition(":")
        if not sep or not host:
            raise InvalidParameterError(
                f"worker address must look like HOST:PORT; got {spec!r}"
            )
    try:
        port = int(port)
    except (TypeError, ValueError):
        raise InvalidParameterError(
            f"worker address must look like HOST:PORT; got {spec!r}"
        ) from None
    if not 1 <= port <= 65535:
        raise InvalidParameterError(f"worker port must be in [1, 65535]; got {port}")
    return str(host), port


class _SpillScanPickler(pickle.Pickler):
    """Pickles a payload while collecting the spill files it references.

    Disk-tier :class:`SharedArray` handles pickle as ``(path, shape,
    dtype)`` — no row data — so the coordinator must learn *which* files
    a task needs in order to push them ahead of it. Scanning during the
    one pickling pass the task needs anyway makes discovery free.
    """

    def __init__(self, buffer: io.BytesIO) -> None:
        super().__init__(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        self.spill_paths: list[str] = []

    def persistent_id(self, obj):
        if isinstance(obj, SharedArray):
            meta = getattr(obj, "_spill_meta", None)
            if meta is not None and meta[0] not in self.spill_paths:
                self.spill_paths.append(meta[0])
        return None  # always pickle normally; the scan is a side effect


def _dumps_scanning_spills(payload) -> tuple[bytes, list[str]]:
    buffer = io.BytesIO()
    pickler = _SpillScanPickler(buffer)
    pickler.dump(payload)
    return buffer.getvalue(), pickler.spill_paths


class _WorkerLink:
    """Coordinator-side state for one worker: socket, liveness, pushed files."""

    __slots__ = (
        "host", "port", "label", "sock", "alive", "failure",
        "pushed_spills", "round_marker",
    )

    def __init__(self, spec) -> None:
        self.host, self.port = parse_worker_address(spec)
        self.label = f"{self.host}:{self.port}"
        self.sock: socket.socket | None = None
        self.alive = True
        self.failure: str | None = None
        self.pushed_spills: set[str] = set()
        self.round_marker: object | None = None

    def close(self, *, polite: bool) -> None:
        sock, self.sock = self.sock, None
        if sock is None:
            return
        if polite:
            try:
                send_frame(sock, OP_QUIT)
                recv_frame(sock)
            except OSError:
                pass
        sock.close()
        # A QUIT ends the worker-side connection, which deletes the spill
        # files it received — the next connection must push them again.
        self.pushed_spills.clear()
        self.round_marker = None


class DistributedBackend:
    """Executor backend that runs reducers on remote worker daemons over TCP.

    Parameters
    ----------
    workers:
        Worker addresses (``"host:port"`` strings or ``(host, port)``
        pairs), e.g. the :attr:`LocalCluster.addresses` of a test
        cluster or the printed listen addresses of ``repro worker``
        daemons. At least one is required; the list order defines the
        round-robin placement.
    push_spills:
        Push disk-tier spill files to workers as raw bytes (default).
        ``False`` lets workers open the coordinator's files by path —
        only correct when every worker shares the coordinator's
        filesystem.
    connect_timeout:
        Seconds to wait for a TCP connect before declaring a worker
        unreachable (the job then proceeds on the surviving workers).

    Notes
    -----
    The backend keeps one connection per worker, reused across rounds
    and across runtimes until :meth:`close`; a closed backend reconnects
    lazily, so instances may be reused. ``close()`` ends the
    connections but never stops the daemons themselves.
    """

    name = "distributed"
    #: Workers live in other processes (possibly other hosts); shuffle
    #: partition buffers default to the by-value memory tier.
    uses_shared_memory = False

    def __init__(
        self,
        workers: Sequence,
        *,
        push_spills: bool = True,
        connect_timeout: float = 5.0,
    ) -> None:
        links = [_WorkerLink(spec) for spec in workers]
        if not links:
            raise InvalidParameterError(
                "the distributed backend requires at least one worker address"
            )
        if connect_timeout <= 0:
            raise InvalidParameterError("connect_timeout must be positive")
        self._links = links
        self._push_spills = bool(push_spills)
        self._connect_timeout = float(connect_timeout)
        self._lock = threading.Lock()
        self._last_assignments: dict[Hashable, list[str]] = {}
        self._last_bytes = 0
        self._bytes_shipped = 0

    # -- introspection -----------------------------------------------------------------

    @property
    def worker_addresses(self) -> tuple[str, ...]:
        """The configured worker addresses, in placement order."""
        return tuple(link.label for link in self._links)

    @property
    def max_workers(self) -> int:
        """Number of configured workers (the backend's degree of parallelism)."""
        return len(self._links)

    @property
    def bytes_shipped(self) -> int:
        """Total payload bytes sent to workers over this backend's lifetime."""
        return self._bytes_shipped

    def take_round_accounting(self) -> tuple[dict[Hashable, list[str]], int]:
        """Per-round accounting for :class:`~repro.mapreduce.runtime.JobStats`.

        Returns ``(assignments, bytes_shipped)`` for the most recent
        :meth:`run_reducers` call and resets the per-round counters:
        ``assignments`` maps each reduce key to the worker labels that
        were attempted in order (more than one entry records a retry
        after a worker failure).
        """
        assignments, self._last_assignments = self._last_assignments, {}
        shipped, self._last_bytes = self._last_bytes, 0
        return assignments, shipped

    # -- connection plumbing -----------------------------------------------------------

    def _connect(self, link: _WorkerLink) -> socket.socket:
        sock = socket.create_connection(
            (link.host, link.port), timeout=self._connect_timeout
        )
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _mark_dead(self, link: _WorkerLink, exc: BaseException) -> None:
        link.alive = False
        link.failure = f"{type(exc).__name__}: {exc}"
        sock, link.sock = link.sock, None
        if sock is not None:
            sock.close()
        link.pushed_spills.clear()
        link.round_marker = None

    def _request(self, link: _WorkerLink, opcode: bytes, payload: bytes) -> tuple[bytes, bytes]:
        send_frame(link.sock, opcode, payload)
        return recv_frame(link.sock)

    # -- the ExecutorBackend protocol --------------------------------------------------

    def run_reducers(self, reducer, groups):
        """Execute ``reducer`` on every group across the workers; see the module docs."""
        keys = list(groups)
        reducer_payload = pickle.dumps(reducer, protocol=pickle.HIGHEST_PROTOCOL)

        round_marker = object()
        assignments: dict[Hashable, list[str]] = {key: [] for key in keys}
        results: dict[Hashable, tuple[list, float]] = {}
        task_errors: list[WorkerTaskError] = []
        abort = threading.Event()
        shipped = [0]  # single cell, guarded by self._lock

        def remote_error(response: bytes, context: str, link: _WorkerLink) -> WorkerTaskError:
            exc_type, message, remote_traceback = pickle.loads(response)
            return WorkerTaskError(
                f"{context} raised {exc_type} on worker {link.label}: {message}\n"
                f"--- remote traceback ---\n{remote_traceback}"
            )

        def drain(link: _WorkerLink, assigned: list[tuple[int, Hashable]],
                  failed: list[tuple[int, Hashable]]) -> None:
            sent = 0

            def expect_ok(opcode: bytes, response: bytes, context: str) -> bool:
                """True when OK; records a (non-retriable) remote error on ERROR."""
                if opcode == OP_OK:
                    return True
                if opcode == OP_ERROR:
                    # An application error (unpicklable reducer, bad spill
                    # payload) is deterministic: abort instead of retrying
                    # the identical payload on every worker in turn.
                    task_errors.append(remote_error(response, context, link))
                    abort.set()
                    return False
                raise ProtocolViolation(opcode)

            try:
                for position, (index, key) in enumerate(assigned):
                    if abort.is_set():
                        failed.extend(assigned[position:])
                        return
                    assignments[key].append(link.label)
                    if link.sock is None:
                        link.sock = self._connect(link)
                        link.round_marker = None
                    if link.round_marker is not round_marker:
                        opcode, response = self._request(link, OP_REDUCER, reducer_payload)
                        if not expect_ok(opcode, response, "unpickling the reducer"):
                            failed.extend(assigned[position:])
                            return
                        link.round_marker = round_marker
                        sent += len(reducer_payload)
                    # Pickled per dispatch (not up front for the whole round),
                    # so the coordinator holds at most one serialized payload
                    # per worker in flight — a retry re-pickles instead of the
                    # round keeping a full serialized copy of every partition.
                    payload, spill_paths = _dumps_scanning_spills((key, groups[key]))
                    if self._push_spills:
                        for path in spill_paths:
                            if path in link.pushed_spills:
                                continue
                            with open(path, "rb") as handle:
                                data = handle.read()
                            put_payload = pickle.dumps(
                                (path, data), protocol=pickle.HIGHEST_PROTOCOL
                            )
                            opcode, response = self._request(link, OP_PUT, put_payload)
                            if not expect_ok(
                                opcode, response, f"storing pushed spill file {path!r}"
                            ):
                                failed.extend(assigned[position:])
                                return
                            link.pushed_spills.add(path)
                            sent += len(put_payload)
                    opcode, response = self._request(link, OP_TASK, payload)
                    sent += len(payload)
                    if opcode == OP_RESULT:
                        outputs, elapsed = pickle.loads(response)
                        results[key] = (outputs, elapsed)
                    elif opcode == OP_ERROR:
                        task_errors.append(
                            remote_error(response, f"reducer for key {key!r}", link)
                        )
                        abort.set()
                        failed.extend(assigned[position + 1:])
                        return
                    else:
                        raise ProtocolViolation(opcode)
            except (OSError, EOFError, pickle.PickleError, ProtocolViolation) as exc:
                self._mark_dead(link, exc)
                # The task in flight and everything after it must be retried.
                failed.extend(
                    (index, key) for index, key in assigned if key not in results
                )
            except Exception as exc:
                # Anything else (e.g. a RESULT that unpickles into a class the
                # coordinator cannot resolve) is deterministic: surface it
                # instead of letting the thread die and the tasks vanish.
                task_errors.append(WorkerTaskError(
                    f"coordinator-side failure handling results from worker "
                    f"{link.label}: {exc!r}"
                ))
                abort.set()
            finally:
                with self._lock:
                    shipped[0] += sent

        pending: list[tuple[int, Hashable]] = list(enumerate(keys))
        while pending and not abort.is_set():
            alive = [link for link in self._links if link.alive]
            if not alive:
                details = "; ".join(
                    f"{link.label}: {link.failure or 'no failure recorded'}"
                    for link in self._links
                )
                raise WorkerUnavailableError(
                    f"no surviving worker to run {len(pending)} remaining reduce "
                    f"task(s) ({details})"
                )
            queues: dict[int, list[tuple[int, Hashable]]] = {
                id(link): [] for link in alive
            }
            for index, key in pending:
                link = alive[index % len(alive)]
                queues[id(link)].append((index, key))
            failures: dict[int, list[tuple[int, Hashable]]] = {
                id(link): [] for link in alive
            }
            threads = []
            for link in alive:
                assigned = queues[id(link)]
                if not assigned:
                    continue
                thread = threading.Thread(
                    target=drain, args=(link, assigned, failures[id(link)]),
                    daemon=True,
                )
                threads.append(thread)
                thread.start()
            for thread in threads:
                thread.join()
            if task_errors:
                raise task_errors[0]
            pending = sorted(
                {(index, key) for per_link in failures.values()
                 for index, key in per_link if key not in results},
                key=lambda task: task[0],
            )

        self._last_assignments = assignments
        self._last_bytes = shipped[0]
        self._bytes_shipped += shipped[0]
        return {key: results[key] for key in keys}

    def share_array(self, array) -> SharedArray:
        """Publish an array for reducers: pickled by value into each task."""
        view = np.asarray(array).view()
        view.flags.writeable = False
        return SharedArray(view, by_value=True)

    def close(self) -> None:
        """End the worker connections (the daemons keep serving). Idempotent."""
        for link in self._links:
            link.close(polite=link.alive)

    def __enter__(self) -> "DistributedBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ProtocolViolation(Exception):
    """Internal: the worker answered with an unexpected opcode.

    Treated exactly like a transport failure (the worker is marked dead
    and its tasks retried elsewhere); never escapes the backend.
    """

    def __init__(self, opcode: bytes) -> None:
        super().__init__(f"unexpected response opcode {opcode!r}")


class LocalCluster:
    """N in-process loopback workers, for tests and the CI smoke jobs.

    Spawns :class:`~repro.mapreduce.worker.WorkerServer` instances on
    ``127.0.0.1`` (OS-assigned ports), each serving on a background
    thread — real TCP sockets and real pickling, but deterministic and
    self-contained. Use as a context manager::

        with LocalCluster(2) as cluster:
            solver = MapReduceKCenter(5, workers=cluster.addresses)
            result = solver.fit(points)

    Parameters
    ----------
    n_workers:
        Number of loopback workers to start.
    fail_after_tasks:
        Optional failure injection: ``{worker_index: n}`` makes that
        worker die on its ``n+1``-th task (see
        :class:`~repro.mapreduce.worker.WorkerServer`).
    fail_mode:
        ``"close"`` (drop the connection) or ``"truncate"`` (send a
        partial result frame first).
    """

    def __init__(
        self,
        n_workers: int,
        *,
        fail_after_tasks: dict[int, int] | None = None,
        fail_mode: str = "close",
    ) -> None:
        if n_workers < 1:
            raise InvalidParameterError("n_workers must be >= 1")
        fail_after_tasks = fail_after_tasks or {}
        self._servers: list[WorkerServer] = []
        try:
            for index in range(n_workers):
                server = WorkerServer(
                    fail_after_tasks=fail_after_tasks.get(index),
                    fail_mode=fail_mode,
                )
                self._servers.append(server)
                server.serve_in_background()
        except BaseException:
            self.close()
            raise

    @property
    def addresses(self) -> list[str]:
        """``host:port`` of every worker, in placement order."""
        return [server.address for server in self._servers]

    @property
    def workers(self) -> list[WorkerServer]:
        """The underlying servers (for spill-dir and task-count assertions)."""
        return list(self._servers)

    def backend(self, **kwargs) -> DistributedBackend:
        """A :class:`DistributedBackend` wired to this cluster's workers."""
        return DistributedBackend(self.addresses, **kwargs)

    def kill_worker(self, index: int) -> None:
        """Hard-stop one worker (listener and live connections)."""
        self._servers[index].shutdown()

    def close(self) -> None:
        """Stop every worker and remove their spill directories. Idempotent."""
        for server in self._servers:
            server.shutdown()

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
