"""Partitioning strategies for the first MapReduce round.

The first round splits the input ``S`` into ``ell`` subsets ``S_i``.
The paper uses three flavours:

* **contiguous equal-size** splits (the deterministic algorithms only need
  the subsets to have equal size);
* **uniformly random** assignment of each point to a subset — the
  randomized outlier algorithm of Section 3.2.1 relies on this to spread
  the outliers evenly (Lemma 7);
* an **adversarial** split used in the experiments of Section 5.2, where
  all planted outliers are forced into the same partition to stress the
  deterministic algorithm.

Every function returns a list of ``ell`` index arrays (some possibly
empty for degenerate inputs) that together partition ``range(n)``.

The first three strategies assign point ``i`` to a partition as a pure
function of ``(i, n, ell)`` — the random strategy through a seeded
counter-based hash (:func:`hashed_assignment`) rather than a sequential
RNG draw. That makes every assignment *chunking-independent*: the
streamed shuffle (:class:`ChunkRouter`) can recompute it for any chunk
``[offset, offset + m)`` of the input without materialising the whole
index range, and lands every point in exactly the partition the
in-memory ``split_*`` functions would have chosen.

:func:`draw_partition_seeds` is the one shared way the MapReduce drivers
draw their per-partition coreset seeds, so the deterministic-for-any-
backend guarantee cannot drift between solvers.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import (
    check_non_negative_int,
    check_positive_int,
    check_random_state,
)
from ..exceptions import InvalidParameterError

__all__ = [
    "split_contiguous",
    "split_round_robin",
    "split_random",
    "split_adversarial",
    "validate_partition",
    "hashed_assignment",
    "draw_partition_seeds",
    "ChunkRouter",
]


_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finaliser (a high-quality 64-bit mixer)."""
    with np.errstate(over="ignore"):
        x = (values + np.uint64(0x9E3779B97F4A7C15)) & _MASK64
        x = ((x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & _MASK64
        x = ((x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & _MASK64
        return x ^ (x >> np.uint64(31))


def hashed_assignment(indices: np.ndarray, ell: int, seed: int) -> np.ndarray:
    """Partition id for each global point index under the seeded random split.

    A counter-based construction: the partition of point ``i`` is
    ``splitmix64(splitmix64(seed) ^ i) mod ell``, a pure function of
    ``(i, seed, ell)``. Unlike drawing ``n`` sequential variates, the
    assignment of any index range can be recomputed independently —
    the property the out-of-core shuffle needs to route chunks without
    ever holding the full assignment vector.
    """
    ell = check_positive_int(ell, name="ell")
    indices = np.asarray(indices, dtype=np.uint64)
    mixed_seed = _splitmix64(np.uint64(seed) & _MASK64)
    hashed = _splitmix64(indices ^ mixed_seed)
    return (hashed % np.uint64(ell)).astype(np.intp)


def draw_partition_seeds(rng: np.random.Generator, n_partitions: int) -> tuple[int, ...]:
    """Draw one coreset seed per partition, in partition order.

    Both MapReduce drivers draw their round-1 seeds through this helper
    (one ``integers(2**31 - 1)`` variate per partition, partition 0
    first), which is what makes the documented guarantee — "the result
    is deterministic for any ``max_workers``/backend because
    per-partition seeds are drawn up front" — a single point of truth
    instead of two copies that can drift.
    """
    n_partitions = check_positive_int(n_partitions, name="n_partitions")
    return tuple(int(rng.integers(2**31 - 1)) for _ in range(n_partitions))


def split_contiguous(n: int, ell: int) -> list[np.ndarray]:
    """Split ``range(n)`` into ``ell`` contiguous, (near-)equal-size blocks."""
    n = check_positive_int(n, name="n")
    ell = check_positive_int(ell, name="ell")
    if ell > n:
        raise InvalidParameterError(f"cannot split {n} points into {ell} non-empty parts")
    return [np.array(part, dtype=np.intp) for part in np.array_split(np.arange(n), ell)]


def split_round_robin(n: int, ell: int) -> list[np.ndarray]:
    """Assign point ``i`` to partition ``i mod ell`` (deterministic interleaving)."""
    n = check_positive_int(n, name="n")
    ell = check_positive_int(ell, name="ell")
    if ell > n:
        raise InvalidParameterError(f"cannot split {n} points into {ell} non-empty parts")
    indices = np.arange(n)
    return [indices[indices % ell == i] for i in range(ell)]


def split_random(n: int, ell: int, *, random_state=None) -> list[np.ndarray]:
    """Assign each point to a uniformly random partition, independently.

    This is the partitioning of the randomized outlier algorithm
    (Section 3.2.1); unlike :func:`split_contiguous` the parts are only
    equal in expectation, and parts can occasionally be empty for tiny
    inputs — the MapReduce drivers simply skip empty parts (dropping a
    partition only lowers the effective parallelism, never correctness).

    The per-point draw is the counter-based :func:`hashed_assignment`
    keyed by a single variate from ``random_state``, so the streamed
    shuffle reproduces this split exactly, chunk by chunk, from the same
    ``random_state``.
    """
    n = check_positive_int(n, name="n")
    ell = check_positive_int(ell, name="ell")
    rng = check_random_state(random_state)
    seed = int(rng.integers(2**63 - 1))
    assignment = hashed_assignment(np.arange(n), ell, seed)
    return [np.flatnonzero(assignment == i).astype(np.intp) for i in range(ell)]


def split_adversarial(
    n: int,
    ell: int,
    adversarial_indices: Sequence[int],
    *,
    target_partition: int = 0,
    random_state=None,
) -> list[np.ndarray]:
    """Force the given indices into one partition, spreading the rest evenly.

    Reproduces the adversarial placement of Section 5.2: all planted
    outliers land in ``target_partition`` and the remaining points are
    dealt round-robin (or shuffled round-robin when a ``random_state`` is
    given) across all ``ell`` partitions, keeping sizes balanced.
    """
    n = check_positive_int(n, name="n")
    ell = check_positive_int(ell, name="ell")
    target_partition = check_non_negative_int(target_partition, name="target_partition")
    if target_partition >= ell:
        raise InvalidParameterError("target_partition must be smaller than ell")
    adversarial = np.unique(np.asarray(adversarial_indices, dtype=np.intp))
    if adversarial.size and (adversarial.min() < 0 or adversarial.max() >= n):
        raise InvalidParameterError("adversarial_indices must be valid point indices")

    remaining = np.setdiff1d(np.arange(n), adversarial, assume_unique=False)
    if random_state is not None:
        rng = check_random_state(random_state)
        remaining = rng.permutation(remaining)

    # Target sizes of a balanced partition of n points into ell parts.
    base, extra = divmod(n, ell)
    targets = [base + (1 if i < extra else 0) for i in range(ell)]

    parts: list[list[int]] = [[] for _ in range(ell)]
    parts[target_partition].extend(adversarial.tolist())
    cursor = 0
    for partition_id in range(ell):
        missing = max(0, targets[partition_id] - len(parts[partition_id]))
        take = remaining[cursor : cursor + missing]
        parts[partition_id].extend(int(i) for i in take)
        cursor += missing
    # Leftovers (only possible when the adversarial block overflows its
    # partition's target size) are dealt to the smallest partitions.
    for index in remaining[cursor:]:
        smallest = min(range(ell), key=lambda i: len(parts[i]))
        parts[smallest].append(int(index))
    return [np.array(sorted(part), dtype=np.intp) for part in parts]


class ChunkRouter:
    """Route consecutive stream chunks into ``ell`` partitions.

    The router computes, for each incoming chunk of ``m`` points, the
    partition id of every row — matching bit for bit the partition that
    the corresponding in-memory ``split_*`` function assigns to the same
    global index. It never materialises more than one chunk's worth of
    assignment metadata, which is what keeps the coordinator's working
    set at ``O(chunk)`` during the out-of-core shuffle.

    Parameters
    ----------
    ell:
        Number of partitions.
    partitioning:
        ``"contiguous"``, ``"round_robin"`` or ``"random"``.
        ``"contiguous"`` additionally needs ``n_total`` (the equal-size
        block boundaries depend on the stream length); ``"adversarial"``
        is inherently offline and not supported here.
    n_total:
        Stream length, when known (e.g. from ``len(stream)``).
    seed:
        Hash seed for the ``"random"`` strategy; drawn by the caller from
        the run's RNG exactly like :func:`split_random` draws it, so both
        paths consume the generator identically.
    """

    def __init__(
        self,
        ell: int,
        partitioning: str = "contiguous",
        *,
        n_total: int | None = None,
        seed: int | None = None,
    ) -> None:
        self.ell = check_positive_int(ell, name="ell")
        if partitioning not in ("contiguous", "round_robin", "random"):
            raise InvalidParameterError(
                "streamed shuffling supports 'contiguous', 'round_robin' and "
                f"'random' partitioning; got {partitioning!r}"
            )
        if partitioning == "contiguous":
            if n_total is None:
                raise InvalidParameterError(
                    "contiguous partitioning needs the stream length up front; "
                    "use 'round_robin' or 'random' for unknown-length streams"
                )
            n_total = check_positive_int(n_total, name="n_total")
            if self.ell > n_total:
                raise InvalidParameterError(
                    f"cannot split {n_total} points into {self.ell} non-empty parts"
                )
            # np.array_split boundaries: the first n % ell blocks get one
            # extra point, exactly like split_contiguous.
            base, extra = divmod(n_total, self.ell)
            sizes = np.full(self.ell, base, dtype=np.intp)
            sizes[:extra] += 1
            self._boundaries = np.cumsum(sizes)
        else:
            self._boundaries = None
        if partitioning == "random" and seed is None:
            raise InvalidParameterError("random partitioning needs a hash seed")
        self.partitioning = partitioning
        self.n_total = n_total
        self._seed = seed
        self._offset = 0

    @property
    def points_routed(self) -> int:
        """Number of stream points routed so far."""
        return self._offset

    def route(self, chunk_length: int) -> np.ndarray:
        """Partition id of each row of the next ``chunk_length``-row chunk.

        Chunks must be routed in stream order; the router advances its
        global offset by ``chunk_length``.
        """
        if chunk_length < 1:
            raise InvalidParameterError("chunk_length must be >= 1")
        indices = self._offset + np.arange(chunk_length, dtype=np.intp)
        self._offset += chunk_length
        if self.n_total is not None and self._offset > self.n_total:
            raise InvalidParameterError(
                f"stream delivered more than the declared {self.n_total} points"
            )
        if self.partitioning == "round_robin":
            return indices % self.ell
        if self.partitioning == "random":
            return hashed_assignment(indices, self.ell, self._seed)
        return np.searchsorted(self._boundaries, indices, side="right").astype(np.intp)


def validate_partition(parts: Sequence[np.ndarray], n: int) -> None:
    """Check that ``parts`` is a partition of ``range(n)``; raise otherwise."""
    n = check_positive_int(n, name="n")
    combined = np.concatenate([np.asarray(p, dtype=np.intp) for p in parts]) if parts else np.empty(0, dtype=np.intp)
    if combined.size != n or np.unique(combined).size != n:
        raise InvalidParameterError("parts do not form a partition of range(n)")
    if combined.size and (combined.min() < 0 or combined.max() >= n):
        raise InvalidParameterError("partition contains out-of-range indices")
