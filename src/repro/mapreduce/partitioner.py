"""Partitioning strategies for the first MapReduce round.

The first round splits the input ``S`` into ``ell`` subsets ``S_i``.
The paper uses three flavours:

* **contiguous equal-size** splits (the deterministic algorithms only need
  the subsets to have equal size);
* **uniformly random** assignment of each point to a subset — the
  randomized outlier algorithm of Section 3.2.1 relies on this to spread
  the outliers evenly (Lemma 7);
* an **adversarial** split used in the experiments of Section 5.2, where
  all planted outliers are forced into the same partition to stress the
  deterministic algorithm.

Every function returns a list of ``ell`` index arrays (some possibly
empty for degenerate inputs) that together partition ``range(n)``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import (
    check_non_negative_int,
    check_positive_int,
    check_random_state,
)
from ..exceptions import InvalidParameterError

__all__ = [
    "split_contiguous",
    "split_round_robin",
    "split_random",
    "split_adversarial",
    "validate_partition",
]


def split_contiguous(n: int, ell: int) -> list[np.ndarray]:
    """Split ``range(n)`` into ``ell`` contiguous, (near-)equal-size blocks."""
    n = check_positive_int(n, name="n")
    ell = check_positive_int(ell, name="ell")
    if ell > n:
        raise InvalidParameterError(f"cannot split {n} points into {ell} non-empty parts")
    return [np.array(part, dtype=np.intp) for part in np.array_split(np.arange(n), ell)]


def split_round_robin(n: int, ell: int) -> list[np.ndarray]:
    """Assign point ``i`` to partition ``i mod ell`` (deterministic interleaving)."""
    n = check_positive_int(n, name="n")
    ell = check_positive_int(ell, name="ell")
    if ell > n:
        raise InvalidParameterError(f"cannot split {n} points into {ell} non-empty parts")
    indices = np.arange(n)
    return [indices[indices % ell == i] for i in range(ell)]


def split_random(n: int, ell: int, *, random_state=None) -> list[np.ndarray]:
    """Assign each point to a uniformly random partition, independently.

    This is the partitioning of the randomized outlier algorithm
    (Section 3.2.1); unlike :func:`split_contiguous` the parts are only
    equal in expectation, and parts can occasionally be empty for tiny
    inputs — callers that need non-empty parts should fall back to
    :func:`split_round_robin` in that case (the MapReduce drivers do).
    """
    n = check_positive_int(n, name="n")
    ell = check_positive_int(ell, name="ell")
    rng = check_random_state(random_state)
    assignment = rng.integers(0, ell, size=n)
    return [np.flatnonzero(assignment == i).astype(np.intp) for i in range(ell)]


def split_adversarial(
    n: int,
    ell: int,
    adversarial_indices: Sequence[int],
    *,
    target_partition: int = 0,
    random_state=None,
) -> list[np.ndarray]:
    """Force the given indices into one partition, spreading the rest evenly.

    Reproduces the adversarial placement of Section 5.2: all planted
    outliers land in ``target_partition`` and the remaining points are
    dealt round-robin (or shuffled round-robin when a ``random_state`` is
    given) across all ``ell`` partitions, keeping sizes balanced.
    """
    n = check_positive_int(n, name="n")
    ell = check_positive_int(ell, name="ell")
    target_partition = check_non_negative_int(target_partition, name="target_partition")
    if target_partition >= ell:
        raise InvalidParameterError("target_partition must be smaller than ell")
    adversarial = np.unique(np.asarray(adversarial_indices, dtype=np.intp))
    if adversarial.size and (adversarial.min() < 0 or adversarial.max() >= n):
        raise InvalidParameterError("adversarial_indices must be valid point indices")

    remaining = np.setdiff1d(np.arange(n), adversarial, assume_unique=False)
    if random_state is not None:
        rng = check_random_state(random_state)
        remaining = rng.permutation(remaining)

    # Target sizes of a balanced partition of n points into ell parts.
    base, extra = divmod(n, ell)
    targets = [base + (1 if i < extra else 0) for i in range(ell)]

    parts: list[list[int]] = [[] for _ in range(ell)]
    parts[target_partition].extend(adversarial.tolist())
    cursor = 0
    for partition_id in range(ell):
        missing = max(0, targets[partition_id] - len(parts[partition_id]))
        take = remaining[cursor : cursor + missing]
        parts[partition_id].extend(int(i) for i in take)
        cursor += missing
    # Leftovers (only possible when the adversarial block overflows its
    # partition's target size) are dealt to the smallest partitions.
    for index in remaining[cursor:]:
        smallest = min(range(ell), key=lambda i: len(parts[i]))
        parts[smallest].append(int(index))
    return [np.array(sorted(part), dtype=np.intp) for part in parts]


def validate_partition(parts: Sequence[np.ndarray], n: int) -> None:
    """Check that ``parts`` is a partition of ``range(n)``; raise otherwise."""
    n = check_positive_int(n, name="n")
    combined = np.concatenate([np.asarray(p, dtype=np.intp) for p in parts]) if parts else np.empty(0, dtype=np.intp)
    if combined.size != n or np.unique(combined).size != n:
        raise InvalidParameterError("parts do not form a partition of range(n)")
    if combined.size and (combined.min() < 0 or combined.max() >= n):
        raise InvalidParameterError("partition contains out-of-range indices")
