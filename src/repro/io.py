"""Saving and loading clustering solutions.

Long MapReduce or streaming runs produce solutions (centers, radius,
outlier indices, configuration) that users want to persist and reload
without re-running the solver. This module serialises the solver result
dataclasses to a small JSON + NPZ pair:

* the JSON file holds the scalar metadata (radius, parameters, provenance);
* the NPZ file holds the arrays (center coordinates, center indices,
  outlier indices).

The functions are deliberately format-stable (versioned payload) so
solutions written by one release remain loadable by later ones.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .exceptions import InvalidParameterError

__all__ = ["SavedSolution", "save_solution", "load_solution"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class SavedSolution:
    """A solution re-hydrated from disk.

    Attributes
    ----------
    centers:
        ``(k, d)`` center coordinates.
    radius:
        Objective value recorded at save time.
    center_indices:
        Indices of the centers in the original dataset (may be empty when
        the producing algorithm did not track them, e.g. streaming).
    outlier_indices:
        Indices of the points the solution discards (empty without outliers).
    metadata:
        The free-form metadata dictionary stored alongside the arrays
        (algorithm name, parameters, dataset description, ...).
    """

    centers: np.ndarray
    radius: float
    center_indices: np.ndarray
    outlier_indices: np.ndarray
    metadata: dict

    @property
    def k(self) -> int:
        """Number of centers."""
        return int(self.centers.shape[0])


def _paths(base_path) -> tuple[Path, Path]:
    base = Path(base_path)
    if base.suffix in (".json", ".npz"):
        base = base.with_suffix("")
    return base.with_suffix(".json"), base.with_suffix(".npz")


def save_solution(result, base_path, *, metadata: dict | None = None) -> tuple[Path, Path]:
    """Persist a solver result to ``<base_path>.json`` + ``<base_path>.npz``.

    Parameters
    ----------
    result:
        Any of the package's result objects (sequential, MapReduce or
        streaming); it must expose ``centers`` and ``radius``, and may
        expose ``center_indices`` / ``outlier_indices``.
    base_path:
        Target path without extension (an extension, if given, is dropped).
    metadata:
        Extra key/value pairs recorded in the JSON file (e.g. dataset
        name, k, z, the solver's configuration).

    Returns
    -------
    (json_path, npz_path)
    """
    centers = np.asarray(getattr(result, "centers", None))
    if centers is None or centers.ndim != 2:
        raise InvalidParameterError("result must expose a (k, d) 'centers' array")
    radius = getattr(result, "radius", None)
    if radius is None:
        raise InvalidParameterError("result must expose a 'radius'")

    center_indices = np.asarray(
        getattr(result, "center_indices", np.empty(0, dtype=np.intp)), dtype=np.intp
    )
    outlier_indices = np.asarray(
        getattr(result, "outlier_indices", np.empty(0, dtype=np.intp)), dtype=np.intp
    )

    json_path, npz_path = _paths(base_path)
    payload = {
        "format_version": _FORMAT_VERSION,
        "result_type": type(result).__name__,
        "radius": float(radius),
        "n_centers": int(centers.shape[0]),
        "dimension": int(centers.shape[1]),
        "n_outliers": int(outlier_indices.shape[0]),
        "metadata": dict(metadata or {}),
    }
    json_path.parent.mkdir(parents=True, exist_ok=True)
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    np.savez_compressed(
        npz_path,
        centers=centers,
        center_indices=center_indices,
        outlier_indices=outlier_indices,
    )
    return json_path, npz_path


def load_solution(base_path) -> SavedSolution:
    """Load a solution previously written by :func:`save_solution`."""
    json_path, npz_path = _paths(base_path)
    if not json_path.exists() or not npz_path.exists():
        raise InvalidParameterError(
            f"no saved solution at {json_path} / {npz_path}"
        )
    with open(json_path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format_version") != _FORMAT_VERSION:
        raise InvalidParameterError(
            f"unsupported solution format version {payload.get('format_version')!r}"
        )
    with np.load(npz_path) as arrays:
        centers = np.array(arrays["centers"])
        center_indices = np.array(arrays["center_indices"], dtype=np.intp)
        outlier_indices = np.array(arrays["outlier_indices"], dtype=np.intp)
    metadata = dict(payload.get("metadata", {}))
    metadata.setdefault("result_type", payload.get("result_type"))
    return SavedSolution(
        centers=centers,
        radius=float(payload["radius"]),
        center_indices=center_indices,
        outlier_indices=outlier_indices,
        metadata=metadata,
    )
