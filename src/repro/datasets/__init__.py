"""Dataset substrate: synthetic generators, paper-dataset stand-ins, outlier injection, inflation."""

from .files import load_higgs_csv, load_numeric_csv, load_power_csv
from .inflation import coordinate_noise_scale, inflate, inflate_streaming
from .loaders import (
    PAPER_DATASETS,
    higgs_like,
    load_paper_dataset,
    power_like,
    stream_paper_dataset,
    wiki_like,
)
from .outliers import OutlierInjection, inject_outliers
from .synthetic import (
    GaussianMixtureSpec,
    annulus,
    clustered_with_noise,
    gaussian_mixture,
    points_on_manifold,
    uniform_hypercube,
)

__all__ = [
    "GaussianMixtureSpec",
    "OutlierInjection",
    "PAPER_DATASETS",
    "annulus",
    "clustered_with_noise",
    "coordinate_noise_scale",
    "gaussian_mixture",
    "higgs_like",
    "inflate",
    "inflate_streaming",
    "inject_outliers",
    "load_higgs_csv",
    "load_numeric_csv",
    "load_paper_dataset",
    "load_power_csv",
    "points_on_manifold",
    "power_like",
    "stream_paper_dataset",
    "uniform_hypercube",
    "wiki_like",
]
