"""Loading real datasets from files, with the paper's preprocessing.

The offline benchmark harness uses synthetic stand-ins (see
:mod:`repro.datasets.loaders`), but users who have downloaded the actual
evaluation datasets can load them here with exactly the preprocessing the
paper describes:

* **HIGGS** (UCI): 11M rows; column 0 is the class label, columns 1–21
  are low-level detector features and columns 22–28 are the seven derived
  ("high-level") features. The paper uses only the seven derived
  features; :func:`load_higgs_csv` does the same.
* **Power** (UCI "Individual household electric power consumption"):
  semicolon-separated, with ``Date`` and ``Time`` columns and ``?`` for
  missing values. The paper uses the seven numeric attributes and we drop
  rows with missing readings; :func:`load_power_csv` does the same.
* Generic numeric CSVs are handled by :func:`load_numeric_csv`.

All loaders return plain ``(n, d)`` ``float64`` arrays, optionally capped
at ``max_rows`` so that a quick experiment does not need to parse the
full multi-gigabyte files.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

import numpy as np

from .._validation import check_positive_int
from ..exceptions import DatasetError

__all__ = ["load_numeric_csv", "load_higgs_csv", "load_power_csv"]


def _read_rows(
    path,
    *,
    delimiter: str,
    skip_header: bool,
    max_rows: int | None,
):
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"dataset file not found: {path}")
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        if skip_header:
            next(reader, None)
        for index, row in enumerate(reader):
            if max_rows is not None and index >= max_rows:
                break
            yield row


def load_numeric_csv(
    path,
    *,
    columns: Sequence[int] | None = None,
    delimiter: str = ",",
    skip_header: bool = False,
    missing_values: Sequence[str] = ("", "?", "NA", "nan"),
    drop_missing: bool = True,
    max_rows: int | None = None,
) -> np.ndarray:
    """Load selected numeric columns of a CSV file into an ``(n, d)`` array.

    Parameters
    ----------
    path:
        Path to the CSV file.
    columns:
        Zero-based indices of the columns to keep (default: all columns).
    delimiter:
        Field separator.
    skip_header:
        Skip the first line (column names).
    missing_values:
        Strings treated as missing.
    drop_missing:
        Drop rows containing a missing value (otherwise they raise).
    max_rows:
        Optional cap on the number of data rows read.

    Raises
    ------
    DatasetError
        If the file does not exist, a value cannot be parsed, or no valid
        rows remain.
    """
    if max_rows is not None:
        max_rows = check_positive_int(max_rows, name="max_rows")
    missing = set(missing_values)
    rows: list[list[float]] = []
    for line_number, row in enumerate(
        _read_rows(path, delimiter=delimiter, skip_header=skip_header, max_rows=max_rows)
    ):
        if not row:
            continue
        selected = row if columns is None else [row[i] for i in columns]
        if any(value.strip() in missing for value in selected):
            if drop_missing:
                continue
            raise DatasetError(f"missing value on data row {line_number}")
        try:
            rows.append([float(value) for value in selected])
        except (ValueError, IndexError) as exc:
            raise DatasetError(
                f"could not parse data row {line_number} of {path}: {exc}"
            ) from exc
    if not rows:
        raise DatasetError(f"no usable rows found in {path}")
    return np.asarray(rows, dtype=np.float64)


def load_higgs_csv(path, *, max_rows: int | None = None) -> np.ndarray:
    """Load the UCI HIGGS csv keeping only the 7 derived features (as in the paper).

    The file layout is ``label, 21 low-level features, 7 derived features``;
    columns 22–28 (0-based) are returned.
    """
    return load_numeric_csv(
        path,
        columns=tuple(range(22, 29)),
        delimiter=",",
        skip_header=False,
        max_rows=max_rows,
    )


def load_power_csv(path, *, max_rows: int | None = None) -> np.ndarray:
    """Load the UCI household power csv keeping the 7 numeric attributes.

    The file is semicolon-separated with a header row; the first two
    columns (``Date``, ``Time``) are non-numeric and skipped, and rows
    with missing measurements (``?``) are dropped — the paper's setup.
    """
    return load_numeric_csv(
        path,
        columns=tuple(range(2, 9)),
        delimiter=";",
        skip_header=True,
        max_rows=max_rows,
    )
