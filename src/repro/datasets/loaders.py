"""Synthetic stand-ins for the paper's evaluation datasets.

The paper evaluates on three real-world datasets that are not available in
this offline environment:

* **Higgs** — 11 M points, 7 derived features (UCI HIGGS);
* **Power** — 2.07 M points, 7 numeric features (UCI household power);
* **Wiki** — 5.5 M word2vec vectors with 50 dimensions.

Per the substitution policy in ``DESIGN.md``, we provide generators that
produce datasets with the *structural* properties the algorithms are
sensitive to — dimensionality, degree of cluster overlap, and intrinsic
(doubling) dimension — at a configurable scale:

* :func:`higgs_like` — 7-dimensional, heavily overlapping clusters
  (high-energy-physics features are continuous and not cleanly separable);
* :func:`power_like` — 7-dimensional, strongly correlated coordinates with
  periodic structure (power consumption has daily/weekly cycles);
* :func:`wiki_like` — 50-dimensional with comparatively high intrinsic
  dimension, the "stress test" of the paper.

Each loader accepts ``n_points`` so the benchmarks can run at laptop scale
while users can dial the sizes back up to the paper's.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int, check_random_state
from .synthetic import GaussianMixtureSpec, gaussian_mixture

__all__ = [
    "higgs_like",
    "power_like",
    "wiki_like",
    "load_paper_dataset",
    "stream_paper_dataset",
    "PAPER_DATASETS",
]


def higgs_like(n_points: int = 20_000, *, random_state=None) -> np.ndarray:
    """Synthetic stand-in for the HIGGS dataset (7 derived features).

    Many broad, overlapping Gaussian components: particle-physics features
    are continuous and only weakly clustered, so k-center radii decrease
    slowly with k.
    """
    n_points = check_positive_int(n_points, name="n_points")
    rng = check_random_state(random_state)
    spec = GaussianMixtureSpec(n_clusters=40, dimension=7, cluster_std=6.0, box_size=60.0)
    points = gaussian_mixture(n_points, spec, random_state=rng)
    # Heavy-tailed measurement noise, as in detector data.
    points += rng.standard_t(df=3, size=points.shape) * 0.5
    return points


def power_like(n_points: int = 20_000, *, random_state=None) -> np.ndarray:
    """Synthetic stand-in for the household Power dataset (7 numeric features).

    Correlated coordinates riding on a periodic (daily-cycle) signal plus a
    small number of tight behavioural clusters; the resulting intrinsic
    dimension is low, which is the regime where the coresets shine.
    """
    n_points = check_positive_int(n_points, name="n_points")
    rng = check_random_state(random_state)
    time = rng.uniform(0.0, 2.0 * np.pi * 365.0, size=n_points)
    daily = np.sin(time)
    weekly = np.sin(time / 7.0)
    base_load = rng.gamma(shape=2.0, scale=1.5, size=n_points)
    columns = [
        base_load + 2.0 * daily,
        base_load * 0.4 + weekly,
        np.abs(daily) * base_load,
        rng.normal(240.0, 3.0, size=n_points),  # voltage
        base_load * 4.0 + rng.normal(0.0, 0.5, size=n_points),  # intensity
        np.clip(daily, 0.0, None) * 10.0,
        np.clip(weekly, 0.0, None) * 8.0,
    ]
    return np.column_stack(columns)


def wiki_like(n_points: int = 10_000, *, random_state=None) -> np.ndarray:
    """Synthetic stand-in for the Wiki word2vec dataset (50 dimensions).

    Word2vec vectors occupy a high-dimensional shell with moderate cluster
    structure; we emulate that with many mixture components of comparable
    spread followed by row normalisation to a common norm scale, which
    keeps the intrinsic dimension high — the paper's stress case.
    """
    n_points = check_positive_int(n_points, name="n_points")
    rng = check_random_state(random_state)
    spec = GaussianMixtureSpec(n_clusters=120, dimension=50, cluster_std=0.35, box_size=2.0)
    points = gaussian_mixture(n_points, spec, random_state=rng)
    norms = np.linalg.norm(points, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    scale = rng.normal(loc=5.0, scale=0.5, size=(n_points, 1))
    return points / norms * scale


PAPER_DATASETS = {
    "higgs": higgs_like,
    "power": power_like,
    "wiki": wiki_like,
}
"""Mapping of paper dataset name to its synthetic stand-in generator."""


def load_paper_dataset(name: str, n_points: int, *, random_state=None) -> np.ndarray:
    """Load a synthetic stand-in for one of the paper's datasets by name.

    Parameters
    ----------
    name:
        ``"higgs"``, ``"power"`` or ``"wiki"`` (case-insensitive).
    n_points:
        Number of points to generate.
    random_state:
        Seed or generator.
    """
    key = name.lower()
    if key not in PAPER_DATASETS:
        available = ", ".join(sorted(PAPER_DATASETS))
        raise KeyError(f"unknown paper dataset {name!r}; available: {available}")
    return PAPER_DATASETS[key](n_points, random_state=random_state)


def stream_paper_dataset(name: str, n_points: int, *, chunk_size: int = 4096, random_state=None):
    """Generate a paper-dataset stand-in as a chunked stream, out of core.

    Yields ``(m, d)`` chunks (``m <= chunk_size``) totalling ``n_points``
    points without ever materialising the full matrix — the generator
    produces each chunk on demand from a shared seeded generator, so the
    stream is deterministic for a given ``(name, n_points, chunk_size,
    random_state)``. Feed the result to a
    :class:`~repro.streaming.stream.GeneratorStream` or directly to the
    MapReduce drivers' ``fit_stream`` to exercise the out-of-core path
    on datasets larger than the coordinator's memory.

    Note that chunk-wise generation draws different variates than one
    full-size :func:`load_paper_dataset` call, so the *data* differs
    between the two entry points (both are valid stand-ins); determinism
    holds within each entry point.
    """
    n_points = check_positive_int(n_points, name="n_points")
    chunk_size = check_positive_int(chunk_size, name="chunk_size")
    key = name.lower()
    if key not in PAPER_DATASETS:
        available = ", ".join(sorted(PAPER_DATASETS))
        raise KeyError(f"unknown paper dataset {name!r}; available: {available}")
    generator = PAPER_DATASETS[key]
    rng = check_random_state(random_state)

    def chunks():
        remaining = n_points
        while remaining > 0:
            take = min(chunk_size, remaining)
            yield generator(take, random_state=rng)
            remaining -= take

    return chunks()
