"""SMOTE-style dataset inflation for scalability experiments.

Section 5.3 of the paper builds synthetic instances ``h`` times larger
than the originals (``h`` up to 100, for more than a billion points) by
repeatedly sampling a point and perturbing each coordinate with Gaussian
noise whose standard deviation is 10% of that coordinate's range. The
resulting instance keeps the clustered structure of the original — the
same rationale as the SMOTE oversampling technique.

:func:`inflate` reproduces that construction; :func:`inflate_streaming`
yields the inflated points in batches so the scalability benchmarks can
stream arbitrarily large instances without materialising them.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .._validation import check_points, check_positive_int, check_random_state
from ..exceptions import InvalidParameterError

__all__ = ["inflate", "inflate_streaming", "coordinate_noise_scale"]


def coordinate_noise_scale(points: np.ndarray, *, fraction: float = 0.1) -> np.ndarray:
    """Per-coordinate noise standard deviation used by the inflation procedure.

    The paper uses ``fraction = 0.1`` of each coordinate's (max - min) range.
    Coordinates with zero range get zero noise, so constant features stay
    constant in the inflated data.
    """
    pts = check_points(points)
    if not 0.0 < fraction <= 1.0:
        raise InvalidParameterError("fraction must lie in (0, 1]")
    return fraction * (pts.max(axis=0) - pts.min(axis=0))


def inflate(
    points,
    factor: float,
    *,
    noise_fraction: float = 0.1,
    random_state=None,
) -> np.ndarray:
    """Return a dataset ``factor`` times larger than ``points``.

    Each synthetic point is a uniformly sampled original point perturbed by
    independent Gaussian noise with the per-coordinate scale of
    :func:`coordinate_noise_scale`. With ``factor == 1`` the original data
    is returned unchanged (as a copy).

    Parameters
    ----------
    points:
        Original dataset, shape ``(n, d)``.
    factor:
        Multiplicative size factor ``h >= 1``; the result has
        ``round(h * n)`` points (the original points are included first).
    noise_fraction:
        Fraction of the coordinate range used as noise scale.
    random_state:
        Seed or generator.
    """
    original = check_points(points)
    if factor < 1.0:
        raise InvalidParameterError("factor must be >= 1")
    rng = check_random_state(random_state)

    n = original.shape[0]
    target = int(round(factor * n))
    extra = target - n
    if extra <= 0:
        return np.array(original)

    scale = coordinate_noise_scale(original, fraction=noise_fraction)
    sampled = original[rng.integers(0, n, size=extra)]
    noise = rng.normal(0.0, 1.0, size=sampled.shape) * scale
    return np.vstack([original, sampled + noise])


def inflate_streaming(
    points,
    factor: float,
    *,
    noise_fraction: float = 0.1,
    batch_size: int = 8192,
    random_state=None,
) -> Iterator[np.ndarray]:
    """Yield the inflated dataset in batches, without materialising it.

    The first batches replay the original points; subsequent batches are
    synthetic perturbations, exactly as in :func:`inflate`. Useful for the
    streaming scalability benchmarks where the inflated instance would not
    fit in memory.
    """
    original = check_points(points)
    if factor < 1.0:
        raise InvalidParameterError("factor must be >= 1")
    batch_size = check_positive_int(batch_size, name="batch_size")
    rng = check_random_state(random_state)

    n = original.shape[0]
    target = int(round(factor * n))
    for start in range(0, n, batch_size):
        yield np.array(original[start : start + batch_size])

    remaining = target - n
    if remaining <= 0:
        return
    scale = coordinate_noise_scale(original, fraction=noise_fraction)
    while remaining > 0:
        size = min(batch_size, remaining)
        sampled = original[rng.integers(0, n, size=size)]
        noise = rng.normal(0.0, 1.0, size=sampled.shape) * scale
        yield sampled + noise
        remaining -= size
