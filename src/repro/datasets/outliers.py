"""Outlier injection following the paper's procedure (Section 5.2).

The paper plants ``z`` artificial outliers by (1) computing the radius
``r_MEB`` and center ``c_MEB`` of the dataset's minimum enclosing ball and
(2) adding ``z`` points at distance ``100 * r_MEB`` from ``c_MEB`` in
random directions, verifying that every planted point is far (>= 99 r_MEB)
from the data and that planted points are mutually far apart
(>= 10 r_MEB). We reproduce that construction and return both the
augmented dataset and the indices of the planted outliers so experiments
can verify recovery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import (
    check_non_negative_int,
    check_points,
    check_random_state,
)
from ..exceptions import InvalidParameterError
from ..metricspace.meb import minimum_enclosing_ball

__all__ = ["OutlierInjection", "inject_outliers"]


@dataclass(frozen=True)
class OutlierInjection:
    """Result of :func:`inject_outliers`.

    Attributes
    ----------
    points:
        The augmented ``(n + z, d)`` point matrix (outliers appended, then
        optionally shuffled).
    outlier_indices:
        Indices (into ``points``) of the planted outliers.
    meb_center, meb_radius:
        The enclosing ball used for planting, for reference.
    """

    points: np.ndarray
    outlier_indices: np.ndarray
    meb_center: np.ndarray
    meb_radius: float

    @property
    def n_outliers(self) -> int:
        """Number of planted outliers."""
        return int(self.outlier_indices.shape[0])

    def outlier_mask(self) -> np.ndarray:
        """Boolean mask over ``points`` that is true exactly on planted outliers."""
        mask = np.zeros(self.points.shape[0], dtype=bool)
        mask[self.outlier_indices] = True
        return mask


def _random_directions(n: int, dimension: int, rng: np.random.Generator) -> np.ndarray:
    """``n`` unit vectors drawn uniformly from the ``dimension``-sphere."""
    vectors = rng.normal(size=(n, dimension))
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    # Degenerate all-zero draws are astronomically unlikely; resample defensively.
    while np.any(norms == 0.0):  # pragma: no cover - probability ~0
        bad = norms[:, 0] == 0.0
        vectors[bad] = rng.normal(size=(int(bad.sum()), dimension))
        norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    return vectors / norms


def inject_outliers(
    points,
    n_outliers: int,
    *,
    distance_factor: float = 100.0,
    min_separation_factor: float = 10.0,
    shuffle: bool = True,
    max_attempts: int = 200,
    random_state=None,
) -> OutlierInjection:
    """Plant ``n_outliers`` far-away points, mimicking the paper's setup.

    Parameters
    ----------
    points:
        Original dataset, shape ``(n, d)``.
    n_outliers:
        Number of outliers ``z`` to add.
    distance_factor:
        Planted points are placed at ``distance_factor * r_MEB`` from the
        MEB center (the paper uses 100).
    min_separation_factor:
        Minimum pairwise distance between planted points, as a multiple of
        ``r_MEB`` (the paper verifies 10). Rejection sampling enforces it.
    shuffle:
        Shuffle the augmented dataset so outliers are not trivially at the
        tail (the paper shuffles before streaming).
    max_attempts:
        Maximum rejection-sampling rounds before giving up.
    random_state:
        Seed or generator.

    Returns
    -------
    OutlierInjection
        Augmented points plus bookkeeping.

    Raises
    ------
    InvalidParameterError
        If the separation constraint cannot be met (e.g. asking for far
        more outliers than a sphere of the given radius can host) within
        ``max_attempts`` rounds.
    """
    original = check_points(points)
    n_outliers = check_non_negative_int(n_outliers, name="n_outliers")
    if distance_factor <= 1.0:
        raise InvalidParameterError("distance_factor must exceed 1")
    if min_separation_factor < 0.0:
        raise InvalidParameterError("min_separation_factor must be non-negative")
    rng = check_random_state(random_state)

    if n_outliers == 0:
        return OutlierInjection(
            points=np.array(original),
            outlier_indices=np.empty(0, dtype=np.intp),
            meb_center=original.mean(axis=0),
            meb_radius=0.0,
        )

    ball = minimum_enclosing_ball(original)
    radius = ball.radius if ball.radius > 0 else 1.0
    target_distance = distance_factor * radius
    min_separation = min_separation_factor * radius

    dimension = original.shape[1]
    accepted: list[np.ndarray] = []
    for _ in range(max_attempts):
        needed = n_outliers - len(accepted)
        if needed == 0:
            break
        candidates = ball.center + target_distance * _random_directions(needed, dimension, rng)
        for candidate in candidates:
            if accepted:
                existing = np.vstack(accepted)
                separation = np.linalg.norm(existing - candidate, axis=1).min()
                if separation < min_separation:
                    continue
            accepted.append(candidate)
            if len(accepted) == n_outliers:
                break
    if len(accepted) < n_outliers:
        raise InvalidParameterError(
            "could not place the requested number of mutually separated outliers; "
            "reduce n_outliers or min_separation_factor"
        )

    outliers = np.vstack(accepted)
    augmented = np.vstack([original, outliers])
    outlier_indices = np.arange(original.shape[0], augmented.shape[0], dtype=np.intp)

    if shuffle:
        permutation = rng.permutation(augmented.shape[0])
        augmented = augmented[permutation]
        inverse = np.empty_like(permutation)
        inverse[permutation] = np.arange(permutation.shape[0])
        outlier_indices = np.sort(inverse[outlier_indices])

    return OutlierInjection(
        points=augmented,
        outlier_indices=outlier_indices,
        meb_center=ball.center,
        meb_radius=radius,
    )
