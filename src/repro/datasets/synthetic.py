"""Synthetic dataset generators.

All generators return plain ``(n, d)`` NumPy arrays so they can be fed
either to :class:`repro.metricspace.Dataset` or directly to the streaming
sources. Every generator accepts a ``random_state`` for reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import (
    check_non_negative_int,
    check_positive_int,
    check_random_state,
)
from ..exceptions import InvalidParameterError

__all__ = [
    "GaussianMixtureSpec",
    "gaussian_mixture",
    "uniform_hypercube",
    "clustered_with_noise",
    "points_on_manifold",
    "annulus",
]


@dataclass(frozen=True)
class GaussianMixtureSpec:
    """Specification of an isotropic Gaussian mixture.

    Attributes
    ----------
    n_clusters:
        Number of mixture components.
    dimension:
        Ambient dimensionality of the generated points.
    cluster_std:
        Standard deviation of each component.
    box_size:
        Component means are drawn uniformly from ``[0, box_size]^d``.
    weights:
        Optional mixing proportions (defaults to uniform).
    """

    n_clusters: int
    dimension: int
    cluster_std: float = 1.0
    box_size: float = 100.0
    weights: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        check_positive_int(self.n_clusters, name="n_clusters")
        check_positive_int(self.dimension, name="dimension")
        if self.cluster_std <= 0:
            raise InvalidParameterError("cluster_std must be positive")
        if self.box_size <= 0:
            raise InvalidParameterError("box_size must be positive")
        if self.weights is not None:
            weights = np.asarray(self.weights, dtype=np.float64)
            if weights.shape != (self.n_clusters,) or np.any(weights <= 0):
                raise InvalidParameterError(
                    "weights must be positive and have one entry per cluster"
                )
            object.__setattr__(self, "weights", tuple(weights / weights.sum()))


def gaussian_mixture(
    n_points: int,
    spec: GaussianMixtureSpec,
    *,
    random_state=None,
    return_labels: bool = False,
):
    """Sample ``n_points`` from the Gaussian mixture described by ``spec``.

    Parameters
    ----------
    n_points:
        Number of points to generate.
    spec:
        Mixture specification.
    random_state:
        Seed or generator.
    return_labels:
        When true, also return the array of component labels.

    Returns
    -------
    numpy.ndarray or (numpy.ndarray, numpy.ndarray)
        The points, and optionally the per-point component labels.
    """
    n_points = check_positive_int(n_points, name="n_points")
    rng = check_random_state(random_state)

    centers = rng.uniform(0.0, spec.box_size, size=(spec.n_clusters, spec.dimension))
    probabilities = (
        np.full(spec.n_clusters, 1.0 / spec.n_clusters)
        if spec.weights is None
        else np.asarray(spec.weights)
    )
    labels = rng.choice(spec.n_clusters, size=n_points, p=probabilities)
    noise = rng.normal(0.0, spec.cluster_std, size=(n_points, spec.dimension))
    points = centers[labels] + noise
    if return_labels:
        return points, labels
    return points


def uniform_hypercube(
    n_points: int,
    dimension: int,
    *,
    side: float = 1.0,
    random_state=None,
) -> np.ndarray:
    """Points drawn uniformly at random from ``[0, side]^dimension``."""
    n_points = check_positive_int(n_points, name="n_points")
    dimension = check_positive_int(dimension, name="dimension")
    if side <= 0:
        raise InvalidParameterError("side must be positive")
    rng = check_random_state(random_state)
    return rng.uniform(0.0, side, size=(n_points, dimension))


def clustered_with_noise(
    n_points: int,
    n_clusters: int,
    dimension: int,
    *,
    noise_fraction: float = 0.05,
    cluster_std: float = 1.0,
    box_size: float = 100.0,
    random_state=None,
) -> np.ndarray:
    """A Gaussian mixture with a fraction of uniform background noise.

    This mimics the "clustered structure plus scattered noise" regime that
    motivates the outlier formulation: most points lie in ``n_clusters``
    tight clusters, while a ``noise_fraction`` of them are spread uniformly
    over the bounding box and act as natural outliers.
    """
    n_points = check_positive_int(n_points, name="n_points")
    if not 0.0 <= noise_fraction < 1.0:
        raise InvalidParameterError("noise_fraction must lie in [0, 1)")
    rng = check_random_state(random_state)
    n_noise = int(round(n_points * noise_fraction))
    n_clustered = n_points - n_noise
    spec = GaussianMixtureSpec(
        n_clusters=n_clusters,
        dimension=dimension,
        cluster_std=cluster_std,
        box_size=box_size,
    )
    parts = []
    if n_clustered > 0:
        parts.append(gaussian_mixture(n_clustered, spec, random_state=rng))
    if n_noise > 0:
        parts.append(rng.uniform(-box_size * 0.5, box_size * 1.5, size=(n_noise, dimension)))
    points = np.vstack(parts)
    rng.shuffle(points)
    return points


def points_on_manifold(
    n_points: int,
    intrinsic_dimension: int,
    ambient_dimension: int,
    *,
    noise_std: float = 0.01,
    random_state=None,
) -> np.ndarray:
    """Points near a random linear manifold of low intrinsic dimension.

    Useful for exercising the doubling-dimension-sensitive behaviour of the
    algorithms: the ambient dimension can be large while the intrinsic
    (doubling) dimension stays small, which is exactly the regime in which
    the paper's coresets stay small.
    """
    n_points = check_positive_int(n_points, name="n_points")
    intrinsic_dimension = check_positive_int(intrinsic_dimension, name="intrinsic_dimension")
    ambient_dimension = check_positive_int(ambient_dimension, name="ambient_dimension")
    if intrinsic_dimension > ambient_dimension:
        raise InvalidParameterError(
            "intrinsic_dimension must not exceed ambient_dimension"
        )
    if noise_std < 0:
        raise InvalidParameterError("noise_std must be non-negative")
    rng = check_random_state(random_state)
    basis = rng.normal(size=(intrinsic_dimension, ambient_dimension))
    basis /= np.linalg.norm(basis, axis=1, keepdims=True)
    coords = rng.uniform(-10.0, 10.0, size=(n_points, intrinsic_dimension))
    points = coords @ basis
    if noise_std > 0:
        points = points + rng.normal(0.0, noise_std, size=points.shape)
    return points


def annulus(
    n_points: int,
    *,
    inner_radius: float = 5.0,
    outer_radius: float = 10.0,
    n_planted_outliers: int = 0,
    outlier_distance: float = 100.0,
    random_state=None,
) -> np.ndarray:
    """Two-dimensional annulus, optionally with planted far-away outliers.

    A handy adversarial shape for k-center: the optimal centers lie inside
    the ring, and planted outliers dominate the radius unless the outlier
    formulation is used.
    """
    n_points = check_positive_int(n_points, name="n_points")
    n_planted_outliers = check_non_negative_int(n_planted_outliers, name="n_planted_outliers")
    if not 0 < inner_radius < outer_radius:
        raise InvalidParameterError("require 0 < inner_radius < outer_radius")
    rng = check_random_state(random_state)
    angles = rng.uniform(0.0, 2.0 * np.pi, size=n_points)
    radii = np.sqrt(rng.uniform(inner_radius**2, outer_radius**2, size=n_points))
    points = np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])
    if n_planted_outliers > 0:
        out_angles = rng.uniform(0.0, 2.0 * np.pi, size=n_planted_outliers)
        outliers = outlier_distance * np.column_stack(
            [np.cos(out_angles), np.sin(out_angles)]
        )
        points = np.vstack([points, outliers])
        rng.shuffle(points)
    return points
