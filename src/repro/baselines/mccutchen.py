"""Streaming baselines modelled after McCutchen and Khuller [27].

The paper's streaming experiments (Figures 3 and 5) compare against:

* **BASESTREAM** — the ``(2 + eps)``-approximation streaming algorithm for
  k-center of [27], which runs a number ``m`` of parallel instances, each
  holding at most ``k`` centers for a different radius guess drawn from a
  geometric grid; finer grids (larger ``m``) give better approximations at
  ``m * k`` space.
* **BASEOUTLIERS** — the ``(4 + eps)``-approximation streaming algorithm
  for k-center with ``z`` outliers of [27], which likewise runs ``m``
  parallel instances, each using ``O(k * z)`` working memory (a set of at
  most ``k`` centers plus a buffer of uncovered points).

The re-implementations below follow the *algorithmic ideas* of [27]
(parallel radius guesses, per-instance center budget, buffered uncovered
points with periodic consolidation for the outlier version) rather than
the exact pseudo-code, which the original paper states for a slightly
different streaming model. They reproduce the qualitative behaviour the
VLDB paper reports: solution quality comparable to (k-center) or worse
than (outliers) the coreset algorithms, with space ``m*k`` / ``m*k*z`` and
noticeably lower throughput for the outlier version.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_non_negative_int, check_positive_int
from ..exceptions import InvalidParameterError, NotFittedError
from ..metricspace.distance import Metric, get_metric
from ..streaming.runner import StreamingAlgorithm

__all__ = [
    "BaseStreamSolution",
    "BaseStreamKCenter",
    "BaseOutliersSolution",
    "BaseStreamOutliers",
]


# --------------------------------------------------------------------------------------
# BASESTREAM: k-center without outliers
# --------------------------------------------------------------------------------------


@dataclass(frozen=True)
class BaseStreamSolution:
    """Final answer of :class:`BaseStreamKCenter`.

    Attributes
    ----------
    centers:
        ``(<=k, d)`` coordinates of the selected centers.
    guess:
        The radius guess of the winning instance.
    instance_index:
        Which of the ``m`` parallel instances produced the answer.
    n_processed:
        Number of stream points consumed.
    """

    centers: np.ndarray
    guess: float
    instance_index: int
    n_processed: int


class _GuessInstance:
    """One parallel instance of the guess-based streaming k-center algorithm."""

    def __init__(self, k: int, metric, initial_guess: float) -> None:
        self._k = k
        self._metric = metric
        self.guess = float(initial_guess)
        self._centers: list[np.ndarray] = []
        self.restarts = 0
        #: Largest center count ever held (k + 1 transiently on escalation).
        self.peak_size = 0

    @property
    def centers(self) -> np.ndarray:
        return np.vstack(self._centers) if self._centers else np.empty((0, 0))

    @property
    def size(self) -> int:
        return len(self._centers)

    def _covered(self, point: np.ndarray) -> bool:
        if not self._centers:
            return False
        distances = self._metric.point_to_points(point, np.vstack(self._centers))
        return bool(distances.min() <= 2.0 * self.guess)

    def _remerge(self) -> None:
        """Greedily keep a subset of centers with mutual distance > 2 * guess."""
        if len(self._centers) <= 1:
            return
        points = np.vstack(self._centers)
        kept: list[int] = []
        for index in range(points.shape[0]):
            if not kept:
                kept.append(index)
                continue
            distances = self._metric.point_to_points(points[index], points[kept])
            if distances.min() > 2.0 * self.guess:
                kept.append(index)
        self._centers = [points[i] for i in kept]

    def process(self, point: np.ndarray) -> None:
        if self._covered(point):
            return
        self._centers.append(np.array(point))
        self.peak_size = max(self.peak_size, len(self._centers))
        while len(self._centers) > self._k:
            # The guess was too small: k+1 centers pairwise > 2*guess apart
            # certify that the optimum exceeds guess. Double and re-merge.
            self.guess *= 2.0
            self.restarts += 1
            self._remerge()

    def process_batch(self, batch: np.ndarray) -> None:
        """Chunked version of :meth:`process`; equivalent to a row-by-row loop."""
        position = 0
        n = batch.shape[0]
        while position < n:
            if not self._centers:
                self._centers.append(np.array(batch[position]))
                self.peak_size = max(self.peak_size, 1)
                position += 1
                continue
            position = self._sweep(batch, position)

    def _sweep(self, batch: np.ndarray, start: int) -> int:
        """Process ``batch[start:]`` until exhausted or the guess escalates."""
        tail = batch[start:]
        dmin, _ = self._metric.nearest(tail, np.vstack(self._centers))
        pos = 0
        m = tail.shape[0]
        while pos < m:
            uncovered = np.flatnonzero(dmin[pos:] > 2.0 * self.guess)
            if uncovered.size == 0:
                return start + m
            first = pos + int(uncovered[0])
            self._centers.append(np.array(tail[first]))
            self.peak_size = max(self.peak_size, len(self._centers))
            pos = first + 1
            if len(self._centers) > self._k:
                while len(self._centers) > self._k:
                    self.guess *= 2.0
                    self.restarts += 1
                    self._remerge()
                # The center set and guess changed: cached distances are
                # stale, so the caller restarts the sweep on the rest.
                return start + pos
            if pos < m:
                to_new = self._metric.cdist(tail[pos:], tail[first].reshape(1, -1))[:, 0]
                np.minimum(dmin[pos:], to_new, out=dmin[pos:])
        return start + m


class BaseStreamKCenter(StreamingAlgorithm):
    """BASESTREAM: guess-parallel streaming k-center modelled after [27].

    Parameters
    ----------
    k:
        Number of centers.
    n_instances:
        Number of parallel guess instances ``m`` (the space knob of
        Figure 3: total space is roughly ``m * k`` stored points).
    metric:
        Metric name or instance.
    """

    def __init__(
        self,
        k: int,
        *,
        n_instances: int = 4,
        metric: str | Metric = "euclidean",
    ) -> None:
        self.k = check_positive_int(k, name="k")
        self.n_instances = check_positive_int(n_instances, name="n_instances")
        self.metric = get_metric(metric)
        self._buffer: list[np.ndarray] = []
        self._instances: list[_GuessInstance] = []
        self._n_processed = 0

    def _initialize(self) -> None:
        points = np.vstack(self._buffer)
        pairwise = self.metric.pairwise(points)
        upper = pairwise[np.triu_indices(points.shape[0], k=1)]
        positive = upper[upper > 0]
        base = float(positive.min()) / 2.0 if positive.size else 1.0
        # Stagger the m instances across one factor-2 octave so that, jointly,
        # they realise a geometric grid of ratio 2^(1/m).
        for index in range(self.n_instances):
            guess = base * (2.0 ** (index / self.n_instances))
            instance = _GuessInstance(self.k, self.metric, guess)
            for point in self._buffer:
                instance.process(point)
            self._instances.append(instance)
        self._buffer = []

    def process(self, point: np.ndarray) -> None:
        """Feed one stream point to every parallel instance."""
        point = np.asarray(point, dtype=np.float64).reshape(-1)
        self._n_processed += 1
        if not self._instances:
            self._buffer.append(np.array(point))
            if len(self._buffer) == self.k + 1:
                self._initialize()
            return
        for instance in self._instances:
            instance.process(point)

    def process_batch(self, batch: np.ndarray) -> None:
        """Feed a chunk of stream points to every parallel instance."""
        batch = np.atleast_2d(np.asarray(batch, dtype=np.float64))
        self._n_processed += batch.shape[0]
        position = 0
        while position < batch.shape[0] and not self._instances:
            self._buffer.append(np.array(batch[position]))
            position += 1
            if len(self._buffer) == self.k + 1:
                self._initialize()
        if position < batch.shape[0]:
            tail = batch[position:]
            for instance in self._instances:
                instance.process_batch(tail)

    @property
    def working_memory_size(self) -> int:
        """Stored points across the buffer and every instance."""
        return len(self._buffer) + sum(instance.size for instance in self._instances)

    @property
    def peak_working_memory_size(self) -> int:
        """Provisioned peak: the initial buffer or the per-instance peaks summed.

        Summing per-instance peaks slightly over-approximates the largest
        instantaneous total (instances need not peak simultaneously), but
        it is the space each instance must be provisioned for, is exact
        per instance, and — unlike harness sampling — does not depend on
        the batch size the stream was driven with.
        """
        if not self._instances:
            return len(self._buffer)
        return max(
            self.k + 1,
            sum(instance.peak_size for instance in self._instances),
        )

    def finalize(self) -> BaseStreamSolution:
        """Return the centers of the instance with the smallest surviving guess."""
        if not self._instances:
            if not self._buffer:
                raise NotFittedError("no points have been processed yet")
            centers = np.vstack(self._buffer)
            return BaseStreamSolution(
                centers=centers, guess=0.0, instance_index=0, n_processed=self._n_processed
            )
        best_index = int(
            np.argmin([instance.guess for instance in self._instances])
        )
        best = self._instances[best_index]
        return BaseStreamSolution(
            centers=best.centers,
            guess=best.guess,
            instance_index=best_index,
            n_processed=self._n_processed,
        )


# --------------------------------------------------------------------------------------
# BASEOUTLIERS: k-center with z outliers
# --------------------------------------------------------------------------------------


@dataclass(frozen=True)
class BaseOutliersSolution:
    """Final answer of :class:`BaseStreamOutliers`.

    Attributes
    ----------
    centers:
        ``(<=k, d)`` coordinates of the selected centers.
    guess:
        The radius guess of the winning instance.
    n_uncovered:
        Number of buffered points the winning instance left uncovered
        (its candidate outliers).
    instance_index:
        Which parallel instance produced the answer.
    n_processed:
        Number of stream points consumed.
    """

    centers: np.ndarray
    guess: float
    n_uncovered: int
    instance_index: int
    n_processed: int


class _OutlierGuessInstance:
    """One parallel instance of the buffered streaming outlier algorithm."""

    def __init__(self, k: int, z: int, metric, initial_guess: float, buffer_capacity: int) -> None:
        self._k = k
        self._z = z
        self._metric = metric
        self.guess = float(initial_guess)
        self._centers: list[np.ndarray] = []
        self._free: list[np.ndarray] = []
        self._capacity = buffer_capacity
        self.restarts = 0
        #: Largest centers + free-buffer total ever held.
        self.peak_size = 0

    def _note_memory(self) -> None:
        self.peak_size = max(self.peak_size, self.size)

    @property
    def size(self) -> int:
        return len(self._centers) + len(self._free)

    @property
    def centers(self) -> np.ndarray:
        return np.vstack(self._centers) if self._centers else np.empty((0, 0))

    @property
    def n_uncovered(self) -> int:
        return len(self._free)

    def _covered_by_centers(self, point: np.ndarray) -> bool:
        if not self._centers:
            return False
        distances = self._metric.point_to_points(point, np.vstack(self._centers))
        return bool(distances.min() <= 4.0 * self.guess)

    def _consolidate(self) -> None:
        """Open new centers from dense regions of the free buffer.

        While fewer than ``k`` centers are open and some free point has at
        least ``z + 1`` free points within ``2 * guess`` of it, that point
        becomes a center and every free point within ``4 * guess`` of it is
        dropped from the buffer (it is now covered).
        """
        while len(self._centers) < self._k and self._free:
            free_points = np.vstack(self._free)
            pairwise = self._metric.pairwise(free_points)
            ball_sizes = (pairwise <= 2.0 * self.guess).sum(axis=1)
            candidate = int(np.argmax(ball_sizes))
            if ball_sizes[candidate] < self._z + 1:
                break
            center = free_points[candidate]
            self._centers.append(np.array(center))
            self._note_memory()
            keep_mask = self._metric.point_to_points(center, free_points) > 4.0 * self.guess
            self._free = [free_points[i] for i in np.flatnonzero(keep_mask)]

    def _escalate(self) -> None:
        """The guess was too small: double it, re-merge centers, re-filter the buffer."""
        self.guess *= 2.0
        self.restarts += 1
        if len(self._centers) > 1:
            points = np.vstack(self._centers)
            kept: list[int] = []
            for index in range(points.shape[0]):
                if not kept:
                    kept.append(index)
                    continue
                distances = self._metric.point_to_points(points[index], points[kept])
                if distances.min() > 4.0 * self.guess:
                    kept.append(index)
            self._centers = [points[i] for i in kept]
        if self._free and self._centers:
            free_points = np.vstack(self._free)
            centers = np.vstack(self._centers)
            covered = self._metric.cdist(free_points, centers).min(axis=1) <= 4.0 * self.guess
            self._free = [free_points[i] for i in np.flatnonzero(~covered)]

    def process(self, point: np.ndarray) -> None:
        if self._covered_by_centers(point):
            return
        self._free.append(np.array(point))
        self._note_memory()
        if len(self._free) <= self._capacity:
            return
        self._consolidate()
        while len(self._free) > self._capacity:
            self._escalate()
            self._consolidate()

    def process_batch(self, batch: np.ndarray) -> None:
        """Chunked version of :meth:`process`; equivalent to a row-by-row loop.

        Coverage against the current centers is computed for the whole
        tail at once; uncovered points are appended to the free buffer in
        bulk up to the overflow trigger, at which point consolidation (and
        possibly escalation) runs and — since centers and guess may have
        changed — the remaining tail is reswept.
        """
        position = 0
        n = batch.shape[0]
        while position < n:
            tail = batch[position:]
            if self._centers:
                dmin, _ = self._metric.nearest(tail, np.vstack(self._centers))
                uncovered = np.flatnonzero(dmin > 4.0 * self.guess)
            else:
                uncovered = np.arange(tail.shape[0])
            # The (room)-th uncovered append pushes the buffer past capacity
            # and triggers consolidation, exactly as in the per-point path.
            room = self._capacity + 1 - len(self._free)
            if uncovered.size < room:
                self._free.extend(np.array(tail[i]) for i in uncovered)
                self._note_memory()
                return
            taken = uncovered[:room]
            self._free.extend(np.array(tail[i]) for i in taken)
            self._note_memory()
            position += int(taken[-1]) + 1
            self._consolidate()
            while len(self._free) > self._capacity:
                self._escalate()
                self._consolidate()


class BaseStreamOutliers(StreamingAlgorithm):
    """BASEOUTLIERS: buffered guess-parallel streaming k-center with outliers.

    Parameters
    ----------
    k, z:
        Number of centers and outlier budget.
    n_instances:
        Number of parallel guess instances ``m`` (the space knob of
        Figure 5: total space is roughly ``m * k * z`` stored points).
    buffer_capacity:
        Per-instance buffer size for uncovered points; defaults to
        ``k * z`` as in [27] (plus the ``z`` slots needed to hold the true
        outliers).
    metric:
        Metric name or instance.
    """

    def __init__(
        self,
        k: int,
        z: int,
        *,
        n_instances: int = 1,
        buffer_capacity: int | None = None,
        metric: str | Metric = "euclidean",
    ) -> None:
        self.k = check_positive_int(k, name="k")
        self.z = check_non_negative_int(z, name="z")
        self.n_instances = check_positive_int(n_instances, name="n_instances")
        if buffer_capacity is None:
            buffer_capacity = self.k * max(self.z, 1) + self.z
        self.buffer_capacity = check_positive_int(buffer_capacity, name="buffer_capacity")
        if self.buffer_capacity < self.z + 1:
            raise InvalidParameterError("buffer_capacity must exceed z")
        self.metric = get_metric(metric)
        self._buffer: list[np.ndarray] = []
        self._instances: list[_OutlierGuessInstance] = []
        self._n_processed = 0

    def _initialize(self) -> None:
        points = np.vstack(self._buffer)
        pairwise = self.metric.pairwise(points)
        upper = pairwise[np.triu_indices(points.shape[0], k=1)]
        positive = upper[upper > 0]
        base = float(positive.min()) / 2.0 if positive.size else 1.0
        for index in range(self.n_instances):
            guess = base * (2.0 ** (index / self.n_instances))
            instance = _OutlierGuessInstance(
                self.k, self.z, self.metric, guess, self.buffer_capacity
            )
            for point in self._buffer:
                instance.process(point)
            self._instances.append(instance)
        self._buffer = []

    def process(self, point: np.ndarray) -> None:
        """Feed one stream point to every parallel instance."""
        point = np.asarray(point, dtype=np.float64).reshape(-1)
        self._n_processed += 1
        if not self._instances:
            self._buffer.append(np.array(point))
            if len(self._buffer) == self.k + self.z + 1:
                self._initialize()
            return
        for instance in self._instances:
            instance.process(point)

    def process_batch(self, batch: np.ndarray) -> None:
        """Feed a chunk of stream points to every parallel instance."""
        batch = np.atleast_2d(np.asarray(batch, dtype=np.float64))
        self._n_processed += batch.shape[0]
        position = 0
        while position < batch.shape[0] and not self._instances:
            self._buffer.append(np.array(batch[position]))
            position += 1
            if len(self._buffer) == self.k + self.z + 1:
                self._initialize()
        if position < batch.shape[0]:
            tail = batch[position:]
            for instance in self._instances:
                instance.process_batch(tail)

    @property
    def working_memory_size(self) -> int:
        """Stored points across the buffer and every instance."""
        return len(self._buffer) + sum(instance.size for instance in self._instances)

    @property
    def peak_working_memory_size(self) -> int:
        """Provisioned peak: the initial buffer or the per-instance peaks summed.

        Same convention as :attr:`BaseStreamKCenter.peak_working_memory_size`:
        exact per instance and independent of the drive path's batch size.
        """
        if not self._instances:
            return len(self._buffer)
        return max(
            self.k + self.z + 1,
            sum(instance.peak_size for instance in self._instances),
        )

    def finalize(self) -> BaseOutliersSolution:
        """Pick the instance with the smallest guess whose uncovered buffer fits in ``z``.

        If no instance satisfies the budget (which can happen when the
        buffer capacity is tight), the instance leaving the fewest
        uncovered points wins; its leftover buffer points are treated as
        extra centers up to the budget ``k`` before being declared outliers.
        """
        if not self._instances:
            if not self._buffer:
                raise NotFittedError("no points have been processed yet")
            centers = np.vstack(self._buffer[: self.k])
            return BaseOutliersSolution(
                centers=centers,
                guess=0.0,
                n_uncovered=max(0, len(self._buffer) - self.k),
                instance_index=0,
                n_processed=self._n_processed,
            )

        feasible = [
            (instance.guess, index)
            for index, instance in enumerate(self._instances)
            if instance.n_uncovered <= self.z and instance.size > 0
        ]
        if feasible:
            _, best_index = min(feasible)
        else:
            best_index = int(
                np.argmin([instance.n_uncovered for instance in self._instances])
            )
        best = self._instances[best_index]
        # Force consolidation so dense leftover regions become centers.
        best._consolidate()
        centers = best.centers
        if centers.size == 0 and best._free:
            centers = np.vstack(best._free[: self.k])
        return BaseOutliersSolution(
            centers=centers,
            guess=best.guess,
            n_uncovered=best.n_uncovered,
            instance_index=best_index,
            n_processed=self._n_processed,
        )
