"""CHARIKARETAL: the sequential 3-approximation for k-center with outliers [16].

Charikar, Khuller, Mount and Narasimhan's algorithm is the state-of-the-art
sequential baseline the paper compares against in Figure 8. As the paper
observes, it "amounts to O(log |S|) executions of OUTLIERSCLUSTER with
eps_hat = 0 and unit weights on the entire input S": for a guessed radius
``r`` the greedy repeatedly picks the point whose ``r``-ball covers the
most uncovered points and discards everything within ``3r``; the smallest
guess that leaves at most ``z`` points uncovered gives a 3-approximation.

We implement it exactly that way, reusing
:class:`~repro.core.outliers_cluster.OutliersClusterSolver` with unit
weights and ``eps_hat = 0`` over the whole dataset. Its running time is
``O(k |S|^2 log |S|)`` and it stores the full pairwise distance matrix, so
it is only practical for samples of a few thousand points — which is
precisely why the paper's Figure 8 runs it on 10 000-point samples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .._validation import (
    check_non_negative_int,
    check_points,
    check_positive_int,
)
from ..exceptions import InvalidParameterError
from ..core.assignment import assign_to_centers
from ..core.outliers_cluster import OutliersClusterSolver
from ..core.radius_search import search_radius
from ..metricspace.distance import Metric, get_metric
from ..metricspace.points import WeightedPoints

__all__ = ["CharikarResult", "CharikarKCenterOutliers"]


@dataclass(frozen=True)
class CharikarResult:
    """Result of the Charikar et al. baseline.

    Attributes
    ----------
    centers:
        ``(<=k, d)`` coordinates of the selected centers.
    center_indices:
        Indices of the centers in the input dataset.
    radius:
        Radius after discarding the ``z`` farthest points.
    radius_all_points:
        Plain radius including outliers.
    outlier_indices:
        Indices of the ``z`` points left farthest from the centers.
    estimated_radius:
        The radius guess accepted by the search.
    search_probes:
        Number of greedy executions performed by the search.
    elapsed_time:
        Wall-clock seconds of the whole run.
    """

    centers: np.ndarray
    center_indices: np.ndarray
    radius: float
    radius_all_points: float
    outlier_indices: np.ndarray
    estimated_radius: float
    search_probes: int
    elapsed_time: float

    @property
    def k(self) -> int:
        """Number of returned centers."""
        return int(self.centers.shape[0])


class CharikarKCenterOutliers:
    """Sequential 3-approximation for k-center with z outliers (baseline of [16]).

    Parameters
    ----------
    k, z:
        Number of centers and outlier budget.
    metric:
        Metric name or instance.
    max_points:
        Safety limit on the input size: the algorithm materialises the full
        pairwise distance matrix (``O(n^2)`` memory), so runs on more than
        this many points are refused with a clear error instead of
        exhausting memory. Raise it explicitly for bigger machines.
    """

    def __init__(
        self,
        k: int,
        z: int,
        *,
        metric: str | Metric = "euclidean",
        max_points: int = 20_000,
    ) -> None:
        self.k = check_positive_int(k, name="k")
        self.z = check_non_negative_int(z, name="z")
        self.metric = get_metric(metric)
        self.max_points = check_positive_int(max_points, name="max_points")

    def fit(self, points) -> CharikarResult:
        """Run the baseline on ``points`` and return the solution."""
        pts = check_points(points)
        n = pts.shape[0]
        if n > self.max_points:
            raise InvalidParameterError(
                f"CharikarKCenterOutliers stores an O(n^2) distance matrix; "
                f"refusing to run on {n} > max_points={self.max_points} points"
            )
        if self.k > n:
            raise InvalidParameterError(f"k={self.k} exceeds the dataset size {n}")
        if self.z >= n:
            raise InvalidParameterError(f"z={self.z} must be smaller than the dataset size {n}")

        start = time.perf_counter()
        unit_weighted = WeightedPoints(
            points=pts,
            weights=np.ones(n),
            origin_indices=np.arange(n, dtype=np.intp),
        )
        solver = OutliersClusterSolver(unit_weighted, self.k, eps_hat=0.0, metric=self.metric)
        search = search_radius(solver, self.z)
        elapsed = time.perf_counter() - start

        positions = search.solution.center_indices
        centers = pts[positions]
        clustering = assign_to_centers(pts, centers, self.metric)
        return CharikarResult(
            centers=centers,
            center_indices=positions,
            radius=clustering.radius_excluding(self.z),
            radius_all_points=clustering.radius,
            outlier_indices=clustering.outlier_indices(self.z),
            estimated_radius=search.radius,
            search_probes=search.probes,
            elapsed_time=elapsed,
        )
