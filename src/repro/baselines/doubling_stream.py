"""The doubling algorithm of Charikar et al. [15] as a streaming k-center baseline.

Charikar, Chekuri, Feder and Motwani's *doubling algorithm* maintains at
most ``k`` centers and a lower bound ``phi`` on the optimal radius,
guaranteeing that every processed point is within ``8 * phi`` of a center
— an 8-approximation using ``Theta(k)`` working memory. The VLDB paper
adapts a *weighted* variant of this algorithm as its streaming coreset
construction (Section 4); this module exposes the plain (unweighted,
``tau = k``) version as a stand-alone baseline, reusing the shared
:class:`~repro.core.doubling_coreset.StreamingCoreset` machinery so the
baseline and the coreset construction are exercised by the same code.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_positive_int
from ..metricspace.distance import Metric, get_metric
from ..streaming.runner import StreamingAlgorithm
from ..core.doubling_coreset import StreamingCoreset

__all__ = ["DoublingStreamSolution", "DoublingStreamKCenter"]


@dataclass(frozen=True)
class DoublingStreamSolution:
    """Final answer of :class:`DoublingStreamKCenter`.

    Attributes
    ----------
    centers:
        ``(<=k, d)`` coordinates of the maintained centers.
    radius_bound:
        ``8 * phi``: the algorithm's certified upper bound on the distance
        from any stream point to its closest center.
    lower_bound:
        ``phi``: the certified lower bound on the optimal k-center radius.
    n_processed:
        Number of stream points consumed.
    """

    centers: np.ndarray
    radius_bound: float
    lower_bound: float
    n_processed: int


class DoublingStreamKCenter(StreamingAlgorithm):
    """The 8-approximation streaming k-center algorithm of [15].

    Parameters
    ----------
    k:
        Number of centers (and the working-memory budget, up to the one
        extra buffered point of the initialisation phase).
    metric:
        Metric name or instance.
    """

    def __init__(self, k: int, *, metric: str | Metric = "euclidean") -> None:
        self.k = check_positive_int(k, name="k")
        self.metric = get_metric(metric)
        self._coreset = StreamingCoreset(self.k, metric=self.metric)

    def process(self, point: np.ndarray) -> None:
        """Feed one stream point into the doubling algorithm."""
        self._coreset.process(point)

    def process_batch(self, batch: np.ndarray) -> None:
        """Feed a chunk of stream points through the vectorized update rule."""
        self._coreset.process_batch(batch)

    @property
    def working_memory_size(self) -> int:
        """Stored points (at most ``k + 1``)."""
        return self._coreset.working_memory_size

    @property
    def peak_working_memory_size(self) -> int:
        """Exact peak tracked by the coreset, drive-path independent."""
        return self._coreset.peak_working_memory_size

    def finalize(self) -> DoublingStreamSolution:
        """Return the maintained centers and the certified radius bounds."""
        coreset = self._coreset.coreset()
        centers = coreset.points
        if centers.shape[0] > self.k:
            centers = centers[: self.k]
        return DoublingStreamSolution(
            centers=np.array(centers),
            radius_bound=8.0 * self._coreset.phi,
            lower_bound=self._coreset.phi,
            n_processed=self._coreset.n_processed,
        )
