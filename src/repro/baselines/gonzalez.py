"""Gonzalez's sequential 2-approximation as an explicit baseline entry point.

The GMM traversal lives in :mod:`repro.core.gmm` because it is the
building block of every coreset in the package; this module simply
re-exports it under the baseline namespace so that experiment code can
refer to all comparison algorithms uniformly (``repro.baselines.*``).
"""

from __future__ import annotations

from ..core.gmm import GMMResult, gmm_select
from ..metricspace.distance import Metric

__all__ = ["gonzalez_kcenter"]


def gonzalez_kcenter(
    points,
    k: int,
    metric: str | Metric = "euclidean",
    *,
    random_state=None,
) -> GMMResult:
    """Run Gonzalez's farthest-first traversal and return its result.

    Parameters
    ----------
    points:
        ``(n, d)`` input points.
    k:
        Number of centers.
    metric:
        Metric name or instance.
    random_state:
        Seed for the arbitrary first-center choice (``None`` = index 0).
    """
    return gmm_select(points, k, metric, random_state=random_state)
