"""Baseline algorithms the paper compares against.

* :class:`CharikarKCenterOutliers` — sequential 3-approximation with outliers [16].
* :class:`MalkomesKCenter` / :class:`MalkomesKCenterOutliers` — MapReduce baselines [26].
* :class:`BaseStreamKCenter` / :class:`BaseStreamOutliers` — streaming baselines modelled after [27].
* :class:`DoublingStreamKCenter` — the 8-approximation streaming algorithm [15].
* :func:`gonzalez_kcenter` — Gonzalez's sequential 2-approximation [20].
"""

from .charikar import CharikarKCenterOutliers, CharikarResult
from .doubling_stream import DoublingStreamKCenter, DoublingStreamSolution
from .gonzalez import gonzalez_kcenter
from .malkomes import MalkomesKCenter, MalkomesKCenterOutliers
from .mccutchen import (
    BaseOutliersSolution,
    BaseStreamKCenter,
    BaseStreamOutliers,
    BaseStreamSolution,
)

__all__ = [
    "BaseOutliersSolution",
    "BaseStreamKCenter",
    "BaseStreamOutliers",
    "BaseStreamSolution",
    "CharikarKCenterOutliers",
    "CharikarResult",
    "DoublingStreamKCenter",
    "DoublingStreamSolution",
    "MalkomesKCenter",
    "MalkomesKCenterOutliers",
    "gonzalez_kcenter",
]
