"""MALKOMESETAL: the MapReduce baselines of Malkomes et al. [26].

Malkomes et al.'s 2-round MapReduce algorithms are exactly the paper's
algorithms with the minimum coreset size: each partition contributes
``k`` centers (4-approximation, no outliers) or ``k + z`` weighted
centers (13-approximation, with outliers). The paper's Figures 2, 4 and 8
treat the ``mu = 1`` configuration as this baseline, so the classes below
are thin wrappers over :class:`~repro.core.mr_kcenter.MapReduceKCenter`
and :class:`~repro.core.mr_outliers.MapReduceKCenterOutliers` with the
multiplier pinned to 1 — keeping the comparison honest (identical code
paths, only the coreset size differs).
"""

from __future__ import annotations

from ..core.mr_kcenter import MapReduceKCenter, MRKCenterResult
from ..core.mr_outliers import MapReduceKCenterOutliers, MROutliersResult
from ..metricspace.distance import Metric

__all__ = ["MalkomesKCenter", "MalkomesKCenterOutliers"]


class MalkomesKCenter(MapReduceKCenter):
    """2-round MapReduce k-center of [26]: coresets of exactly ``k`` points each.

    Parameters are those of :class:`~repro.core.mr_kcenter.MapReduceKCenter`
    minus the coreset-size knobs, which are fixed to ``mu = 1``.
    """

    def __init__(
        self,
        k: int,
        *,
        ell: int = 4,
        partitioning: str = "contiguous",
        metric: str | Metric = "euclidean",
        random_state=None,
        local_memory_limit: int | None = None,
    ) -> None:
        super().__init__(
            k,
            ell=ell,
            coreset_multiplier=1.0,
            partitioning=partitioning,
            metric=metric,
            random_state=random_state,
            local_memory_limit=local_memory_limit,
        )

    def fit(self, points) -> MRKCenterResult:  # noqa: D102 - inherited behaviour
        return super().fit(points)


class MalkomesKCenterOutliers(MapReduceKCenterOutliers):
    """2-round MapReduce k-center with outliers of [26]: coresets of ``k + z`` points.

    Parameters are those of
    :class:`~repro.core.mr_outliers.MapReduceKCenterOutliers` minus the
    coreset-size knobs (fixed to ``mu = 1``) and the randomization flag
    (the original algorithm is deterministic).
    """

    def __init__(
        self,
        k: int,
        z: int,
        *,
        ell: int = 4,
        partitioning: str = "contiguous",
        adversarial_indices=None,
        eps_hat: float | None = None,
        metric: str | Metric = "euclidean",
        random_state=None,
        local_memory_limit: int | None = None,
    ) -> None:
        super().__init__(
            k,
            z,
            ell=ell,
            coreset_multiplier=1.0,
            randomized=False,
            eps_hat=eps_hat,
            partitioning=partitioning,
            adversarial_indices=adversarial_indices,
            metric=metric,
            random_state=random_state,
            local_memory_limit=local_memory_limit,
        )

    def fit(self, points) -> MROutliersResult:  # noqa: D102 - inherited behaviour
        return super().fit(points)
