"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends raised by
NumPy or the standard library) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidParameterError(ReproError, ValueError):
    """An algorithm or data-structure parameter is out of its valid range.

    Examples include ``k <= 0``, ``epsilon`` outside ``(0, 1]``, or a
    number of outliers ``z`` that is negative or not smaller than the
    dataset size.
    """


class DatasetError(ReproError, ValueError):
    """A dataset is malformed (wrong shape, empty, NaN values, ...)."""


class EmptyStreamError(DatasetError):
    """A point stream delivered no points to an algorithm that needs at least one.

    An empty stream is a legitimate *source* (``GeneratorStream`` accepts
    ``length_hint=0``), but the solvers cannot produce a solution from
    it. This error is raised deterministically at the entry points
    (``fit_stream``, :meth:`repro.streaming.runner.StreamingRunner.run`)
    instead of surfacing as a confusing failure from deep inside
    ``finalize``.
    """


class MemoryBudgetExceededError(ReproError, RuntimeError):
    """A simulated worker exceeded its configured local-memory budget.

    Raised by :class:`repro.mapreduce.runtime.MapReduceRuntime` and by the
    streaming runner when strict memory accounting is enabled and a reducer
    (or the streaming working set) grows beyond the declared budget.
    """


class StreamingProtocolError(ReproError, RuntimeError):
    """A streaming algorithm violated the streaming access discipline.

    For instance, asking for a second pass from a single-pass source, or
    attempting random access to the underlying data.
    """


class RadiusSearchError(ReproError, RuntimeError):
    """The radius search failed to converge within its probe budget.

    Raised by :func:`repro.core.radius_search.search_radius` when either
    geometric loop (the upward doubling fallback or the downward
    ``(1 + delta)`` refinement) exhausts ``max_geometric_steps`` without
    establishing its invariant. Before this exception existed the search
    silently returned the last radius probed — a feasible value, but one
    without the documented ``(1 + delta)`` tolerance on ``r_min``.
    """


class ClusterError(ReproError, RuntimeError):
    """Base class for failures of the distributed (multi-host) backend."""


class WorkerUnavailableError(ClusterError):
    """No worker is left to run a reduce task.

    Raised by :class:`repro.mapreduce.cluster.DistributedBackend` when
    every configured worker has failed (unreachable at connect, or a
    transport error mid-job) and tasks remain unassigned. The message
    lists the last failure observed per worker.
    """


class WorkerTaskError(ClusterError):
    """A reducer raised an exception while running on a remote worker.

    Unlike a transport failure, an application error is deterministic —
    the same reducer would raise on any worker — so the backend does not
    retry it; the remote traceback travels back in the message.
    """


class NotFittedError(ReproError, RuntimeError):
    """A model/solver was queried for results before being run."""
