"""Command-line interface for the repro package.

Two groups of subcommands are provided:

* ``solve`` — run one of the solvers on a synthetic dataset (or one of
  the paper-dataset stand-ins) and print the solution summary; handy for
  quick experimentation without writing a script.
* ``figure2`` … ``figure8`` and ``ablation-*`` — regenerate one of the
  paper's experiments at a configurable scale and print its result table.
* ``worker`` — run a distributed MapReduce worker daemon that the
  ``mr-*`` solvers can target with ``--backend distributed --workers
  HOST:PORT[,HOST:PORT...]`` (see :mod:`repro.mapreduce.cluster`).

Examples
--------
::

    python -m repro solve mr-outliers --dataset power --n-points 5000 \
        --k 20 --z 100 --ell 8 --mu 4 --randomized
    python -m repro figure2 --n-points 2000
    python -m repro figure8 --sample-size 1500
    python -m repro worker --listen 127.0.0.1:7071  # then, elsewhere:
    python -m repro solve mr-kcenter --backend distributed \
        --workers 127.0.0.1:7071,127.0.0.1:7072
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from .core import (
    CoresetStreamKCenter,
    CoresetStreamOutliers,
    MapReduceKCenter,
    MapReduceKCenterOutliers,
    SequentialKCenter,
    SequentialKCenterOutliers,
)
from .datasets import inject_outliers, load_paper_dataset, stream_paper_dataset
from .exceptions import InvalidParameterError
from .mapreduce import available_backends, available_storage_tiers
from .streaming import ArrayStream, GeneratorStream, StreamingRunner
from .evaluation import (
    ablation_coreset_stopping,
    ablation_partitioning,
    default_datasets,
    figure2_mr_kcenter,
    figure3_stream_kcenter,
    figure4_mr_outliers,
    figure5_stream_outliers,
    figure6_scaling_size,
    figure7_scaling_processors,
    figure8_sequential,
    format_records,
)

__all__ = ["main", "build_parser"]


def _add_common_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n-points", type=int, default=2000, help="points per dataset stand-in")
    parser.add_argument("--seed", type=int, default=0, help="master random seed")


def _add_batch_size_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--batch-size", type=int, default=1024,
        help="streaming chunk size for the batched engine (0 = per-point path)",
    )


def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", choices=available_backends(), default=None,
        help="executor backend for the MapReduce runtime (default: serial)",
    )
    parser.add_argument(
        "--workers", default=None,
        help="worker count for the threads/processes backends (default: one "
             "per CPU), or the comma-separated HOST:PORT daemon addresses "
             "for --backend distributed (start daemons with 'repro worker')",
    )


def _resolve_execution(args: argparse.Namespace) -> tuple[int | None, list[str] | None]:
    """Split ``--workers`` into a pool size or distributed daemon addresses."""
    spec = getattr(args, "workers", None)
    backend = getattr(args, "backend", None)
    if backend == "distributed":
        if not spec:
            raise InvalidParameterError(
                "--backend distributed requires --workers HOST:PORT[,HOST:PORT...]"
            )
        return None, [part.strip() for part in str(spec).split(",") if part.strip()]
    if spec is None:
        return None, None
    try:
        return int(spec), None
    except ValueError:
        raise InvalidParameterError(
            f"--workers must be an integer count for backend "
            f"{backend or 'serial'}; got {spec!r} (worker addresses "
            f"require --backend distributed)"
        ) from None


def _add_stream_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--from-stream", action="store_true",
        help="drive the solver out of core: generate the dataset chunk by chunk "
             "and route it through the streamed shuffle (fit_stream) so the "
             "coordinator never holds the full point matrix",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=4096,
        help="rows per shuffle chunk in --from-stream mode (the coordinator's "
             "transient working set)",
    )
    parser.add_argument(
        "--storage", choices=available_storage_tiers(), default="auto",
        help="partition-storage tier for the streamed shuffle: memory/shared/disk, "
             "or auto (spills to disk when --memory-budget-mb is exceeded)",
    )
    parser.add_argument(
        "--spill-dir", default=None,
        help="directory for disk-tier spill files (default: a run-owned "
             "temporary directory, removed afterwards)",
    )
    parser.add_argument(
        "--memory-budget-mb", type=float, default=None,
        help="in-memory partition budget (MiB) consulted by --storage auto; "
             "streams whose partitions would exceed it spill to disk",
    )


def _batch_size_or_none(value: int) -> int | None:
    """CLI convention: ``--batch-size 0`` selects the per-point path."""
    return None if value == 0 else value


def _solve(args: argparse.Namespace) -> int:
    if getattr(args, "from_stream", False) and args.command in ("mr-kcenter", "mr-outliers"):
        return _solve_from_stream(args)
    points = load_paper_dataset(args.dataset, args.n_points, random_state=args.seed)
    if args.command in ("mr-outliers", "sequential-outliers", "stream-outliers"):
        injected = inject_outliers(points, args.z, random_state=args.seed + 1)
        points = injected.points

    if args.command in ("stream-kcenter", "stream-outliers"):
        if args.command == "stream-kcenter":
            algorithm = CoresetStreamKCenter(
                args.k, coreset_multiplier=args.mu, random_state=args.seed
            )
            label = "CoresetStreamKCenter"
        else:
            algorithm = CoresetStreamOutliers(args.k, args.z, coreset_multiplier=args.mu)
            label = "CoresetStreamOutliers"
        runner = StreamingRunner(batch_size=_batch_size_or_none(args.batch_size))
        report = runner.run(
            algorithm, ArrayStream(points, shuffle=True, random_state=args.seed)
        )
        rows = [{
            "algorithm": label,
            "batch_size": args.batch_size or "per-point",
            "coreset_size": report.result.coreset_size,
            "peak_memory": report.peak_memory,
            "throughput_pts_per_s": report.throughput,
        }]
        if args.command == "stream-outliers":
            rows[0]["estimated_radius"] = report.result.estimated_radius
        else:
            rows[0]["coreset_radius_bound"] = report.result.coreset_radius_bound
        print(format_records(rows))
        return 0

    max_workers, worker_addresses = _resolve_execution(args)
    if args.command == "mr-kcenter":
        solver = MapReduceKCenter(
            args.k, ell=args.ell, coreset_multiplier=args.mu, random_state=args.seed,
            backend=args.backend, max_workers=max_workers, workers=worker_addresses,
        )
        result = solver.fit(points)
        rows = [{
            "algorithm": "MapReduceKCenter",
            "backend": args.backend or "serial",
            "radius": result.radius,
            "coreset_size": result.coreset_size,
            "peak_local_memory": result.stats.peak_local_memory,
        }]
    elif args.command == "mr-outliers":
        solver = MapReduceKCenterOutliers(
            args.k, args.z, ell=args.ell, coreset_multiplier=args.mu,
            randomized=args.randomized, include_log_term=False, random_state=args.seed,
            backend=args.backend, max_workers=max_workers, workers=worker_addresses,
        )
        result = solver.fit(points)
        rows = [{
            "algorithm": "MapReduceKCenterOutliers" + (" (randomized)" if args.randomized else ""),
            "backend": args.backend or "serial",
            "radius": result.radius,
            "radius_all_points": result.radius_all_points,
            "coreset_size": result.coreset_size,
            "peak_local_memory": result.stats.peak_local_memory,
        }]
    elif args.command == "sequential-kcenter":
        result = SequentialKCenter(args.k, random_state=args.seed).fit(points)
        rows = [{
            "algorithm": "SequentialKCenter (GMM)",
            "radius": result.radius,
            "time_s": result.elapsed_time,
        }]
    else:  # sequential-outliers
        result = SequentialKCenterOutliers(
            args.k, args.z, coreset_multiplier=args.mu, random_state=args.seed
        ).fit(points)
        rows = [{
            "algorithm": "SequentialKCenterOutliers",
            "radius": result.radius,
            "radius_all_points": result.radius_all_points,
            "coreset_size": result.coreset_size,
            "time_s": result.elapsed_time,
        }]

    print(format_records(rows))
    return 0


def _chunks_with_planted_outliers(args):
    """Chunked dataset generation with the paper's outlier planting, out of core.

    Mirrors the in-memory CLI path (which runs ``inject_outliers`` on the
    full matrix) at chunk granularity: the ``z`` planted points are spread
    proportionally over the chunks and each batch is injected relative to
    its own enclosing ball, so no stage ever materialises the full
    dataset. The planted scale tracks each chunk's extent rather than the
    global MEB — the same far-away-outlier regime, chunk by chunk.
    """
    n, z = args.n_points, args.z
    planted = 0
    seen = 0
    chunks = stream_paper_dataset(
        args.dataset, n, chunk_size=args.chunk_size, random_state=args.seed
    )
    for index, chunk in enumerate(chunks):
        seen += chunk.shape[0]
        take = round(z * seen / n) - planted
        if take > 0:
            injected = inject_outliers(chunk, take, random_state=args.seed + 1 + index)
            planted += take
            yield injected.points
        else:
            yield chunk


def _solve_from_stream(args: argparse.Namespace) -> int:
    """Out-of-core solve: chunked dataset generation into the streamed shuffle."""
    if args.command == "mr-outliers":
        # Same problem instance as the in-memory path: z planted outliers
        # ride along with the stream (chunk-wise injection).
        chunks = _chunks_with_planted_outliers(args)
        stream = GeneratorStream(chunks, length_hint=args.n_points + args.z)
    else:
        chunks = stream_paper_dataset(
            args.dataset, args.n_points, chunk_size=args.chunk_size,
            random_state=args.seed,
        )
        stream = GeneratorStream(chunks, length_hint=args.n_points)
    storage_kwargs = dict(
        storage=args.storage,
        spill_dir=args.spill_dir,
        # Converted as-is: a budget that is zero or negative is rejected by
        # the runtime's own validation rather than silently clamped.
        memory_budget_bytes=(
            None if args.memory_budget_mb is None
            else int(args.memory_budget_mb * 1024 * 1024)
        ),
    )
    max_workers, worker_addresses = _resolve_execution(args)
    if args.command == "mr-kcenter":
        solver = MapReduceKCenter(
            args.k, ell=args.ell, coreset_multiplier=args.mu, random_state=args.seed,
            backend=args.backend, max_workers=max_workers, workers=worker_addresses,
        )
        result = solver.fit_stream(stream, chunk_size=args.chunk_size, **storage_kwargs)
        row = {"algorithm": "MapReduceKCenter (streamed)"}
    else:
        solver = MapReduceKCenterOutliers(
            args.k, args.z, ell=args.ell, coreset_multiplier=args.mu,
            randomized=args.randomized, include_log_term=False, random_state=args.seed,
            backend=args.backend, max_workers=max_workers, workers=worker_addresses,
        )
        result = solver.fit_stream(stream, chunk_size=args.chunk_size, **storage_kwargs)
        row = {"algorithm": "MapReduceKCenterOutliers (streamed)"}
    row.update({
        "backend": args.backend or "serial",
        "chunk_size": args.chunk_size,
        "storage": result.stats.storage_tier,
        "spilled_bytes": result.stats.spilled_bytes,
        "radius": result.radius,
        "coreset_size": result.coreset_size,
        "peak_local_memory": result.stats.peak_local_memory,
        "coordinator_peak": result.stats.coordinator_peak_items,
        "peak_working_memory": result.peak_working_memory_size,
    })
    print(format_records([row]))
    return 0


def _run_figure(args: argparse.Namespace) -> int:
    datasets = default_datasets(n_points=args.n_points, random_state=args.seed)
    figure = args.figure
    if figure == "figure2":
        records = figure2_mr_kcenter(datasets, random_state=args.seed)
    elif figure == "figure3":
        records = figure3_stream_kcenter(
            datasets, batch_size=_batch_size_or_none(args.batch_size),
            random_state=args.seed,
        )
    elif figure == "figure4":
        records = figure4_mr_outliers(datasets, k=args.k, z=args.z, random_state=args.seed)
    elif figure == "figure5":
        records = figure5_stream_outliers(
            datasets, k=args.k, z=args.z,
            batch_size=_batch_size_or_none(args.batch_size),
            random_state=args.seed,
        )
    elif figure == "figure6":
        records = figure6_scaling_size(datasets, k=args.k, z=args.z, random_state=args.seed)
    elif figure == "figure7":
        max_workers, worker_addresses = _resolve_execution(args)
        if worker_addresses is not None:
            raise InvalidParameterError(
                "figure7 sweeps the single-host backends; run the distributed "
                "backend through 'repro solve mr-kcenter --backend distributed'"
            )
        records = figure7_scaling_processors(
            datasets, k=args.k, z=args.z, backend=args.backend,
            max_workers=max_workers, random_state=args.seed,
        )
    elif figure == "figure8":
        records = figure8_sequential(
            datasets, k=args.k, z=args.z, sample_size=args.sample_size, random_state=args.seed
        )
    elif figure == "ablation-coreset":
        records = ablation_coreset_stopping(
            next(iter(datasets.values())), k=args.k, random_state=args.seed
        )
    else:  # ablation-partitioning
        records = ablation_partitioning(
            next(iter(datasets.values())), k=args.k, z=args.z, random_state=args.seed
        )
    print(format_records(records))
    return 0


def _worker(args: argparse.Namespace) -> int:
    """Run a distributed MapReduce worker daemon until interrupted."""
    from .mapreduce.worker import serve

    return serve(args.listen, spill_dir=args.spill_dir)


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Coreset-based k-center clustering (with outliers) in MapReduce and Streaming",
    )
    subparsers = parser.add_subparsers(dest="group", required=True)

    solve = subparsers.add_parser("solve", help="run one solver on a dataset stand-in")
    solve_sub = solve.add_subparsers(dest="command", required=True)
    for name in (
        "mr-kcenter", "mr-outliers", "sequential-kcenter", "sequential-outliers",
        "stream-kcenter", "stream-outliers",
    ):
        sub = solve_sub.add_parser(name)
        sub.add_argument("--dataset", choices=("higgs", "power", "wiki"), default="higgs")
        sub.add_argument("--k", type=int, default=20)
        sub.add_argument("--z", type=int, default=100)
        sub.add_argument("--ell", type=int, default=8)
        sub.add_argument("--mu", type=float, default=4.0)
        sub.add_argument("--randomized", action="store_true")
        _add_common_dataset_arguments(sub)
        if name.startswith("mr-"):
            _add_backend_arguments(sub)
            _add_stream_arguments(sub)
        if name.startswith("stream-"):
            _add_batch_size_argument(sub)
        sub.set_defaults(handler=_solve)

    worker = subparsers.add_parser(
        "worker",
        help="run a distributed MapReduce worker daemon (for --backend distributed)",
    )
    worker.add_argument(
        "--listen", default="127.0.0.1:0", metavar="HOST:PORT",
        help="address to listen on (port 0 picks a free port; the bound "
             "address is printed on startup)",
    )
    worker.add_argument(
        "--spill-dir", default=None,
        help="directory for spill files received from coordinators "
             "(default: a worker-owned temporary directory)",
    )
    worker.set_defaults(handler=_worker)

    figure_names = (
        "figure2", "figure3", "figure4", "figure5", "figure6", "figure7", "figure8",
        "ablation-coreset", "ablation-partitioning",
    )
    for name in figure_names:
        sub = subparsers.add_parser(name, help=f"regenerate the paper's {name}")
        sub.add_argument("--k", type=int, default=20)
        sub.add_argument("--z", type=int, default=100)
        sub.add_argument("--sample-size", type=int, default=1500)
        _add_common_dataset_arguments(sub)
        if name == "figure7":
            # The only figure driver with a backend knob so far; the other
            # figures reject the flags rather than silently ignoring them.
            _add_backend_arguments(sub)
        if name in ("figure3", "figure5"):
            _add_batch_size_argument(sub)
        sub.set_defaults(handler=_run_figure, figure=name)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler: Callable[[argparse.Namespace], int] = args.handler
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
