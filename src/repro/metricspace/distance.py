"""Distance functions over point matrices.

The algorithms in this package only ever need three primitives, all of
which are provided here in vectorised NumPy form:

* distance between one point and many points (:func:`point_to_points`),
* the full pairwise distance matrix of a small set (:func:`pairwise`),
* cross distances between two sets (:func:`cdist`).

For the batched streaming engine two blocked variants are provided on
:class:`Metric`: :meth:`Metric.cdist_blocked` computes the full cross
matrix in row blocks so the broadcast temporaries of the L1/L-inf
metrics stay bounded, and :meth:`Metric.nearest` reduces each block to
per-row ``(min distance, argmin index)`` without ever materialising the
full ``batch x centers`` product — the primitive the batched doubling
coreset is built on.

A :class:`Metric` bundles these primitives for a named metric so that the
algorithms can stay metric-agnostic. Euclidean, squared-free Manhattan
and Chebyshev metrics are provided; all three are true metrics (they
satisfy the triangle inequality), which the paper's analysis requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = [
    "DEFAULT_BLOCK_ELEMENTS",
    "Metric",
    "get_metric",
    "available_metrics",
    "euclidean",
    "manhattan",
    "chebyshev",
    "angular",
    "point_to_points",
    "pairwise",
    "cdist",
    "DistanceCounter",
]


def _diff(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Broadcast difference ``a[:, None, :] - b[None, :, :]`` as float64."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return a[:, None, :] - b[None, :, :]


def euclidean(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Euclidean (L2) cross-distance matrix between row sets ``a`` and ``b``."""
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    # ||x - y||^2 = ||x||^2 + ||y||^2 - 2 x.y  (clipped for numerical safety)
    aa = np.einsum("ij,ij->i", a, a)[:, None]
    bb = np.einsum("ij,ij->i", b, b)[None, :]
    sq = aa + bb - 2.0 * (a @ b.T)
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq)


def manhattan(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Manhattan (L1) cross-distance matrix between row sets ``a`` and ``b``."""
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    return np.abs(_diff(a, b)).sum(axis=2)


def chebyshev(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Chebyshev (L-infinity) cross-distance matrix between row sets ``a`` and ``b``."""
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    return np.abs(_diff(a, b)).max(axis=2)


def angular(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Angular distance (arc length on the unit sphere) between row sets.

    ``d(x, y) = arccos(<x, y> / (|x| |y|))`` in radians. Unlike the raw
    cosine *dissimilarity*, the angle satisfies the triangle inequality,
    so it is a proper metric and safe to use with every algorithm in this
    package. Zero vectors are treated as orthogonal to everything
    (distance ``pi/2``), which keeps the function total.

    This is the natural metric for the word2vec-style embeddings of the
    paper's Wiki dataset.
    """
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    norm_a = np.linalg.norm(a, axis=1, keepdims=True)
    norm_b = np.linalg.norm(b, axis=1, keepdims=True)
    safe_a = np.where(norm_a == 0.0, 1.0, norm_a)
    safe_b = np.where(norm_b == 0.0, 1.0, norm_b)
    cosine = (a / safe_a) @ (b / safe_b).T
    # Zero vectors have no direction: define them as orthogonal to everything.
    cosine = np.where((norm_a == 0.0) | (norm_b.T == 0.0), 0.0, cosine)
    np.clip(cosine, -1.0, 1.0, out=cosine)
    return np.arccos(cosine)


_CrossFn = Callable[[np.ndarray, np.ndarray], np.ndarray]

#: Cap (in float64 elements) on the broadcast temporaries of one blocked
#: cross-distance block: ``block_rows * n_cols * dim`` never exceeds this,
#: bounding peak memory at ~32 MB per temporary regardless of batch size.
DEFAULT_BLOCK_ELEMENTS = 4_194_304


def _rows_per_block(n_cols: int, dim: int, max_block_elements: int) -> int:
    """Rows of ``a`` per block so one block's temporaries stay under the cap."""
    if max_block_elements < 1:
        raise InvalidParameterError("max_block_elements must be positive")
    per_row = max(1, n_cols) * max(1, dim)
    return max(1, max_block_elements // per_row)


@dataclass(frozen=True)
class Metric:
    """A named metric with vectorised distance primitives.

    Attributes
    ----------
    name:
        Human-readable metric name (``"euclidean"``, ``"manhattan"``, ...).
    cross:
        Function computing the cross-distance matrix between two row sets.
    exactly_symmetric:
        Whether ``cross(points, points)`` is bitwise symmetric (true for the
        element-wise L1/L-inf metrics), letting :meth:`pairwise` skip the
        symmetrisation pass entirely.
    """

    name: str
    cross: _CrossFn = field(repr=False)
    exactly_symmetric: bool = False

    def point_to_points(self, point: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Distances from a single ``point`` to every row of ``points``."""
        point = np.asarray(point, dtype=np.float64).reshape(1, -1)
        return self.cross(point, points)[0]

    def point_to_points_blocked(
        self,
        point: np.ndarray,
        points: np.ndarray,
        *,
        max_block_elements: int = DEFAULT_BLOCK_ELEMENTS,
    ) -> np.ndarray:
        """Distances from ``point`` to every row of ``points``, in column blocks.

        Same values as :meth:`point_to_points`, but ``points`` is
        consumed in row blocks so the ``(1, m, d)`` broadcast temporaries
        of the L1/L-inf metrics never exceed ``max_block_elements``
        float64 values. This is the bounded-memory one-vs-many kernel the
        incremental GMM traversal runs per extension step; below the cap
        it degenerates to a single :meth:`point_to_points` call.
        """
        point = np.asarray(point, dtype=np.float64).reshape(1, -1)
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        m = points.shape[0]
        block = _rows_per_block(1, points.shape[1], max_block_elements)
        if m <= block:
            return self.cross(point, points)[0]
        out = np.empty(m, dtype=np.float64)
        for start in range(0, m, block):
            stop = min(start + block, m)
            out[start:stop] = self.cross(point, points[start:stop])[0]
        return out

    def pairwise(self, points: np.ndarray) -> np.ndarray:
        """Full symmetric pairwise distance matrix of ``points``."""
        matrix = self.cross(points, points)
        if not self.exactly_symmetric:
            # Symmetrize in place (guards against FP noise in BLAS-backed
            # metrics). NumPy's overlap detection buffers the transposed
            # view, so this peaks at one temporary matrix instead of the
            # two that `0.5 * (matrix + matrix.T)` would allocate.
            matrix += matrix.T
            matrix *= 0.5
        np.fill_diagonal(matrix, 0.0)
        return matrix

    def cdist(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Cross-distance matrix between row sets ``a`` and ``b``."""
        return self.cross(a, b)

    def cdist_blocked(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        max_block_elements: int = DEFAULT_BLOCK_ELEMENTS,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Cross-distance matrix computed in row blocks of ``a``.

        Produces the same ``(len(a), len(b))`` matrix as :meth:`cdist` but
        never lets one block's intermediate arrays exceed
        ``max_block_elements`` float64 values, which caps the ``(n, m, d)``
        broadcast temporaries of the L1/L-inf metrics for large-batch x
        large-coreset products. ``out`` may supply a preallocated result.
        """
        a = np.atleast_2d(np.asarray(a, dtype=np.float64))
        b = np.atleast_2d(np.asarray(b, dtype=np.float64))
        n, m = a.shape[0], b.shape[0]
        if out is None:
            out = np.empty((n, m), dtype=np.float64)
        elif out.shape != (n, m):
            raise InvalidParameterError(
                f"out has shape {out.shape}, expected {(n, m)}"
            )
        block = _rows_per_block(m, a.shape[1], max_block_elements)
        for start in range(0, n, block):
            stop = min(start + block, n)
            out[start:stop] = self.cross(a[start:stop], b)
        return out

    def nearest(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        max_block_elements: int = DEFAULT_BLOCK_ELEMENTS,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-row nearest neighbour of ``a`` among the rows of ``b``.

        Returns ``(distances, indices)`` where ``distances[i]`` is the
        smallest distance from ``a[i]`` to any row of ``b`` and
        ``indices[i]`` the (lowest) index attaining it. Computed block by
        block, so the full ``(len(a), len(b))`` matrix is never held in
        memory — this is the hot primitive of the batched streaming update
        rule.
        """
        a = np.atleast_2d(np.asarray(a, dtype=np.float64))
        b = np.atleast_2d(np.asarray(b, dtype=np.float64))
        n, m = a.shape[0], b.shape[0]
        if m == 0:
            raise InvalidParameterError("nearest() needs at least one candidate row")
        distances = np.empty(n, dtype=np.float64)
        indices = np.empty(n, dtype=np.intp)
        block = _rows_per_block(m, a.shape[1], max_block_elements)
        for start in range(0, n, block):
            stop = min(start + block, n)
            cross = self.cross(a[start:stop], b)
            argmin = cross.argmin(axis=1)
            indices[start:stop] = argmin
            distances[start:stop] = cross[np.arange(cross.shape[0]), argmin]
        return distances, indices

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        """Distance between two individual points."""
        a = np.asarray(a, dtype=np.float64).reshape(1, -1)
        b = np.asarray(b, dtype=np.float64).reshape(1, -1)
        return float(self.cross(a, b)[0, 0])


# The element-wise L1/L-inf metrics are bitwise symmetric by construction
# (|x - y| == |y - x| exactly in IEEE arithmetic and the coordinate
# reduction order is identical for both triangles); the BLAS-backed
# euclidean/angular metrics are not, so they keep the symmetrisation pass.
_METRICS: Dict[str, Metric] = {
    "euclidean": Metric("euclidean", euclidean),
    "manhattan": Metric("manhattan", manhattan, exactly_symmetric=True),
    "chebyshev": Metric("chebyshev", chebyshev, exactly_symmetric=True),
    "angular": Metric("angular", angular),
}


def available_metrics() -> tuple[str, ...]:
    """Names of the metrics registered with :func:`get_metric`."""
    return tuple(sorted(_METRICS))


def get_metric(metric: str | Metric = "euclidean") -> Metric:
    """Resolve ``metric`` into a :class:`Metric` instance.

    Accepts either an already-constructed :class:`Metric` (returned as is)
    or one of the registered metric names.
    """
    if isinstance(metric, Metric):
        return metric
    if not isinstance(metric, str):
        raise InvalidParameterError(
            f"metric must be a string or a Metric instance; got {metric!r}"
        )
    try:
        return _METRICS[metric.lower()]
    except KeyError:
        raise InvalidParameterError(
            f"unknown metric {metric!r}; available: {', '.join(available_metrics())}"
        ) from None


def point_to_points(
    point: np.ndarray, points: np.ndarray, metric: str | Metric = "euclidean"
) -> np.ndarray:
    """Distances from ``point`` to every row of ``points`` under ``metric``."""
    return get_metric(metric).point_to_points(point, points)


def pairwise(points: np.ndarray, metric: str | Metric = "euclidean") -> np.ndarray:
    """Full pairwise distance matrix of ``points`` under ``metric``."""
    return get_metric(metric).pairwise(points)


def cdist(
    a: np.ndarray, b: np.ndarray, metric: str | Metric = "euclidean"
) -> np.ndarray:
    """Cross-distance matrix between ``a`` and ``b`` under ``metric``."""
    return get_metric(metric).cdist(a, b)


class DistanceCounter:
    """A :class:`Metric` wrapper that counts individual distance evaluations.

    The paper reports running times on a Spark cluster; in this pure-Python
    reproduction we additionally report *work* as the number of point-to-
    point distance evaluations, which is a machine-independent proxy for
    running time. Wrap any metric with this class and pass it wherever a
    metric is expected.

    Examples
    --------
    >>> counter = DistanceCounter("euclidean")
    >>> _ = counter.metric.cdist([[0.0], [1.0]], [[2.0]])
    >>> counter.count
    2
    """

    def __init__(self, metric: str | Metric = "euclidean") -> None:
        base = get_metric(metric)
        self._count = 0

        def counted_cross(a: np.ndarray, b: np.ndarray) -> np.ndarray:
            result = base.cross(a, b)
            self._count += int(result.size)
            return result

        self.metric = Metric(
            name=f"counted-{base.name}",
            cross=counted_cross,
            exactly_symmetric=base.exactly_symmetric,
        )

    @property
    def count(self) -> int:
        """Number of point-to-point distance evaluations performed so far."""
        return self._count

    def reset(self) -> None:
        """Reset the evaluation counter to zero."""
        self._count = 0
