"""Doubling-dimension estimation.

The paper's space bounds are parameterised by the doubling dimension ``D``
of the input: the smallest ``D`` such that every ball of radius ``r`` can
be covered by at most ``2^D`` balls of radius ``r/2``. The MapReduce
algorithms never need ``D`` explicitly, but the 1-pass Streaming algorithm
does (through the coreset-size knob ``tau = (k+z) * (16/eps)^D``), and the
experiments benefit from knowing roughly how "clusterable" a dataset is.

Computing the exact doubling dimension is infeasible, so we provide two
practical estimators:

* :func:`doubling_dimension_estimate` — a sampling estimator that picks
  random balls and greedily covers them with half-radius balls; the
  estimate is ``log2`` of the largest cover size observed.
* :func:`correlation_dimension_estimate` — the classical correlation
  (fractal) dimension from the pair-count growth rate, a cheap proxy that
  tracks intrinsic dimensionality well on the synthetic datasets used in
  the benchmarks.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_points, check_positive_int, check_random_state
from .distance import Metric, get_metric

__all__ = [
    "doubling_dimension_estimate",
    "correlation_dimension_estimate",
    "greedy_cover_size",
]


def greedy_cover_size(
    points: np.ndarray,
    radius: float,
    metric: str | Metric = "euclidean",
) -> int:
    """Greedy number of balls of ``radius`` needed to cover ``points``.

    This is the standard farthest-point greedy cover: repeatedly pick an
    uncovered point as a new ball center until everything is covered. The
    result is within a factor of the optimal cover size and is monotone in
    the radius, which is all the estimators need.
    """
    pts = check_points(points)
    metric = get_metric(metric)
    n = pts.shape[0]
    uncovered = np.ones(n, dtype=bool)
    count = 0
    while uncovered.any():
        center_index = int(np.flatnonzero(uncovered)[0])
        distances = metric.point_to_points(pts[center_index], pts)
        uncovered &= distances > radius
        count += 1
    return count


def doubling_dimension_estimate(
    points,
    *,
    n_balls: int = 16,
    sample_size: int = 512,
    metric: str | Metric = "euclidean",
    random_state=None,
) -> float:
    """Estimate the doubling dimension by sampling balls and covering them.

    For ``n_balls`` random centers, the procedure takes the ball containing
    the sampled points within the median distance of the center, computes a
    greedy cover of that ball with balls of half the radius, and reports
    ``log2`` of the largest cover size seen. The result is a lower-bound
    flavoured estimate of ``D`` adequate for choosing streaming coreset
    sizes; it is *not* a certified bound.

    Parameters
    ----------
    points:
        Array-like of shape ``(n, d)``.
    n_balls:
        Number of sampled balls.
    sample_size:
        Points are subsampled to this size to keep the estimate cheap.
    metric, random_state:
        Metric and seed.
    """
    pts = check_points(points)
    n_balls = check_positive_int(n_balls, name="n_balls")
    sample_size = check_positive_int(sample_size, name="sample_size")
    rng = check_random_state(random_state)
    metric = get_metric(metric)

    if pts.shape[0] > sample_size:
        pts = pts[rng.choice(pts.shape[0], size=sample_size, replace=False)]

    worst = 1
    n = pts.shape[0]
    for _ in range(n_balls):
        center = pts[int(rng.integers(n))]
        distances = metric.point_to_points(center, pts)
        radius = float(np.median(distances))
        if radius <= 0.0:
            continue
        inside = pts[distances <= radius]
        if inside.shape[0] < 2:
            continue
        cover = greedy_cover_size(inside, radius / 2.0, metric=metric)
        worst = max(worst, cover)
    return float(np.log2(worst)) if worst > 1 else 0.0


def correlation_dimension_estimate(
    points,
    *,
    sample_size: int = 1024,
    metric: str | Metric = "euclidean",
    random_state=None,
) -> float:
    """Correlation (fractal) dimension estimated from pair-count growth.

    Counts the fraction ``C(r)`` of point pairs within distance ``r`` for a
    geometric grid of radii and fits the slope of ``log C(r)`` against
    ``log r``. For datasets sampled from a ``D``-dimensional manifold the
    slope approaches ``D``.
    """
    pts = check_points(points)
    rng = check_random_state(random_state)
    metric = get_metric(metric)
    if pts.shape[0] > sample_size:
        pts = pts[rng.choice(pts.shape[0], size=sample_size, replace=False)]

    distances = metric.pairwise(pts)
    upper = distances[np.triu_indices(distances.shape[0], k=1)]
    upper = upper[upper > 0]
    if upper.size == 0:
        return 0.0

    lo, hi = np.quantile(upper, [0.05, 0.75])
    if lo <= 0 or hi <= lo:
        return 0.0
    radii = np.geomspace(lo, hi, num=12)
    counts = np.array([(upper <= r).mean() for r in radii])
    mask = counts > 0
    if mask.sum() < 2:
        return 0.0
    slope, _ = np.polyfit(np.log(radii[mask]), np.log(counts[mask]), deg=1)
    return float(max(slope, 0.0))
