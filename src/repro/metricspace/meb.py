"""Approximate minimum enclosing ball (MEB).

The paper's outlier-injection procedure (Section 5.2) needs the radius
``r_MEB`` and center ``c_MEB`` of the dataset's minimum enclosing ball:
outliers are planted at distance ``100 * r_MEB`` from ``c_MEB``.

We provide two MEB computations:

* :func:`minimum_enclosing_ball` — the classical Bădoiu–Clarkson iterative
  (1+ε)-approximation, which works in any dimension and runs in
  ``O(n d / eps)`` time.
* :func:`bounding_box_ball` — the cheap center-of-bounding-box ball, a
  sqrt(d)-approximation that is adequate for outlier injection and is used
  as a fast fallback for very large instances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_epsilon, check_points
from .distance import Metric, get_metric

__all__ = ["Ball", "minimum_enclosing_ball", "bounding_box_ball"]


@dataclass(frozen=True)
class Ball:
    """A ball described by its ``center`` coordinates and ``radius``."""

    center: np.ndarray
    radius: float

    def contains(self, points: np.ndarray, metric: str | Metric = "euclidean", *, slack: float = 1e-9) -> np.ndarray:
        """Boolean mask of which ``points`` lie inside the ball (with ``slack`` tolerance)."""
        metric = get_metric(metric)
        distances = metric.point_to_points(self.center, check_points(points))
        return distances <= self.radius * (1.0 + slack) + slack


def minimum_enclosing_ball(
    points,
    *,
    epsilon: float = 0.01,
    max_iterations: int | None = None,
) -> Ball:
    """Bădoiu–Clarkson (1+ε)-approximate minimum enclosing ball.

    The algorithm starts from the centroid and repeatedly moves the current
    center a ``1/(i+1)`` fraction towards the farthest point. After
    ``ceil(1/eps^2)`` iterations the ball of radius equal to the farthest
    distance is a (1+ε)-approximation of the optimal MEB.

    Parameters
    ----------
    points:
        Array-like of shape ``(n, d)``.
    epsilon:
        Approximation precision in ``(0, 1]``.
    max_iterations:
        Optional hard cap on iterations (defaults to ``ceil(1/eps^2)``).

    Returns
    -------
    Ball
        The approximate MEB; its radius covers every input point.
    """
    pts = check_points(points)
    epsilon = check_epsilon(epsilon, name="epsilon")
    iterations = int(np.ceil(1.0 / epsilon**2))
    if max_iterations is not None:
        iterations = min(iterations, int(max_iterations))

    center = pts.mean(axis=0)
    for i in range(1, iterations + 1):
        deltas = pts - center
        sq_dists = np.einsum("ij,ij->i", deltas, deltas)
        farthest = int(np.argmax(sq_dists))
        center = center + (pts[farthest] - center) / (i + 1.0)

    deltas = pts - center
    radius = float(np.sqrt(np.einsum("ij,ij->i", deltas, deltas).max()))
    return Ball(center=center, radius=radius)


def bounding_box_ball(points) -> Ball:
    """Ball centered at the bounding-box center covering every point.

    A crude but very fast enclosing ball: at most ``sqrt(d)`` times larger
    than the optimal MEB in Euclidean space. Useful when only the order of
    magnitude of the enclosing radius matters (e.g. planting far outliers).
    """
    pts = check_points(points)
    lower = pts.min(axis=0)
    upper = pts.max(axis=0)
    center = 0.5 * (lower + upper)
    deltas = pts - center
    radius = float(np.sqrt(np.einsum("ij,ij->i", deltas, deltas).max()))
    return Ball(center=center, radius=radius)
