"""Dataset and weighted point-set abstractions.

The algorithms in :mod:`repro.core` are written against two light-weight
containers:

* :class:`Dataset` — an immutable view over a ``(n, d)`` matrix of points
  plus the metric used to compare them. Algorithms refer to points by
  integer index, which makes coresets, partitions and clusterings cheap
  index arrays instead of data copies.
* :class:`WeightedPoints` — a (small) set of points each carrying a
  positive weight, used to represent the weighted coresets of Sections
  3.2 and 4 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from .._validation import check_points, check_weights
from ..exceptions import InvalidParameterError
from .distance import Metric, get_metric

__all__ = ["Dataset", "WeightedPoints"]


class Dataset:
    """An immutable collection of points in a metric space.

    Parameters
    ----------
    points:
        Array-like of shape ``(n, d)``. A 1-d array is treated as ``n``
        one-dimensional points.
    metric:
        Either a metric name (``"euclidean"``, ``"manhattan"``,
        ``"chebyshev"``) or a :class:`~repro.metricspace.distance.Metric`.

    Examples
    --------
    >>> data = Dataset([[0.0, 0.0], [3.0, 4.0]])
    >>> len(data)
    2
    >>> float(data.distance(0, 1))
    5.0
    """

    def __init__(self, points, metric: str | Metric = "euclidean") -> None:
        self._points = check_points(points)
        self._points.setflags(write=False)
        self._metric = get_metric(metric)

    # -- basic container protocol -------------------------------------------------

    def __len__(self) -> int:
        return int(self._points.shape[0])

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self._points)

    def __getitem__(self, index) -> np.ndarray:
        return self._points[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dataset(n={len(self)}, dim={self.dimension}, "
            f"metric={self._metric.name!r})"
        )

    # -- properties ----------------------------------------------------------------

    @property
    def points(self) -> np.ndarray:
        """The underlying read-only ``(n, d)`` point matrix."""
        return self._points

    @property
    def dimension(self) -> int:
        """Number of coordinates per point."""
        return int(self._points.shape[1])

    @property
    def metric(self) -> Metric:
        """The metric used for all distance computations on this dataset."""
        return self._metric

    # -- distance helpers -----------------------------------------------------------

    def distance(self, i: int, j: int) -> float:
        """Distance between the points at indices ``i`` and ``j``."""
        return self._metric.distance(self._points[i], self._points[j])

    def distances_from(self, index: int, candidates: Sequence[int] | None = None) -> np.ndarray:
        """Distances from the point at ``index`` to ``candidates`` (default: all points)."""
        targets = self._points if candidates is None else self._points[np.asarray(candidates)]
        return self._metric.point_to_points(self._points[index], targets)

    def distances_to_set(self, indices: Sequence[int]) -> np.ndarray:
        """Distance from every point of the dataset to its closest point in ``indices``.

        This is the vector ``d(s, T)`` for ``T`` given by ``indices``; its
        maximum is the radius ``r_T(S)`` used throughout the paper.
        """
        indices = np.asarray(indices, dtype=np.intp)
        if indices.size == 0:
            raise InvalidParameterError("indices must contain at least one point")
        cross = self._metric.cdist(self._points, self._points[indices])
        return cross.min(axis=1)

    def radius(self, indices: Sequence[int]) -> float:
        """Radius ``r_T(S)`` of the dataset w.r.t. the centers at ``indices``."""
        return float(self.distances_to_set(indices).max())

    def pairwise(self, indices: Sequence[int] | None = None) -> np.ndarray:
        """Pairwise distance matrix of the points at ``indices`` (default: all)."""
        pts = self._points if indices is None else self._points[np.asarray(indices, dtype=np.intp)]
        return self._metric.pairwise(pts)

    # -- restructuring --------------------------------------------------------------

    def subset(self, indices: Sequence[int]) -> "Dataset":
        """A new :class:`Dataset` containing only the points at ``indices``."""
        indices = np.asarray(indices, dtype=np.intp)
        return Dataset(self._points[indices], metric=self._metric)

    def take(self, indices: Sequence[int]) -> np.ndarray:
        """The raw coordinates of the points at ``indices`` (a copy)."""
        return np.array(self._points[np.asarray(indices, dtype=np.intp)])


@dataclass(frozen=True)
class WeightedPoints:
    """A small set of points with positive multiplicities (a weighted coreset).

    The MapReduce and Streaming algorithms for the outlier formulation work
    on weighted coresets: every coreset point ``t`` carries the number of
    input points whose *proxy* is ``t``. This container keeps the point
    coordinates and the weight vector together and offers the few
    operations the algorithms need.

    Attributes
    ----------
    points:
        ``(m, d)`` array of coreset point coordinates.
    weights:
        ``(m,)`` array of strictly positive weights.
    origin_indices:
        Optional ``(m,)`` array mapping each coreset point back to the
        index it had in the originating :class:`Dataset` (useful to report
        solutions in terms of the original data). ``None`` when the points
        were not drawn from an indexed dataset (e.g. streaming).
    """

    points: np.ndarray
    weights: np.ndarray
    origin_indices: np.ndarray | None = None

    def __post_init__(self) -> None:
        points = check_points(self.points, name="points")
        weights = check_weights(self.weights, points.shape[0])
        object.__setattr__(self, "points", points)
        object.__setattr__(self, "weights", weights)
        if self.origin_indices is not None:
            origin = np.asarray(self.origin_indices, dtype=np.intp)
            if origin.shape != (points.shape[0],):
                raise InvalidParameterError(
                    "origin_indices must have one entry per coreset point"
                )
            object.__setattr__(self, "origin_indices", origin)

    def __len__(self) -> int:
        return int(self.points.shape[0])

    @property
    def total_weight(self) -> float:
        """Sum of the weights (the number of represented input points)."""
        return float(self.weights.sum())

    @property
    def dimension(self) -> int:
        """Number of coordinates per point."""
        return int(self.points.shape[1])

    @staticmethod
    def concatenate(parts: Sequence["WeightedPoints"]) -> "WeightedPoints":
        """Union of several weighted coresets (the composable-coreset union).

        Origin indices are preserved only when *every* part carries them;
        otherwise the union has ``origin_indices=None``.
        """
        parts = list(parts)
        if not parts:
            raise InvalidParameterError("cannot concatenate an empty list of coresets")
        points = np.vstack([p.points for p in parts])
        weights = np.concatenate([p.weights for p in parts])
        if all(p.origin_indices is not None for p in parts):
            origin = np.concatenate([p.origin_indices for p in parts])
        else:
            origin = None
        return WeightedPoints(points=points, weights=weights, origin_indices=origin)

    def unit_weights(self) -> "WeightedPoints":
        """A copy of this coreset with all weights reset to one."""
        return WeightedPoints(
            points=np.array(self.points),
            weights=np.ones(len(self)),
            origin_indices=None if self.origin_indices is None else np.array(self.origin_indices),
        )

    @staticmethod
    def from_dataset(
        dataset: Dataset,
        indices: Sequence[int],
        weights: Sequence[float] | None = None,
    ) -> "WeightedPoints":
        """Build a weighted coreset from dataset ``indices`` (default weight 1 each)."""
        indices = np.asarray(indices, dtype=np.intp)
        if weights is None:
            weights = np.ones(indices.shape[0])
        return WeightedPoints(
            points=dataset.take(indices),
            weights=np.asarray(weights, dtype=np.float64),
            origin_indices=indices,
        )
