"""Metric-space substrate: points, metrics, enclosing balls, doubling dimension."""

from .distance import (
    DistanceCounter,
    Metric,
    angular,
    available_metrics,
    cdist,
    chebyshev,
    euclidean,
    get_metric,
    manhattan,
    pairwise,
    point_to_points,
)
from .doubling import (
    correlation_dimension_estimate,
    doubling_dimension_estimate,
    greedy_cover_size,
)
from .meb import Ball, bounding_box_ball, minimum_enclosing_ball
from .points import Dataset, WeightedPoints

__all__ = [
    "Ball",
    "Dataset",
    "DistanceCounter",
    "Metric",
    "WeightedPoints",
    "angular",
    "available_metrics",
    "bounding_box_ball",
    "cdist",
    "chebyshev",
    "correlation_dimension_estimate",
    "doubling_dimension_estimate",
    "euclidean",
    "get_metric",
    "greedy_cover_size",
    "manhattan",
    "minimum_enclosing_ball",
    "pairwise",
    "point_to_points",
]
