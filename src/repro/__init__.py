"""repro: coreset-based k-center clustering (with outliers) in MapReduce and Streaming.

A faithful re-implementation of

    Ceccarello, Pietracaprina, Pucci.
    "Solving k-center Clustering (with Outliers) in MapReduce and Streaming,
    almost as Accurately as Sequentially." VLDB 2019.

The package is organised in layers:

* :mod:`repro.metricspace` — points, metrics, enclosing balls, doubling dimension;
* :mod:`repro.datasets` — synthetic generators, paper-dataset stand-ins, outlier
  injection and SMOTE-style inflation;
* :mod:`repro.core` — GMM, composable coresets, OUTLIERSCLUSTER, and the
  MapReduce / Streaming / sequential solvers of the paper;
* :mod:`repro.mapreduce` and :mod:`repro.streaming` — the simulated execution
  substrates with memory and throughput accounting;
* :mod:`repro.baselines` — the comparison algorithms of [15, 16, 26, 27];
* :mod:`repro.evaluation` — experiment drivers regenerating every figure of
  the paper's evaluation section.

Quickstart
----------
>>> from repro import MapReduceKCenter
>>> from repro.datasets import gaussian_mixture, GaussianMixtureSpec
>>> points = gaussian_mixture(1000, GaussianMixtureSpec(8, 3), random_state=0)
>>> result = MapReduceKCenter(k=8, ell=4, coreset_multiplier=4, random_state=0).fit(points)
>>> result.radius > 0
True
"""

from .core import (
    GMM,
    CoresetSpec,
    CoresetStreamKCenter,
    CoresetStreamOutliers,
    KCenterModel,
    MapReduceKCenter,
    MapReduceKCenterOutliers,
    OutliersClusterSolver,
    SequentialKCenter,
    SequentialKCenterOutliers,
    StreamingCoreset,
    TwoPassStreamOutliers,
    assign_to_centers,
    clustering_radius,
    gmm_adaptive,
    gmm_select,
    plan_mapreduce,
    plan_streaming,
    radius_with_outliers,
    search_radius,
)
from .io import SavedSolution, load_solution, save_solution
from .exceptions import (
    DatasetError,
    EmptyStreamError,
    InvalidParameterError,
    MemoryBudgetExceededError,
    NotFittedError,
    RadiusSearchError,
    ReproError,
    StreamingProtocolError,
)
from .metricspace import Dataset, WeightedPoints

__version__ = "1.0.0"

__all__ = [
    "GMM",
    "CoresetSpec",
    "CoresetStreamKCenter",
    "CoresetStreamOutliers",
    "Dataset",
    "DatasetError",
    "EmptyStreamError",
    "InvalidParameterError",
    "KCenterModel",
    "MapReduceKCenter",
    "MapReduceKCenterOutliers",
    "MemoryBudgetExceededError",
    "NotFittedError",
    "RadiusSearchError",
    "OutliersClusterSolver",
    "ReproError",
    "SavedSolution",
    "SequentialKCenter",
    "SequentialKCenterOutliers",
    "StreamingCoreset",
    "StreamingProtocolError",
    "TwoPassStreamOutliers",
    "WeightedPoints",
    "assign_to_centers",
    "clustering_radius",
    "gmm_adaptive",
    "gmm_select",
    "load_solution",
    "plan_mapreduce",
    "plan_streaming",
    "radius_with_outliers",
    "save_solution",
    "search_radius",
    "__version__",
]
