"""Streaming execution harness.

:class:`StreamingAlgorithm` is the protocol every streaming solver in this
package implements: points are pushed one at a time via
:meth:`~StreamingAlgorithm.process`, the final answer is produced by
:meth:`~StreamingAlgorithm.finalize`, and the algorithm reports its
working-set size through :attr:`~StreamingAlgorithm.working_memory_size`
so the harness can track peak memory (the paper's key space metric).

:class:`StreamingRunner` drives an algorithm over a
:class:`~repro.streaming.stream.PointStream`, honouring multi-pass
algorithms, and reports throughput (points per second, excluding the
finalisation step, as in the paper's throughput plots), peak working
memory, and the number of passes used.

**Batch protocol.** The protocol additionally carries an optional
batched entry point, :meth:`~StreamingAlgorithm.process_batch`, which
consumes a ``(m, d)`` chunk of consecutive stream points. Its contract
is *order equivalence*: processing a chunk must leave the algorithm in
exactly the state that feeding the chunk's rows to
:meth:`~StreamingAlgorithm.process` one by one would have. The base
class provides that loop as the default, so third-party solvers keep
working unchanged; the solvers in this package override it with
vectorised update rules (one blocked nearest-center computation per
chunk instead of one NumPy dispatch per point), which is what lifts
streaming throughput from interpreter-bound to hardware-bound.

Passing ``batch_size`` to :class:`StreamingRunner` selects the batched
drive path: the stream delivers chunks of (at most) that size via
:meth:`~repro.streaming.stream.PointStream.iterate_batches` and the
runner calls :meth:`~StreamingAlgorithm.process_batch` on each. With
``batch_size=None`` (the default) the classic per-point loop runs.
Results are identical either way, and so is ``memory_limit``
enforcement: checks run between points or between chunks, but both
paths compare the solver-tracked
:attr:`~StreamingAlgorithm.peak_working_memory_size`, so a transient
peak *inside* a chunk (or between two sparse per-point samples) still
trips the budget.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..exceptions import (
    EmptyStreamError,
    MemoryBudgetExceededError,
    StreamingProtocolError,
)
from .stream import PointStream

__all__ = ["StreamingAlgorithm", "StreamingReport", "StreamingRunner"]


class StreamingAlgorithm(ABC):
    """Base class for one- or multi-pass streaming algorithms."""

    #: Number of sequential passes the algorithm needs over the stream.
    n_passes: int = 1

    def start_pass(self, pass_index: int) -> None:
        """Hook called before each pass (``pass_index`` is 0-based)."""

    @abstractmethod
    def process(self, point: np.ndarray) -> None:
        """Consume one point of the current pass."""

    def process_batch(self, batch: np.ndarray) -> None:
        """Consume a ``(m, d)`` chunk of consecutive points of the current pass.

        Must be equivalent to calling :meth:`process` on every row in
        order; the default implementation does exactly that, so solvers
        without a vectorised path keep working under a batched runner.
        """
        for point in np.atleast_2d(np.asarray(batch, dtype=np.float64)):
            self.process(point)

    @abstractmethod
    def finalize(self):
        """Produce the final answer once every pass has been consumed."""

    @property
    @abstractmethod
    def working_memory_size(self) -> int:
        """Current number of stored points (the paper's working-memory unit)."""

    @property
    def peak_working_memory_size(self) -> int:
        """Largest working-memory size reached so far (stored points).

        The harness samples :attr:`working_memory_size` only between
        points (or, on the batched path, between chunks), so a transient
        peak inside one call can go unobserved. Algorithms that track
        their own peak override this property to make the paper's space
        metric exact regardless of the drive path; the default simply
        reports the current working set.
        """
        return self.working_memory_size


@dataclass(frozen=True)
class StreamingReport:
    """Outcome of running a streaming algorithm over a stream.

    Attributes
    ----------
    result:
        Whatever the algorithm's :meth:`~StreamingAlgorithm.finalize`
        returned.
    n_points:
        Number of points consumed (per pass).
    n_passes:
        Number of passes performed.
    peak_memory:
        Largest working-memory size observed (in stored points).
    stream_time:
        Wall-clock seconds spent pushing points (excludes finalisation).
    finalize_time:
        Wall-clock seconds spent in finalisation.
    throughput:
        Points per second during streaming (``n_points * n_passes /
        stream_time``); ``inf`` for degenerate zero-duration runs.
    """

    result: object
    n_points: int
    n_passes: int
    peak_memory: int
    stream_time: float
    finalize_time: float

    @property
    def throughput(self) -> float:
        """Points processed per second while streaming."""
        total = self.n_points * self.n_passes
        if self.stream_time <= 0:
            return float("inf")
        return total / self.stream_time


class StreamingRunner:
    """Drive a :class:`StreamingAlgorithm` over a :class:`PointStream`.

    Parameters
    ----------
    memory_limit:
        Optional hard cap (stored points) on the algorithm's working
        memory; exceeding it raises
        :class:`~repro.exceptions.MemoryBudgetExceededError`.
    memory_check_interval:
        Working memory is sampled every this many processed points (peak
        tracking stays accurate for the algorithms in this package because
        their memory only changes when a point is inserted).
    batch_size:
        ``None`` (default) drives the algorithm point by point. An integer
        ``>= 1`` selects the batched path: the stream delivers chunks of at
        most this many points and the algorithm consumes them through
        :meth:`StreamingAlgorithm.process_batch`. Working memory is then
        sampled once per chunk (at least every ``max(batch_size,
        memory_check_interval)`` points); every sample — on either drive
        path — compares the solver-tracked
        :attr:`StreamingAlgorithm.peak_working_memory_size`, so a
        mid-chunk peak above the limit is still caught.
    """

    def __init__(
        self,
        *,
        memory_limit: int | None = None,
        memory_check_interval: int = 1,
        batch_size: int | None = None,
    ) -> None:
        if memory_check_interval < 1:
            raise StreamingProtocolError("memory_check_interval must be >= 1")
        if batch_size is not None and batch_size < 1:
            raise StreamingProtocolError("batch_size must be >= 1 (or None)")
        self._memory_limit = memory_limit
        self._interval = int(memory_check_interval)
        self._batch_size = None if batch_size is None else int(batch_size)

    @property
    def batch_size(self) -> int | None:
        """Chunk size of the batched drive path (``None`` = per point)."""
        return self._batch_size

    def _check_memory(self, algorithm: StreamingAlgorithm, peak_memory: int) -> int:
        # Checks run between points (or between chunks on the batched
        # path), so a transient peak inside one call could escape a
        # current-size sample; comparing the solver-tracked
        # peak_working_memory_size makes enforcement identical on both
        # drive paths regardless of when the peak occurred.
        memory = max(
            algorithm.working_memory_size, algorithm.peak_working_memory_size
        )
        if self._memory_limit is not None and memory > self._memory_limit:
            raise MemoryBudgetExceededError(
                f"streaming working memory reached {memory} points, "
                f"exceeding the limit of {self._memory_limit}"
            )
        return max(peak_memory, memory)

    def run(self, algorithm: StreamingAlgorithm, stream: PointStream) -> StreamingReport:
        """Feed ``stream`` into ``algorithm`` and return a :class:`StreamingReport`."""
        if algorithm.n_passes > stream.max_passes:
            raise StreamingProtocolError(
                f"algorithm needs {algorithm.n_passes} passes but the stream "
                f"supports at most {stream.max_passes}"
            )

        peak_memory = 0
        points_in_pass = 0
        stream_time = 0.0

        for pass_index in range(algorithm.n_passes):
            algorithm.start_pass(pass_index)
            points_in_pass = 0
            start = time.perf_counter()
            if self._batch_size is None:
                for point in stream.iterate_pass():
                    algorithm.process(point)
                    points_in_pass += 1
                    if points_in_pass % self._interval == 0:
                        peak_memory = self._check_memory(algorithm, peak_memory)
            else:
                next_check = self._interval
                for chunk in stream.iterate_batches(self._batch_size):
                    algorithm.process_batch(chunk)
                    points_in_pass += chunk.shape[0]
                    if points_in_pass >= next_check:
                        peak_memory = self._check_memory(algorithm, peak_memory)
                        next_check = points_in_pass + self._interval
            stream_time += time.perf_counter() - start
            # One last check per pass so a spike inside the final chunk (or
            # between two sparse per-point samples) cannot escape the budget.
            peak_memory = self._check_memory(algorithm, peak_memory)

        if points_in_pass == 0:
            raise EmptyStreamError(
                "the stream delivered no points; streaming algorithms need at "
                "least one point to produce a result"
            )

        finalize_start = time.perf_counter()
        result = algorithm.finalize()
        finalize_time = time.perf_counter() - finalize_start
        peak_memory = max(peak_memory, algorithm.peak_working_memory_size)

        return StreamingReport(
            result=result,
            n_points=points_in_pass,
            n_passes=algorithm.n_passes,
            peak_memory=peak_memory,
            stream_time=stream_time,
            finalize_time=finalize_time,
        )
