"""Streaming substrate: point streams and the execution harness."""

from .runner import StreamingAlgorithm, StreamingReport, StreamingRunner
from .stream import ArrayStream, GeneratorStream, PointStream

__all__ = [
    "ArrayStream",
    "GeneratorStream",
    "PointStream",
    "StreamingAlgorithm",
    "StreamingReport",
    "StreamingRunner",
]
