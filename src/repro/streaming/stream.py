"""Stream sources for the Streaming algorithms.

A *stream* delivers points one at a time and enforces the streaming
discipline: no random access, and only as many sequential passes as the
source supports. Two sources are provided:

* :class:`ArrayStream` — wraps an in-memory ``(n, d)`` array (optionally
  shuffled once up front, as the paper does before streaming); supports an
  arbitrary number of passes, so it can also drive the 2-pass
  dimension-oblivious algorithm. A ``float64`` :class:`numpy.memmap` is
  accepted zero-copy (when ``shuffle=False``), so disk-backed matrices
  larger than RAM can be streamed chunk by chunk.
* :class:`GeneratorStream` — wraps a single-use iterable of points or
  batches (e.g. :func:`repro.datasets.inflate_streaming` or
  :func:`repro.datasets.stream_paper_dataset`); strictly one pass. An
  optional ``length_hint`` declares the stream length up front, which
  the MapReduce drivers' out-of-core shuffle needs for contiguous
  partitioning (and uses to cap ``ell``).

Besides the classic point-at-a-time :meth:`PointStream.iterate_pass`,
every stream can deliver the same pass in configurable-size chunks via
:meth:`PointStream.iterate_batches` — the delivery side of the batched
streaming engine. :class:`ArrayStream` serves zero-copy slices of its
matrix; :class:`GeneratorStream` passes batches native to its source
through without re-splitting (loose single points are grouped up to the
requested size). Both iteration styles visit the same points in the
same order, so a batched run is equivalent to a per-point run.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from .._validation import check_points, check_random_state
from ..exceptions import StreamingProtocolError

__all__ = ["PointStream", "ArrayStream", "GeneratorStream"]


class PointStream:
    """Abstract base class for point streams.

    Subclasses implement :meth:`_iterate_once`; the base class enforces the
    pass budget and counts delivered points.
    """

    def __init__(self, *, max_passes: int) -> None:
        self._max_passes = max_passes
        self._passes_started = 0
        self._points_delivered = 0

    @property
    def passes_started(self) -> int:
        """Number of passes begun so far."""
        return self._passes_started

    @property
    def points_delivered(self) -> int:
        """Total number of points handed out across all passes."""
        return self._points_delivered

    @property
    def max_passes(self) -> int:
        """Number of passes this source supports."""
        return self._max_passes

    def iterate_pass(self) -> Iterator[np.ndarray]:
        """Begin a new pass and yield its points one at a time."""
        self._begin_pass()
        for point in self._iterate_once():
            self._points_delivered += 1
            yield point

    def iterate_batches(self, batch_size: int) -> Iterator[np.ndarray]:
        """Begin a new pass and yield its points as ``(m, d)`` chunks.

        ``m`` is at most ``batch_size`` (sources with native batching, such
        as :class:`GeneratorStream`, may deliver larger chunks as-is rather
        than re-split them). Consumes one unit of the pass budget, exactly
        like :meth:`iterate_pass`.
        """
        if batch_size < 1:
            raise StreamingProtocolError("batch_size must be >= 1")
        self._begin_pass()
        for chunk in self._iterate_batches_once(int(batch_size)):
            self._points_delivered += chunk.shape[0]
            yield chunk

    def __iter__(self) -> Iterator[np.ndarray]:
        return self.iterate_pass()

    def _begin_pass(self) -> None:
        if self._passes_started >= self._max_passes:
            raise StreamingProtocolError(
                f"this stream supports at most {self._max_passes} pass(es)"
            )
        self._passes_started += 1

    def _iterate_once(self) -> Iterator[np.ndarray]:  # pragma: no cover - abstract
        raise NotImplementedError

    def _iterate_batches_once(self, batch_size: int) -> Iterator[np.ndarray]:
        """Group the per-point iterator into chunks (sources may override)."""
        pending: list[np.ndarray] = []
        for point in self._iterate_once():
            pending.append(point)
            if len(pending) == batch_size:
                yield np.vstack(pending)
                pending = []
        if pending:
            yield np.vstack(pending)


class ArrayStream(PointStream):
    """Stream over an in-memory point matrix; supports multiple passes.

    Parameters
    ----------
    points:
        ``(n, d)`` array.
    shuffle:
        Shuffle once before the first pass (all passes then see the same
        shuffled order), mirroring the paper's experimental protocol.
    max_passes:
        Pass budget; defaults to unlimited (``None``).
    random_state:
        Seed for the shuffle.
    """

    def __init__(
        self,
        points,
        *,
        shuffle: bool = False,
        max_passes: int | None = None,
        random_state=None,
    ) -> None:
        super().__init__(max_passes=np.inf if max_passes is None else int(max_passes))
        pts = check_points(points)
        if shuffle:
            rng = check_random_state(random_state)
            pts = pts[rng.permutation(pts.shape[0])]
        self._points = pts

    def __len__(self) -> int:
        return int(self._points.shape[0])

    @property
    def dimension(self) -> int:
        """Number of coordinates per point."""
        return int(self._points.shape[1])

    def _iterate_once(self) -> Iterator[np.ndarray]:
        for row in self._points:
            yield row

    def _iterate_batches_once(self, batch_size: int) -> Iterator[np.ndarray]:
        # Zero-copy slices of the backing matrix.
        for start in range(0, self._points.shape[0], batch_size):
            yield self._points[start : start + batch_size]


class GeneratorStream(PointStream):
    """Single-pass stream over an iterable of points or point batches.

    Each item of ``source`` may be a single point (1-d array-like) or a
    batch (2-d array-like). Under :meth:`~PointStream.iterate_pass`
    batches are unrolled point by point; under
    :meth:`~PointStream.iterate_batches` native batches are passed
    through without re-splitting (whatever their size), while loose
    single points are grouped into chunks of the requested size. Either
    way, generators such as :func:`repro.datasets.inflate_streaming` can
    feed the streaming algorithms without materialising the data.

    Parameters
    ----------
    source:
        The iterable of points or batches.
    length_hint:
        Optional total number of points the source will deliver. When
        given, ``len(stream)`` reports it (consumers that need the
        length up front — e.g. contiguous partitioning in the MapReduce
        out-of-core shuffle — can then use a single-pass source); the
        shuffle verifies the actual delivery against it. ``0`` declares
        a legitimately empty stream — consumers that need at least one
        point (``fit_stream``, the streaming runner) then fail fast
        with :class:`~repro.exceptions.EmptyStreamError` instead of
        erroring from deep inside finalisation.
    """

    def __init__(self, source: Iterable, *, length_hint: int | None = None) -> None:
        super().__init__(max_passes=1)
        self._source = source
        if length_hint is not None and length_hint < 0:
            raise StreamingProtocolError("length_hint must be >= 0 (or None)")
        self._length_hint = length_hint

    def __len__(self) -> int:
        if self._length_hint is None:
            raise TypeError("this GeneratorStream has no length_hint")
        return int(self._length_hint)

    @staticmethod
    def _as_array(item) -> np.ndarray:
        array = np.asarray(item, dtype=np.float64)
        if array.ndim not in (1, 2):
            raise StreamingProtocolError(
                "stream items must be points (1-d) or batches of points (2-d)"
            )
        return array

    def _iterate_once(self) -> Iterator[np.ndarray]:
        for item in self._source:
            array = self._as_array(item)
            if array.ndim == 1:
                yield array
            else:
                for row in array:
                    yield row

    def _iterate_batches_once(self, batch_size: int) -> Iterator[np.ndarray]:
        pending: list[np.ndarray] = []
        for item in self._source:
            array = self._as_array(item)
            if array.ndim == 2:
                # Flush grouped singles first so the point order matches the
                # per-point iteration, then hand the native batch through.
                if pending:
                    yield np.vstack(pending)
                    pending = []
                if array.shape[0]:
                    yield array
                continue
            pending.append(array)
            if len(pending) == batch_size:
                yield np.vstack(pending)
                pending = []
        if pending:
            yield np.vstack(pending)
