"""Internal argument-validation helpers shared across the package.

These helpers centralise the (otherwise repetitive) checks that public
entry points perform on user-supplied parameters, and raise the library's
own exception types so callers get uniform, informative error messages.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .exceptions import DatasetError, InvalidParameterError

__all__ = [
    "check_points",
    "check_positive_int",
    "check_non_negative_int",
    "check_epsilon",
    "check_k_z",
    "check_weights",
    "check_random_state",
]


def check_points(points: Any, *, name: str = "points") -> np.ndarray:
    """Validate and normalise a point matrix.

    Parameters
    ----------
    points:
        Anything convertible to a 2-d ``float64`` NumPy array of shape
        ``(n, d)`` with ``n >= 1`` and ``d >= 1``. A 1-d array is
        interpreted as ``n`` one-dimensional points.
    name:
        Parameter name used in error messages.

    Returns
    -------
    numpy.ndarray
        A C-contiguous ``float64`` array of shape ``(n, d)``.

    Raises
    ------
    DatasetError
        If the array is empty, has more than two dimensions, or contains
        NaN / infinite coordinates.
    """
    array = np.asarray(points, dtype=np.float64)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if array.ndim != 2:
        raise DatasetError(
            f"{name} must be a 2-d array of shape (n, d); got ndim={array.ndim}"
        )
    if array.shape[0] == 0 or array.shape[1] == 0:
        raise DatasetError(f"{name} must be non-empty; got shape {array.shape}")
    if not np.all(np.isfinite(array)):
        raise DatasetError(f"{name} contains NaN or infinite coordinates")
    return np.ascontiguousarray(array)


def check_positive_int(value: Any, *, name: str) -> int:
    """Validate that ``value`` is an integer >= 1 and return it as ``int``."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise InvalidParameterError(f"{name} must be an integer; got {value!r}")
    value = int(value)
    if value < 1:
        raise InvalidParameterError(f"{name} must be >= 1; got {value}")
    return value


def check_non_negative_int(value: Any, *, name: str) -> int:
    """Validate that ``value`` is an integer >= 0 and return it as ``int``."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise InvalidParameterError(f"{name} must be an integer; got {value!r}")
    value = int(value)
    if value < 0:
        raise InvalidParameterError(f"{name} must be >= 0; got {value}")
    return value


def check_epsilon(value: Any, *, name: str = "epsilon", upper: float = 1.0) -> float:
    """Validate a precision parameter in the half-open interval ``(0, upper]``."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise InvalidParameterError(f"{name} must be a number; got {value!r}") from exc
    if not (0.0 < value <= upper) or not np.isfinite(value):
        raise InvalidParameterError(
            f"{name} must satisfy 0 < {name} <= {upper}; got {value}"
        )
    return value


def check_k_z(n: int, k: Any, z: Any = 0) -> tuple[int, int]:
    """Validate the number of centers ``k`` and outliers ``z`` against ``n`` points.

    The paper requires ``k < |S|``; with outliers we additionally require
    ``k + z <= |S|`` so that at least the centers themselves are covered.
    """
    k = check_positive_int(k, name="k")
    z = check_non_negative_int(z, name="z")
    if k > n:
        raise InvalidParameterError(f"k must be at most the dataset size ({n}); got k={k}")
    if z >= n:
        raise InvalidParameterError(
            f"z must be smaller than the dataset size ({n}); got z={z}"
        )
    return k, z


def check_weights(weights: Any, n: int, *, name: str = "weights") -> np.ndarray:
    """Validate a weight vector of length ``n`` with strictly positive entries."""
    array = np.asarray(weights, dtype=np.float64)
    if array.ndim != 1 or array.shape[0] != n:
        raise InvalidParameterError(
            f"{name} must be a 1-d array of length {n}; got shape {array.shape}"
        )
    if not np.all(np.isfinite(array)) or np.any(array <= 0):
        raise InvalidParameterError(f"{name} must contain finite, strictly positive values")
    return array


def check_random_state(seed: Any) -> np.random.Generator:
    """Turn ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh non-deterministic generator, an ``int`` seeds a
    new generator, and an existing generator is passed through untouched.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)) and not isinstance(seed, bool):
        return np.random.default_rng(int(seed))
    raise InvalidParameterError(
        f"random_state must be None, an int, or a numpy Generator; got {seed!r}"
    )
