"""Radius search for the outlier formulation's second phase.

The second round of the MapReduce algorithm (and the post-pass phase of
the Streaming algorithm) must find the smallest radius ``r`` such that
OUTLIERSCLUSTER leaves uncovered weight at most ``z``. The paper performs
a binary search over the ``O(|T|^2)`` pairwise distances of the coreset
combined with a geometric search of step ``(1 + delta)`` with
``delta = eps_hat / (3 + 4*eps_hat)``, so the returned estimate
``r_tilde_min`` is within a multiplicative ``(1 + delta)`` of the true
minimum feasible radius.

:func:`search_radius` reproduces that procedure on top of an
:class:`~repro.core.outliers_cluster.OutliersClusterSolver`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import check_non_negative_int
from ..exceptions import InvalidParameterError, RadiusSearchError
from .outliers_cluster import OutliersClusterResult, OutliersClusterSolver

__all__ = ["RadiusSearchResult", "search_radius", "delta_for"]


def delta_for(eps_hat: float) -> float:
    """The geometric-search step ``delta = eps_hat / (3 + 4*eps_hat)``.

    With ``eps_hat = 0`` (the unweighted Charikar et al. setting) the step
    degenerates to 0; callers then skip the geometric refinement and the
    binary search alone decides.
    """
    if eps_hat < 0:
        raise InvalidParameterError("eps_hat must be non-negative")
    if eps_hat == 0:
        return 0.0
    return eps_hat / (3.0 + 4.0 * eps_hat)


@dataclass(frozen=True)
class RadiusSearchResult:
    """Outcome of the radius search.

    Attributes
    ----------
    radius:
        The estimated minimum feasible radius ``r_tilde_min``.
    solution:
        The OUTLIERSCLUSTER output at that radius (its centers are the
        algorithm's final answer).
    probes:
        Number of OUTLIERSCLUSTER executions performed by the search; the
        paper bounds this by ``O(log |T|)`` plus the geometric refinement.
    """

    radius: float
    solution: OutliersClusterResult
    probes: int


def search_radius(
    solver: OutliersClusterSolver,
    z: int,
    *,
    delta: float | None = None,
    max_geometric_steps: int = 64,
) -> RadiusSearchResult:
    """Find (approximately) the smallest radius with uncovered weight <= ``z``.

    Parameters
    ----------
    solver:
        A prepared :class:`OutliersClusterSolver` over the coreset.
    z:
        Outlier budget: the search accepts a radius when the weight left
        uncovered by OUTLIERSCLUSTER is at most ``z``.
    delta:
        Geometric refinement step; defaults to
        ``delta_for(solver.eps_hat)``.
    max_geometric_steps:
        Safety cap on the number of downward geometric refinement probes.

    Returns
    -------
    RadiusSearchResult

    Raises
    ------
    RadiusSearchError
        If either geometric loop exhausts ``max_geometric_steps`` without
        establishing its invariant — the upward doubling fallback without
        finding any feasible radius, or the downward refinement without
        bracketing ``r_min`` (possible when ``delta`` is tiny relative to
        the gap between the smallest feasible candidate and the largest
        infeasible one, e.g. on near-degenerate coresets). The failure is
        loud because returning the last probe would silently void the
        ``(1 + delta)`` tolerance the paper's analysis relies on.

    Notes
    -----
    The candidate set is the sorted list of pairwise coreset distances.
    The largest candidate is always feasible (a single ball of that radius
    centered anywhere covers everything), so the binary search is well
    defined; radius 0 is also probed to handle degenerate coresets where
    every point coincides.
    """
    z = check_non_negative_int(z, name="z")
    if delta is None:
        delta = delta_for(solver.eps_hat)
    if delta < 0:
        raise InvalidParameterError("delta must be non-negative")

    probes = 0

    def feasible(radius: float) -> OutliersClusterResult | None:
        nonlocal probes
        probes += 1
        result = solver.run(radius)
        return result if result.uncovered_weight <= z else None

    candidates = solver.candidate_radii()
    # Degenerate coreset: all points coincide, any radius (even 0) works.
    zero_result = feasible(0.0)
    if zero_result is not None:
        return RadiusSearchResult(radius=0.0, solution=zero_result, probes=probes)
    if candidates.size == 0:
        # A single distinct point that is still infeasible can only happen
        # when z is smaller than the weight k centers cannot absorb, which
        # is impossible for k >= 1; guard nonetheless.
        result = solver.run(0.0)
        return RadiusSearchResult(radius=0.0, solution=result, probes=probes)

    # Binary search over the sorted pairwise distances for the smallest
    # feasible candidate.
    lo, hi = 0, candidates.size - 1
    best_radius = float(candidates[hi])
    best_result = feasible(best_radius)
    if best_result is None:
        # The largest pairwise distance always covers the whole coreset with
        # one ball; being infeasible means z < 0 weight left, impossible, but
        # fall back to doubling to stay robust to pathological metrics.
        radius = best_radius
        for _ in range(max_geometric_steps):
            radius *= 2.0
            best_result = feasible(radius)
            if best_result is not None:
                best_radius = radius
                break
        if best_result is None:
            raise RadiusSearchError(
                f"no feasible radius found after doubling {max_geometric_steps} "
                f"times from the largest pairwise distance {candidates[hi]!r}; "
                "check that k >= 1 and the coreset is well formed"
            )
    infeasible_floor = 0.0
    while lo <= hi:
        mid = (lo + hi) // 2
        radius = float(candidates[mid])
        result = feasible(radius)
        if result is not None:
            best_radius = radius
            best_result = result
            hi = mid - 1
        else:
            infeasible_floor = max(infeasible_floor, radius)
            lo = mid + 1

    # Geometric refinement: walk down from the best feasible radius in
    # (1 + delta) steps while it stays feasible, never crossing the largest
    # known-infeasible radius. This yields the paper's (1 + delta)
    # multiplicative tolerance on r_min.
    if delta > 0:
        radius = best_radius
        converged = False
        for _ in range(max_geometric_steps):
            candidate = radius / (1.0 + delta)
            if candidate <= infeasible_floor or candidate <= 0:
                converged = True
                break
            result = feasible(candidate)
            if result is None:
                converged = True
                break
            best_radius = candidate
            best_result = result
            radius = candidate
        if not converged:
            # The loop may have established the invariant on its very last
            # shrink: if the *next* candidate would have crossed the floor,
            # best_radius is already within (1 + delta) of r_min.
            next_candidate = radius / (1.0 + delta)
            converged = next_candidate <= infeasible_floor or next_candidate <= 0
        if not converged:
            # The walk kept finding feasible radii after max_geometric_steps
            # shrinks — a tiny delta, or a coreset whose candidate distances
            # leave a huge feasible gap above the infeasible floor. Returning
            # best_radius here would silently drop the (1 + delta) guarantee
            # on r_min, so fail loudly instead.
            raise RadiusSearchError(
                f"geometric refinement did not converge within "
                f"{max_geometric_steps} steps (delta={delta!r}, reached "
                f"radius {best_radius!r}, infeasible floor {infeasible_floor!r}); "
                "increase max_geometric_steps or use a larger delta/eps_hat"
            )

    return RadiusSearchResult(radius=best_radius, solution=best_result, probes=probes)
