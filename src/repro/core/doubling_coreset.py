"""Weighted doubling-algorithm coreset for the Streaming setting (Section 4).

The 1-pass Streaming algorithm cannot use GMM (no efficient streaming
implementation exists), so the paper adapts the *doubling algorithm* of
Charikar et al. [15] to maintain a weighted coreset ``T`` of at most
``tau`` centers together with a lower bound ``phi`` on the optimal
``tau``-center radius. The data structure maintains the paper's
invariants:

(a) ``|T| <= tau``;
(b) any two centers are more than ``4 * phi`` apart;
(c) every processed point is within ``8 * phi`` of its proxy center;
(d) each center's weight is the number of points it is proxy for;
(e) ``phi <= r*_tau(S)``.

Processing a point applies the *update rule* (assign to the closest
center if within ``8 * phi``, else open a new center) and, when the
center budget overflows, the *merge rule* (double ``phi`` and merge
centers closer than ``4 * phi``) until invariant (a) is restored.

:meth:`StreamingCoreset.process_batch` applies the same rules to a whole
chunk of points with one blocked nearest-neighbour computation per
sweep: the maximal prefix of the chunk that lands within ``8 * phi`` of
an existing center is folded into the weights in bulk
(:func:`numpy.bincount`), the first residual point opens a new center,
and the sweep continues incrementally (only distances to the new center
are computed) until the budget overflows, when the merge rule runs and
the remaining tail is reswept. The batched path is exactly equivalent
to feeding the chunk point by point — it is the per-point update rule
with the interpreter loop hoisted into NumPy.

:class:`StreamingCoreset` is used by the streaming k-center algorithm
(with ``tau = mu * k``), the streaming outlier algorithm (with
``tau = mu * (k + z)`` or the theoretical ``(k+z)(16/eps)^D``), and the
8-approximation baseline of [15] (with ``tau = k``).
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int
from ..exceptions import InvalidParameterError, NotFittedError
from ..metricspace.distance import Metric, get_metric
from ..metricspace.points import WeightedPoints

__all__ = ["StreamingCoreset"]


class StreamingCoreset:
    """Maintain a weighted coreset of at most ``tau`` centers over a stream.

    Parameters
    ----------
    tau:
        Maximum number of coreset centers kept in memory.
    metric:
        Metric name or instance.

    Notes
    -----
    The first ``tau + 1`` points are buffered verbatim (this is the
    initialisation phase of the doubling algorithm); afterwards the
    working memory never exceeds ``tau + 1`` stored points, independent of
    the stream length — the property Corollary 4 relies on.
    """

    def __init__(self, tau: int, metric: str | Metric = "euclidean") -> None:
        self._tau = check_positive_int(tau, name="tau")
        self._metric = get_metric(metric)
        self._buffer: list[np.ndarray] = []
        self._centers: np.ndarray | None = None  # (capacity, d) storage
        self._weights: np.ndarray | None = None
        self._size = 0
        self._phi = 0.0
        self._dimension: int | None = None
        self._n_processed = 0
        self._peak_memory = 0

    # -- read-only state ----------------------------------------------------------------

    @property
    def tau(self) -> int:
        """The center budget."""
        return self._tau

    @property
    def phi(self) -> float:
        """The current lower bound on the optimal ``tau``-center radius."""
        return self._phi

    @property
    def n_processed(self) -> int:
        """Number of stream points processed so far."""
        return self._n_processed

    @property
    def is_initialized(self) -> bool:
        """Whether the initialisation buffer has been promoted to centers."""
        return self._centers is not None

    @property
    def size(self) -> int:
        """Current number of centers (0 while still buffering)."""
        return self._size

    @property
    def working_memory_size(self) -> int:
        """Stored points: buffered points plus retained centers."""
        return len(self._buffer) + self._size

    @property
    def peak_working_memory_size(self) -> int:
        """Largest working-memory size ever reached (at most ``tau + 1``).

        Tracked internally at every point of growth, so it is exact no
        matter how coarsely the harness samples — and identical between
        the per-point and batched processing paths.
        """
        return max(self._peak_memory, self.working_memory_size)

    def _note_memory(self) -> None:
        self._peak_memory = max(self._peak_memory, len(self._buffer) + self._size)

    @property
    def centers(self) -> np.ndarray:
        """Coordinates of the current centers (also valid during buffering).

        Returned as a read-only view into the coreset's storage (no copy);
        the contents reflect the state at access time and are invalidated
        by further :meth:`process` / :meth:`process_batch` calls. Use
        :meth:`coreset` for a stable snapshot.
        """
        if self._centers is None:
            if not self._buffer:
                return np.empty((0, 0))
            view = np.vstack(self._buffer)
        else:
            view = self._centers[: self._size]
        view.flags.writeable = False
        return view

    @property
    def weights(self) -> np.ndarray:
        """Weights (proxy counts) of the current centers.

        Read-only view semantics, exactly as :attr:`centers`.
        """
        if self._centers is None:
            view = np.ones(len(self._buffer))
        else:
            view = self._weights[: self._size]
        view.flags.writeable = False
        return view

    # -- internal helpers -----------------------------------------------------------------

    def _ensure_capacity(self, extra: int) -> None:
        needed = self._size + extra
        capacity = self._centers.shape[0]
        if needed <= capacity:
            return
        new_capacity = max(needed, capacity * 2)
        centers = np.zeros((new_capacity, self._dimension))
        weights = np.zeros(new_capacity)
        centers[: self._size] = self._centers[: self._size]
        weights[: self._size] = self._weights[: self._size]
        self._centers = centers
        self._weights = weights

    def _append_center(self, point: np.ndarray, weight: float) -> None:
        self._ensure_capacity(1)
        self._centers[self._size] = point
        self._weights[self._size] = weight
        self._size += 1
        self._note_memory()

    def _active_pairwise(self) -> np.ndarray:
        return self._metric.pairwise(self._centers[: self._size])

    def _min_positive_pairwise(self) -> float:
        pairs = self._active_pairwise()
        upper = pairs[np.triu_indices(self._size, k=1)]
        positive = upper[upper > 0]
        return float(positive.min()) if positive.size else 0.0

    def _merge_centers(self) -> None:
        """Enforce invariant (b): merge centers at distance <= 4 * phi.

        A greedy sweep keeps the first center of every violating pair and
        folds the discarded center's weight into the survivor closest to it,
        which conceptually re-targets the proxy function as in the paper.
        """
        if self._size <= 1:
            return
        pairs = self._active_pairwise()
        threshold = 4.0 * self._phi
        keep: list[int] = []
        merged_weights = np.array(self._weights[: self._size])
        discarded = np.zeros(self._size, dtype=bool)
        for index in range(self._size):
            if discarded[index]:
                continue
            keep.append(index)
            # Fold every not-yet-discarded later center within threshold into
            # this survivor.
            close = np.flatnonzero(
                (pairs[index] <= threshold) & ~discarded & (np.arange(self._size) > index)
            )
            if close.size:
                merged_weights[index] += merged_weights[close].sum()
                discarded[close] = True
        if len(keep) == self._size:
            return
        kept_indices = np.array(keep, dtype=np.intp)
        new_size = kept_indices.shape[0]
        self._centers[:new_size] = self._centers[kept_indices]
        self._weights[:new_size] = merged_weights[kept_indices]
        self._size = new_size

    def _apply_merge_rule(self) -> None:
        """Double ``phi`` (handling the degenerate 0 case) and merge centers."""
        if self._phi <= 0.0:
            minimum = self._min_positive_pairwise()
            if minimum == 0.0:
                # All centers coincide: collapse them into one.
                total = float(self._weights[: self._size].sum())
                self._weights[0] = total
                self._size = 1 if self._size else 0
                return
            self._phi = minimum / 2.0
        else:
            self._phi *= 2.0
        self._merge_centers()

    def _initialize_from_buffer(self) -> None:
        points = np.vstack(self._buffer)
        self._dimension = points.shape[1]
        capacity = max(2 * (self._tau + 2), points.shape[0])
        self._centers = np.zeros((capacity, self._dimension))
        self._weights = np.zeros(capacity)
        self._centers[: points.shape[0]] = points
        self._weights[: points.shape[0]] = 1.0
        self._size = points.shape[0]
        self._buffer = []

        # phi starts at half the minimum pairwise distance; exact duplicates
        # are merged first so the minimum is taken over distinct points.
        self._phi = self._min_positive_pairwise() / 2.0
        if self._phi > 0.0:
            self._merge_centers()
        # Re-establish invariant (a) before processing further points.
        while self._size > self._tau:
            self._apply_merge_rule()

    # -- public protocol ---------------------------------------------------------------------

    def process(self, point) -> None:
        """Feed one stream point into the coreset."""
        point = np.asarray(point, dtype=np.float64).reshape(-1)
        if point.size == 0 or not np.all(np.isfinite(point)):
            raise InvalidParameterError("stream points must be finite, non-empty vectors")
        if self._dimension is not None and point.shape[0] != self._dimension:
            raise InvalidParameterError(
                f"stream point has dimension {point.shape[0]}, expected {self._dimension}"
            )
        self._n_processed += 1

        if self._centers is None:
            if self._dimension is None:
                self._dimension = int(point.shape[0])
            self._buffer.append(np.array(point))
            self._note_memory()
            if len(self._buffer) == self._tau + 1:
                self._initialize_from_buffer()
            return

        distances = self._metric.point_to_points(point, self._centers[: self._size])
        closest = int(np.argmin(distances))
        if distances[closest] <= 8.0 * self._phi:
            # Update rule: the closest center becomes the point's proxy.
            self._weights[closest] += 1.0
            return
        # New center; re-establish invariant (a) if the budget overflowed.
        self._append_center(point, 1.0)
        while self._size > self._tau:
            self._apply_merge_rule()

    def process_batch(self, points) -> None:
        """Feed a chunk of stream points into the coreset.

        Exactly equivalent to calling :meth:`process` on every row of
        ``points`` in order, but the update rule runs vectorised: one
        blocked nearest-center computation per sweep, bulk weight
        accumulation for all in-radius points, and an incremental greedy
        sweep over the residual points that open new centers. The merge
        rule is only entered when the center budget actually overflows.
        """
        batch = np.asarray(points, dtype=np.float64)
        if batch.ndim == 1:
            batch = batch.reshape(1, -1)
        if batch.ndim != 2:
            raise InvalidParameterError("a batch must be a (n, d) array of points")
        if batch.shape[0] == 0:
            return
        if batch.shape[1] == 0 or not np.all(np.isfinite(batch)):
            raise InvalidParameterError("stream points must be finite, non-empty vectors")
        if self._dimension is not None and batch.shape[1] != self._dimension:
            raise InvalidParameterError(
                f"stream point has dimension {batch.shape[1]}, expected {self._dimension}"
            )
        if self._dimension is None:
            self._dimension = int(batch.shape[1])

        position = 0
        n = batch.shape[0]
        while position < n:
            if self._centers is None:
                # Initialisation phase: fill the buffer from the chunk.
                need = self._tau + 1 - len(self._buffer)
                taken = batch[position : position + need]
                self._buffer.extend(np.array(row) for row in taken)
                position += taken.shape[0]
                self._note_memory()
                if len(self._buffer) == self._tau + 1:
                    self._initialize_from_buffer()
                continue
            position = self._sweep_batch(batch, position)
        self._n_processed += n

    def _sweep_batch(self, batch: np.ndarray, start: int) -> int:
        """One vectorised sweep of the update rule over ``batch[start:]``.

        Processes points until the chunk is exhausted or a merge rule
        invalidates the cached nearest-center distances; returns the index
        of the first unprocessed point.
        """
        tail = batch[start:]
        dmin, amin = self._metric.nearest(tail, self._centers[: self._size])
        pos = 0
        m = tail.shape[0]
        while pos < m:
            residual = np.flatnonzero(dmin[pos:] > 8.0 * self._phi)
            if residual.size == 0:
                # Update rule in bulk: every remaining point is within
                # 8 * phi of its closest center.
                self._accumulate_weights(amin[pos:])
                return start + m
            first = pos + int(residual[0])
            if first > pos:
                self._accumulate_weights(amin[pos:first])
            self._append_center(tail[first], 1.0)
            new_index = self._size - 1
            pos = first + 1
            if self._size > self._tau:
                while self._size > self._tau:
                    self._apply_merge_rule()
                # phi and the center set changed: the cached distances are
                # stale, so hand the rest of the chunk to a fresh sweep.
                return start + pos
            if pos < m:
                # The new center may now be the closest for later points;
                # a strict comparison keeps the sequential tie-break (the
                # lowest center index wins on exact ties).
                to_new = self._metric.cdist(tail[pos:], tail[first].reshape(1, -1))[:, 0]
                closer = to_new < dmin[pos:]
                dmin[pos:][closer] = to_new[closer]
                amin[pos:][closer] = new_index
        return start + m

    def _accumulate_weights(self, indices: np.ndarray) -> None:
        """Bulk form of the update rule's ``weights[closest] += 1``."""
        if indices.size:
            self._weights[: self._size] += np.bincount(
                indices, minlength=self._size
            )

    def coreset(self) -> WeightedPoints:
        """The current weighted coreset as :class:`WeightedPoints`.

        Works both after initialisation (returning the maintained centers)
        and during the buffering phase (returning the buffered points with
        unit weights), so short streams are handled gracefully.
        """
        if self._n_processed == 0:
            raise NotFittedError("no points have been processed yet")
        if self._centers is None:
            points = np.vstack(self._buffer)
            return WeightedPoints(points=points, weights=np.ones(points.shape[0]))
        return WeightedPoints(
            points=np.array(self._centers[: self._size]),
            weights=np.array(self._weights[: self._size]),
        )
