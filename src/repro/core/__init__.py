"""Core algorithms: GMM, coresets, OUTLIERSCLUSTER, MapReduce / Streaming / sequential solvers."""

from .assignment import (
    Clustering,
    assign_to_centers,
    clustering_radius,
    evaluate_solution,
    radius_with_outliers,
)
from .coreset import CoresetResult, CoresetSpec, build_coreset, build_weighted_coreset
from .doubling_coreset import StreamingCoreset
from .gmm import GMM, GMMResult, gmm_adaptive, gmm_select, gmm_until_radius
from .model import FittedClustering, KCenterModel
from .mr_kcenter import MapReduceKCenter, MRKCenterResult
from .mr_outliers import MapReduceKCenterOutliers, MROutliersResult
from .outliers_cluster import (
    OutliersClusterResult,
    OutliersClusterSolver,
    outliers_cluster,
)
from .planner import MapReducePlan, StreamingPlan, plan_mapreduce, plan_streaming
from .radius_search import RadiusSearchResult, delta_for, search_radius
from .sequential import SequentialKCenter, SequentialKCenterOutliers, SequentialResult
from .stream_kcenter import (
    CoresetStreamKCenter,
    StreamKCenterSolution,
    streaming_coreset_size,
)
from .stream_outliers import (
    CoresetStreamOutliers,
    StreamOutliersSolution,
    TwoPassStreamOutliers,
)

__all__ = [
    "GMM",
    "GMMResult",
    "Clustering",
    "CoresetResult",
    "CoresetSpec",
    "CoresetStreamKCenter",
    "CoresetStreamOutliers",
    "FittedClustering",
    "KCenterModel",
    "MRKCenterResult",
    "MROutliersResult",
    "MapReducePlan",
    "MapReduceKCenter",
    "MapReduceKCenterOutliers",
    "OutliersClusterResult",
    "OutliersClusterSolver",
    "RadiusSearchResult",
    "SequentialKCenter",
    "SequentialKCenterOutliers",
    "SequentialResult",
    "StreamKCenterSolution",
    "StreamOutliersSolution",
    "StreamingCoreset",
    "StreamingPlan",
    "TwoPassStreamOutliers",
    "assign_to_centers",
    "build_coreset",
    "build_weighted_coreset",
    "clustering_radius",
    "delta_for",
    "evaluate_solution",
    "gmm_adaptive",
    "gmm_select",
    "gmm_until_radius",
    "outliers_cluster",
    "plan_mapreduce",
    "plan_streaming",
    "radius_with_outliers",
    "search_radius",
    "streaming_coreset_size",
]
