"""Sequential solvers.

* :class:`SequentialKCenter` — Gonzalez's GMM 2-approximation, provided
  both as a baseline and as the building block of everything else.
* :class:`SequentialKCenterOutliers` — the paper's "improved sequential
  algorithm" for k-center with z outliers (end of Section 3.2): run the
  MapReduce strategy with ``ell = 1``, i.e. build a single weighted
  coreset with GMM and then run OUTLIERSCLUSTER + radius search on it.
  Its running time is ``O(|S| |T| + k |T|^2 log |T|)`` with
  ``|T| = (k+z)(24/eps)^D``, a large improvement over the
  ``O(k |S|^2 log |S|)`` of Charikar et al. [16] at the cost of an extra
  additive ``eps`` in the approximation factor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .._validation import (
    check_non_negative_int,
    check_points,
    check_positive_int,
)
from ..exceptions import InvalidParameterError
from ..metricspace.distance import Metric, get_metric
from .assignment import assign_to_centers
from .coreset import CoresetSpec, build_coreset
from .gmm import gmm_select
from .outliers_cluster import OutliersClusterSolver
from .radius_search import search_radius

__all__ = [
    "SequentialResult",
    "SequentialKCenter",
    "SequentialKCenterOutliers",
]


@dataclass(frozen=True)
class SequentialResult:
    """Result of a sequential solver run.

    Attributes
    ----------
    centers:
        ``(<=k, d)`` coordinates of the centers.
    center_indices:
        Indices of the centers in the input dataset.
    radius:
        Objective value: the plain radius for k-center, the radius after
        discarding ``z`` points for the outlier formulation.
    radius_all_points:
        Plain radius including any outliers, for reference.
    outlier_indices:
        Indices of the discarded points (empty for plain k-center).
    coreset_size:
        Size of the intermediate coreset (equals ``k`` for plain GMM).
    elapsed_time:
        Wall-clock seconds of the whole run.
    """

    centers: np.ndarray
    center_indices: np.ndarray
    radius: float
    radius_all_points: float
    outlier_indices: np.ndarray
    coreset_size: int
    elapsed_time: float

    @property
    def k(self) -> int:
        """Number of returned centers."""
        return int(self.centers.shape[0])


class SequentialKCenter:
    """Gonzalez's GMM: the classical sequential 2-approximation for k-center.

    Parameters
    ----------
    k:
        Number of centers.
    metric:
        Metric name or instance.
    random_state:
        Seed controlling the arbitrary choice of the first center; ``None``
        always starts from index 0 (deterministic).
    """

    def __init__(self, k: int, *, metric: str | Metric = "euclidean", random_state=None) -> None:
        self.k = check_positive_int(k, name="k")
        self.metric = get_metric(metric)
        self.random_state = random_state

    def fit(self, points) -> SequentialResult:
        """Select ``k`` centers with GMM and evaluate the solution."""
        pts = check_points(points)
        if self.k > pts.shape[0]:
            raise InvalidParameterError(
                f"k={self.k} exceeds the dataset size {pts.shape[0]}"
            )
        start = time.perf_counter()
        result = gmm_select(pts, self.k, self.metric, random_state=self.random_state)
        elapsed = time.perf_counter() - start
        return SequentialResult(
            centers=pts[result.centers],
            center_indices=result.centers,
            radius=result.radius,
            radius_all_points=result.radius,
            outlier_indices=np.empty(0, dtype=np.intp),
            coreset_size=result.n_centers,
            elapsed_time=elapsed,
        )


class SequentialKCenterOutliers:
    """The paper's fast sequential (3+eps)-approximation for k-center with outliers.

    Equivalent to the deterministic MapReduce algorithm with ``ell = 1``:
    a single weighted coreset is built with GMM (base size ``k + z``, then
    either the ``epsilon`` stopping rule or a coreset of ``mu * (k + z)``
    points), and OUTLIERSCLUSTER with the radius search produces the final
    centers from the coreset alone.

    Parameters
    ----------
    k, z:
        Number of centers and outlier budget.
    epsilon:
        Precision parameter (theoretical stopping rule and
        ``eps_hat = epsilon / 6``). Mutually exclusive with
        ``coreset_multiplier``.
    coreset_multiplier:
        The ``mu`` knob of the experiments: coreset of exactly
        ``mu * (k + z)`` points. ``mu = 1`` reproduces Malkomes et al.
    eps_hat:
        Optional override of the OUTLIERSCLUSTER precision parameter.
    metric, random_state:
        As usual.
    """

    def __init__(
        self,
        k: int,
        z: int,
        *,
        epsilon: float | None = None,
        coreset_multiplier: float | None = None,
        eps_hat: float | None = None,
        metric: str | Metric = "euclidean",
        random_state=None,
    ) -> None:
        self.k = check_positive_int(k, name="k")
        self.z = check_non_negative_int(z, name="z")
        if epsilon is not None and coreset_multiplier is not None:
            raise InvalidParameterError(
                "epsilon and coreset_multiplier are mutually exclusive"
            )
        if epsilon is None and coreset_multiplier is None:
            epsilon = 1.0
        self.epsilon = epsilon
        self.coreset_multiplier = coreset_multiplier
        if eps_hat is None:
            eps_hat = (epsilon / 6.0) if epsilon is not None else 1.0 / 6.0
        self.eps_hat = float(eps_hat)
        self.metric = get_metric(metric)
        self.random_state = random_state

    def _coreset_spec(self) -> CoresetSpec:
        base = self.k + self.z
        if self.coreset_multiplier is not None:
            return CoresetSpec.from_multiplier(base, self.coreset_multiplier)
        return CoresetSpec.from_epsilon(base, self.epsilon)

    def fit(self, points) -> SequentialResult:
        """Run the coreset + OUTLIERSCLUSTER pipeline on ``points``."""
        pts = check_points(points)
        n = pts.shape[0]
        if self.k > n:
            raise InvalidParameterError(f"k={self.k} exceeds the dataset size {n}")
        if self.z >= n:
            raise InvalidParameterError(f"z={self.z} must be smaller than the dataset size {n}")

        start = time.perf_counter()
        coreset_result = build_coreset(
            pts,
            self._coreset_spec(),
            self.metric,
            weighted=True,
            random_state=self.random_state,
        )
        solver = OutliersClusterSolver(
            coreset_result.coreset, self.k, eps_hat=self.eps_hat, metric=self.metric
        )
        search = search_radius(solver, self.z)
        elapsed = time.perf_counter() - start

        coreset = coreset_result.coreset
        positions = search.solution.center_indices
        centers = coreset.points[positions]
        center_indices = coreset.origin_indices[positions]
        clustering = assign_to_centers(pts, centers, self.metric)
        return SequentialResult(
            centers=centers,
            center_indices=center_indices,
            radius=clustering.radius_excluding(self.z),
            radius_all_points=clustering.radius,
            outlier_indices=clustering.outlier_indices(self.z),
            coreset_size=len(coreset),
            elapsed_time=elapsed,
        )
