"""GMM: Gonzalez's greedy farthest-first traversal for k-center.

Gonzalez's algorithm [20] is the classical 2-approximation for k-center:
start from an arbitrary point and repeatedly add the point farthest from
the centers selected so far. This module provides an **incremental**
implementation, :class:`GMM`, which is the workhorse of the paper's
coreset constructions — each MapReduce worker keeps extending the
traversal until its stopping condition is met (Section 3), so the state
(distances to the current center set, radius history) must be reusable
between extensions.

Convenience wrappers :func:`gmm_select` (plain k-center selection),
:func:`gmm_until_radius` (grow until a target radius) and
:func:`gmm_adaptive` (the paper's ``r_{T^tau} <= (eps/2) * r_{T^k}`` rule)
cover the common call patterns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import (
    check_epsilon,
    check_points,
    check_positive_int,
    check_random_state,
)
from ..exceptions import InvalidParameterError
from ..metricspace.distance import Metric, get_metric

__all__ = ["GMM", "GMMResult", "gmm_select", "gmm_until_radius", "gmm_adaptive"]


@dataclass(frozen=True)
class GMMResult:
    """Outcome of a (possibly adaptive) GMM run.

    Attributes
    ----------
    centers:
        Indices (into the input point matrix) of the selected centers, in
        selection order.
    radius:
        Radius of the input with respect to the selected centers,
        ``max_s d(s, T)``.
    radius_history:
        ``radius_history[j]`` is the radius after the first ``j + 1``
        centers were selected; it is non-increasing.
    assignment:
        For each input point, the position (in ``centers``) of its closest
        center.
    """

    centers: np.ndarray
    radius: float
    radius_history: np.ndarray
    assignment: np.ndarray

    @property
    def n_centers(self) -> int:
        """Number of selected centers."""
        return int(self.centers.shape[0])


class GMM:
    """Incremental farthest-first traversal over a fixed point matrix.

    Parameters
    ----------
    points:
        ``(n, d)`` matrix of points.
    metric:
        Metric name or :class:`~repro.metricspace.distance.Metric`.
    first_center:
        Index of the first center. ``None`` picks index 0 (deterministic)
        unless ``random_state`` is given, in which case a uniformly random
        index is used — the paper notes that this arbitrary choice is the
        only source of run-to-run variability of the coreset construction.
    random_state:
        Seed or generator used only to pick the first center.

    Notes
    -----
    Each extension step costs one pass over the ``n`` points (a vectorised
    distance computation against the newly added center), so selecting
    ``tau`` centers costs ``O(tau * n)`` distance evaluations — the
    complexity quoted in the paper for the coreset construction.
    """

    #: Initial capacity of the growable center/radius-history buffers.
    _INITIAL_CAPACITY = 16

    def __init__(
        self,
        points,
        metric: str | Metric = "euclidean",
        *,
        first_center: int | None = None,
        random_state=None,
    ) -> None:
        self._points = check_points(points)
        self._metric = get_metric(metric)
        n = self._points.shape[0]
        if first_center is None:
            if random_state is None:
                first_center = 0
            else:
                first_center = int(check_random_state(random_state).integers(n))
        if not 0 <= first_center < n:
            raise InvalidParameterError(
                f"first_center must be a valid point index in [0, {n}); got {first_center}"
            )

        # Centers and radius history live in capacity-doubling buffers so the
        # read-only property views below are O(1) aliases instead of O(tau)
        # copies on every access.
        capacity = self._INITIAL_CAPACITY
        self._centers_buf = np.empty(capacity, dtype=np.intp)
        self._radius_buf = np.empty(capacity, dtype=np.float64)
        self._n_centers = 0

        # The one-vs-many distance pass is blocked so its broadcast
        # temporaries stay bounded for the L1/L-inf metrics even on
        # partition-sized inputs.
        self._distances = self._metric.point_to_points_blocked(
            self._points[first_center], self._points
        )
        # Vectorised distance kernels can leave ~1e-8 noise on the distance of
        # a point to itself; force exact zeros at selected centers so that a
        # center is never re-selected as the "farthest" point.
        self._distances[first_center] = 0.0
        self._assignment = np.zeros(n, dtype=np.intp)
        self._append_center(int(first_center), float(self._distances.max()))

    def _append_center(self, center: int, radius: float) -> None:
        if self._n_centers == self._centers_buf.shape[0]:
            self._centers_buf = np.concatenate(
                [self._centers_buf, np.empty_like(self._centers_buf)]
            )
            self._radius_buf = np.concatenate(
                [self._radius_buf, np.empty_like(self._radius_buf)]
            )
        self._centers_buf[self._n_centers] = center
        self._radius_buf[self._n_centers] = radius
        self._n_centers += 1

    @staticmethod
    def _readonly(array: np.ndarray) -> np.ndarray:
        view = array.view()
        view.flags.writeable = False
        return view

    # -- read-only state ------------------------------------------------------------

    @property
    def n_points(self) -> int:
        """Number of points in the underlying matrix."""
        return int(self._points.shape[0])

    @property
    def n_centers(self) -> int:
        """Number of centers selected so far."""
        return self._n_centers

    @property
    def centers(self) -> np.ndarray:
        """Indices of the centers selected so far (selection order).

        Returned as a read-only O(1) view into the traversal's storage
        (no copy); contents reflect the state at access time and may be
        invalidated by further extension. Use :meth:`result` for a
        stable snapshot.
        """
        return self._readonly(self._centers_buf[: self._n_centers])

    @property
    def radius(self) -> float:
        """Current radius ``max_s d(s, T)`` of the traversal."""
        return float(self._radius_buf[self._n_centers - 1])

    @property
    def radius_history(self) -> np.ndarray:
        """Radius after each selection; a non-increasing sequence.

        Read-only view semantics, exactly as :attr:`centers`.
        """
        return self._readonly(self._radius_buf[: self._n_centers])

    @property
    def assignment(self) -> np.ndarray:
        """Closest-center position (into :attr:`centers`) for every point.

        Read-only *aliasing* view: later extension steps update the
        array in place, so a handle obtained here observes them. Copy if
        a snapshot is needed (:meth:`result` does).
        """
        return self._readonly(self._assignment)

    @property
    def distances_to_centers(self) -> np.ndarray:
        """Distance from every point to its closest selected center.

        Read-only view semantics, exactly as :attr:`assignment`.
        """
        return self._readonly(self._distances)

    def radius_at(self, n_centers: int) -> float:
        """Radius the traversal had after selecting ``n_centers`` centers."""
        n_centers = check_positive_int(n_centers, name="n_centers")
        if n_centers > self.n_centers:
            raise InvalidParameterError(
                f"only {self.n_centers} centers selected so far; cannot report radius at {n_centers}"
            )
        return float(self._radius_buf[n_centers - 1])

    # -- extension -------------------------------------------------------------------

    def extend_by_one(self) -> bool:
        """Select one more center (the current farthest point).

        Returns ``False`` without changing state when every point already
        coincides with a center (radius zero) or all points are centers,
        ``True`` otherwise.
        """
        if self.n_centers >= self.n_points or self.radius == 0.0:
            return False
        next_center = int(np.argmax(self._distances))
        new_distances = self._metric.point_to_points_blocked(
            self._points[next_center], self._points
        )
        new_distances[next_center] = 0.0
        closer = new_distances < self._distances
        # In-place updates keep previously handed-out views aliased.
        self._distances[closer] = new_distances[closer]
        self._assignment[closer] = self._n_centers
        self._append_center(next_center, float(self._distances.max()))
        return True

    def extend_to(self, n_centers: int) -> None:
        """Extend the traversal until it holds ``n_centers`` centers (or saturates)."""
        n_centers = check_positive_int(n_centers, name="n_centers")
        while self.n_centers < n_centers:
            if not self.extend_by_one():
                break

    def extend_until_radius(self, target_radius: float) -> None:
        """Extend until the radius drops to ``target_radius`` or below (or saturates)."""
        if target_radius < 0:
            raise InvalidParameterError("target_radius must be non-negative")
        while self.radius > target_radius:
            if not self.extend_by_one():
                break

    def result(self) -> GMMResult:
        """Snapshot the current traversal as an immutable :class:`GMMResult`.

        Unlike the property accessors (which return aliasing views), the
        snapshot owns copies, so it stays valid if the traversal keeps
        extending afterwards.
        """
        return GMMResult(
            centers=np.array(self.centers),
            radius=self.radius,
            radius_history=np.array(self.radius_history),
            assignment=np.array(self.assignment),
        )


def gmm_select(
    points,
    k: int,
    metric: str | Metric = "euclidean",
    *,
    first_center: int | None = None,
    random_state=None,
) -> GMMResult:
    """Run GMM to select ``k`` centers (the classical 2-approximation).

    Parameters
    ----------
    points:
        ``(n, d)`` matrix of points.
    k:
        Number of centers; capped at ``n``.
    metric, first_center, random_state:
        Forwarded to :class:`GMM`.
    """
    k = check_positive_int(k, name="k")
    traversal = GMM(points, metric, first_center=first_center, random_state=random_state)
    traversal.extend_to(min(k, traversal.n_points))
    return traversal.result()


def gmm_until_radius(
    points,
    target_radius: float,
    metric: str | Metric = "euclidean",
    *,
    max_centers: int | None = None,
    first_center: int | None = None,
    random_state=None,
) -> GMMResult:
    """Grow a GMM traversal until its radius is at most ``target_radius``.

    ``max_centers`` optionally caps the number of selected centers; without
    a cap the traversal can grow to the full dataset (radius zero).
    """
    traversal = GMM(points, metric, first_center=first_center, random_state=random_state)
    limit = traversal.n_points if max_centers is None else min(max_centers, traversal.n_points)
    while traversal.radius > target_radius and traversal.n_centers < limit:
        if not traversal.extend_by_one():
            break
    return traversal.result()


def gmm_adaptive(
    points,
    k: int,
    epsilon: float,
    metric: str | Metric = "euclidean",
    *,
    max_centers: int | None = None,
    first_center: int | None = None,
    random_state=None,
) -> GMMResult:
    """GMM with the paper's adaptive stopping rule (Sections 3.1 and 3.2).

    The traversal is run for at least ``k`` iterations and then continued
    until the first ``tau >= k`` such that

    ``r_{T^tau}(S) <= (epsilon / 2) * r_{T^k}(S)``,

    i.e. the radius has shrunk to an ``epsilon/2`` fraction of the radius
    reached after ``k`` centers. Lemma 3 shows ``tau <= k * (4/epsilon)^D``
    on datasets of doubling dimension ``D``.

    Parameters
    ----------
    points, k, metric, first_center, random_state:
        As in :func:`gmm_select`.
    epsilon:
        Precision parameter in ``(0, 1]``.
    max_centers:
        Optional safety cap on the coreset size (useful on adversarial
        inputs with effectively unbounded doubling dimension).
    """
    k = check_positive_int(k, name="k")
    epsilon = check_epsilon(epsilon)
    traversal = GMM(points, metric, first_center=first_center, random_state=random_state)
    traversal.extend_to(min(k, traversal.n_points))
    threshold = (epsilon / 2.0) * traversal.radius_at(min(k, traversal.n_centers))
    limit = traversal.n_points if max_centers is None else min(max_centers, traversal.n_points)
    while traversal.radius > threshold and traversal.n_centers < limit:
        if not traversal.extend_by_one():
            break
    return traversal.result()
