"""Resource planning from the paper's theoretical bounds.

The paper's theorems tie the knobs of the algorithms (parallelism ``ell``,
coreset precision ``eps``, streaming coreset size ``tau``) to the memory
they need, as a function of the dataset size ``n``, the number of centers
``k``, the outlier budget ``z`` and the doubling dimension ``D``:

* Corollary 1:  MapReduce k-center, ``M_L = O(sqrt(n k) (4/eps)^D)`` at
  ``ell = Theta(sqrt(n / k))``;
* Corollary 2:  deterministic MapReduce with outliers,
  ``M_L = O(sqrt(n (k+z)) (24/eps)^D)`` at ``ell = Theta(sqrt(n/(k+z)))``;
* Corollary 3:  randomized MapReduce with outliers,
  ``M_L = O((sqrt(n (k + log n)) + z)(24/eps)^D)`` at
  ``ell = Theta(sqrt(n / (k + log n)))``;
* Theorem 3:    1-pass streaming with outliers, working memory
  ``(k + z)(96/eps)^D``.

:func:`plan_mapreduce` and :func:`plan_streaming` evaluate those formulas
(optionally estimating ``D`` from a sample) so a user can pick ``ell``
and coreset sizes before launching a large job, and can sanity-check that
a configuration fits the memory of their workers. The constants in the
bounds are worst-case; the planner reports them as-is and also the
constant-free "practical" sizes used by the paper's experiments
(``mu * k`` and ``mu * (k + z)``).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

from .._validation import (
    check_epsilon,
    check_non_negative_int,
    check_points,
    check_positive_int,
)
from ..exceptions import InvalidParameterError
from ..mapreduce.backends import available_backends, available_storage_tiers
from ..metricspace.doubling import doubling_dimension_estimate

__all__ = ["MapReducePlan", "StreamingPlan", "plan_mapreduce", "plan_streaming"]


@dataclass(frozen=True)
class MapReducePlan:
    """Suggested MapReduce configuration and its predicted memory footprint.

    Attributes
    ----------
    ell:
        Suggested number of partitions.
    per_partition_points:
        Points each round-1 reducer will hold (``ceil(n / ell)``).
    coreset_size_theoretical:
        Worst-case per-partition coreset size from the doubling-dimension
        bound (``base * (c/eps)^D``).
    coreset_size_practical:
        The experiment-style per-partition coreset size ``mu * base`` for
        the suggested ``mu`` (the planner picks the smallest ``mu`` whose
        quality matched the paper's experiments, i.e. 4).
    union_coreset_size:
        Size of the second-round reducer input under the practical sizing.
    local_memory:
        Predicted peak local memory ``M_L`` (points) under the practical
        sizing: the max of the two rounds.
    doubling_dimension:
        The ``D`` used in the theoretical bound.
    variant:
        ``"kcenter"``, ``"outliers"`` or ``"outliers-randomized"``.
    backend:
        Executor backend the plan targets (``"serial"``, ``"threads"``,
        ``"processes"`` or ``"distributed"``).
    suggested_workers:
        Worker count to pass to the runtime for that backend: 1 for the
        serial reference, the cluster size for the distributed backend,
        otherwise ``min(ell, cpu_count)`` — more workers than round-1
        reducers can never help.
    partitions_per_worker:
        Round-1 reduce groups each worker executes under the suggested
        sizing (``ceil(ell / suggested_workers)``); the round's parallel
        time scales with this factor, so a distributed plan shows
        directly what another worker daemon would buy.
    streamed:
        Whether the plan targets the out-of-core drive path
        (``fit_stream``); chunked ingestion keeps the coordinator's
        working set at ``chunk_size + union`` instead of ``n``.
    chunk_size:
        Suggested shuffle chunk size for the streamed path.
    coordinator_memory:
        Predicted coordinator working set (points): ``n`` for the
        in-memory path, ``chunk_size + union`` for the streamed one —
        the quantity that decides whether a dataset fits the machine
        driving the job.
    storage:
        Partition-storage tier the plan selects for the streamed
        shuffle (``"memory"``, ``"shared"`` or ``"disk"``): an explicit
        request is passed through; ``"auto"`` keeps the backend's
        natural tier unless the predicted partition footprint exceeds
        ``memory_budget_bytes``, in which case the plan spills to disk.
    partition_tier_bytes:
        Predicted bytes held by the partition tier: the ``(n, d)``
        float64 rows plus, on the streamed path, the ``intp`` global-
        index column. ``0`` when ``point_dimension`` is not given.
    predicted_spill_bytes:
        Bytes expected to land in spill files (``partition_tier_bytes``
        when the selected tier is ``"disk"``, else 0).
    """

    ell: int
    per_partition_points: int
    coreset_size_theoretical: int
    coreset_size_practical: int
    union_coreset_size: int
    local_memory: int
    doubling_dimension: float
    variant: str
    backend: str = "serial"
    suggested_workers: int = 1
    partitions_per_worker: int = 1
    streamed: bool = False
    chunk_size: int = 4096
    coordinator_memory: int = 0
    storage: str = "memory"
    partition_tier_bytes: int = 0
    predicted_spill_bytes: int = 0


@dataclass(frozen=True)
class StreamingPlan:
    """Suggested streaming coreset size and predicted working memory.

    Attributes
    ----------
    coreset_size_theoretical:
        ``(k + z) * (96 / eps)^D`` (Theorem 3).
    coreset_size_practical:
        The experiment-style ``mu * (k + z)`` size (``mu = 8`` by default
        in the paper's plots).
    working_memory:
        Predicted peak working memory in points under the practical
        sizing (coreset plus one buffered point).
    doubling_dimension:
        The ``D`` used in the theoretical bound.
    """

    coreset_size_theoretical: int
    coreset_size_practical: int
    working_memory: int
    doubling_dimension: float


def _resolve_dimension(
    doubling_dimension: float | None, sample, random_state
) -> float:
    if doubling_dimension is not None:
        if doubling_dimension < 0:
            raise ValueError("doubling_dimension must be non-negative")
        return float(doubling_dimension)
    if sample is None:
        # A conservative default for low-dimensional numeric data.
        return 2.0
    points = check_points(sample, name="sample")
    return doubling_dimension_estimate(points, random_state=random_state)


def plan_mapreduce(
    n: int,
    k: int,
    *,
    z: int = 0,
    epsilon: float = 1.0,
    randomized: bool = False,
    practical_multiplier: float = 4.0,
    doubling_dimension: float | None = None,
    sample=None,
    random_state=None,
    backend: str | None = None,
    workers=None,
    streamed: bool = False,
    chunk_size: int = 4096,
    storage: str | None = None,
    memory_budget_bytes: int | None = None,
    point_dimension: int | None = None,
) -> MapReducePlan:
    """Suggest ``ell`` and coreset sizes for the MapReduce algorithms.

    Parameters
    ----------
    n, k, z:
        Dataset size, number of centers, outlier budget (``z = 0`` plans
        the plain k-center algorithm).
    epsilon:
        Target precision parameter.
    randomized:
        Plan the randomized variant of the outlier algorithm
        (Corollary 3) instead of the deterministic one (Corollary 2).
    practical_multiplier:
        The ``mu`` used for the experiment-style sizing.
    doubling_dimension:
        Known doubling dimension ``D``; when ``None`` it is estimated from
        ``sample`` (or defaults to 2 when no sample is given).
    sample:
        Optional point sample used to estimate ``D``.
    random_state:
        Seed for the estimation.
    backend:
        Executor backend to plan for (one of
        :func:`repro.mapreduce.available_backends`). ``None`` picks
        ``"distributed"`` when ``workers`` is given, ``"processes"`` on
        multi-core machines and ``"serial"`` otherwise; the plan's
        ``suggested_workers`` is sized accordingly.
    workers:
        Distributed cluster size: an integer worker-daemon count or the
        list of their addresses. Selects ``backend="distributed"`` when
        no backend is named, sizes ``suggested_workers`` to the cluster,
        and makes ``partitions_per_worker`` the per-daemon round-1 load.
        Required when ``backend="distributed"`` is named explicitly —
        the local CPU count says nothing about a remote cluster.
    streamed:
        Plan the out-of-core drive path (``fit_stream`` with chunked
        ingestion) instead of the in-memory one. The predicted
        ``coordinator_memory`` then drops from ``n`` to
        ``chunk_size + union coreset``, which is what makes datasets
        larger than the coordinator's RAM plannable at all.
    chunk_size:
        Shuffle chunk size assumed for the streamed path.
    storage:
        Partition-storage tier to plan for (one of
        :func:`repro.mapreduce.available_storage_tiers`). ``None`` or
        ``"auto"`` asks the planner to *select* one: the backend's
        natural tier (shared memory for ``"processes"``, in-process
        arrays otherwise) unless the streamed partition footprint is
        predicted to exceed ``memory_budget_bytes``, which selects
        ``"disk"``.
    memory_budget_bytes:
        Budget (bytes) for the in-memory partition tiers; only
        consulted when the tier is auto-selected for a streamed plan.
    point_dimension:
        Dimensionality ``d`` of the points, needed to predict the
        partition tier's byte footprint; when ``None`` the byte
        predictions are reported as 0 and an auto-selected tier under a
        budget conservatively spills (the runtime does the same for
        unsized streams).
    """
    n = check_positive_int(n, name="n")
    k = check_positive_int(k, name="k")
    z = check_non_negative_int(z, name="z")
    epsilon = check_epsilon(epsilon)
    if practical_multiplier < 1:
        raise ValueError("practical_multiplier must be >= 1")
    cpus = os.cpu_count() or 1
    n_workers: int | None = None
    if workers is not None:
        if isinstance(workers, int):
            n_workers = check_positive_int(workers, name="workers")
        else:
            n_workers = len(list(workers))
            if n_workers < 1:
                raise InvalidParameterError("workers must name at least one daemon")
        if backend is None:
            backend = "distributed"
    if backend is None:
        backend = "processes" if cpus > 1 else "serial"
    elif backend not in available_backends():
        raise InvalidParameterError(
            f"unknown backend {backend!r}; available: {', '.join(available_backends())}"
        )
    if backend == "distributed" and n_workers is None:
        # The local cpu_count says nothing about a remote cluster's size;
        # refusing beats fabricating a worker count the plan cannot run with.
        raise InvalidParameterError(
            "a distributed plan needs workers= (a daemon count or address list)"
        )
    dimension = _resolve_dimension(doubling_dimension, sample, random_state)

    if z == 0:
        variant = "kcenter"
        base = k
        constant = 4.0
        ell = max(1, int(round(math.sqrt(n / k))))
    elif not randomized:
        variant = "outliers"
        base = k + z
        constant = 24.0
        ell = max(1, int(round(math.sqrt(n / (k + z)))))
    else:
        variant = "outliers-randomized"
        log_term = math.log2(max(n, 2))
        ell = max(1, int(round(math.sqrt(n / (k + log_term)))))
        z_prime = int(math.ceil(6.0 * (z / ell + log_term)))
        base = k + z_prime
        constant = 24.0

    ell = min(ell, n)
    per_partition = int(math.ceil(n / ell))
    blowup = (constant / epsilon) ** dimension
    theoretical = int(math.ceil(base * blowup))
    practical = min(int(round(practical_multiplier * base)), per_partition)
    union = practical * ell
    local_memory = max(per_partition, union)
    chunk_size = check_positive_int(chunk_size, name="chunk_size")
    coordinator_memory = min(chunk_size, n) + union if streamed else n

    # Per-tier footprint of the sealed partitions: float64 rows, plus the
    # intp global-index column that rides along on the streamed path.
    if point_dimension is not None:
        point_dimension = check_positive_int(point_dimension, name="point_dimension")
        row_bytes = point_dimension * 8 + (8 if streamed else 0)
        partition_tier_bytes = n * row_bytes
    else:
        partition_tier_bytes = 0
    if storage in (None, "auto"):
        over_budget = memory_budget_bytes is not None and (
            partition_tier_bytes == 0 or partition_tier_bytes > memory_budget_bytes
        )
        if streamed and over_budget:
            storage = "disk"
        else:
            storage = "shared" if backend == "processes" else "memory"
    elif storage not in available_storage_tiers():
        raise InvalidParameterError(
            f"unknown storage tier {storage!r}; available: "
            f"{', '.join(available_storage_tiers())}"
        )
    predicted_spill = partition_tier_bytes if (streamed and storage == "disk") else 0

    if backend == "serial":
        suggested_workers = 1
    elif backend == "distributed":
        suggested_workers = max(1, min(ell, n_workers))
    else:
        suggested_workers = max(1, min(ell, cpus))

    return MapReducePlan(
        ell=ell,
        per_partition_points=per_partition,
        coreset_size_theoretical=theoretical,
        coreset_size_practical=practical,
        union_coreset_size=union,
        local_memory=local_memory,
        doubling_dimension=dimension,
        variant=variant,
        backend=backend,
        suggested_workers=suggested_workers,
        partitions_per_worker=-(-ell // suggested_workers),
        streamed=bool(streamed),
        chunk_size=chunk_size,
        coordinator_memory=coordinator_memory,
        storage=storage,
        partition_tier_bytes=partition_tier_bytes,
        predicted_spill_bytes=predicted_spill,
    )


def plan_streaming(
    k: int,
    z: int,
    *,
    epsilon: float = 1.0,
    practical_multiplier: float = 8.0,
    doubling_dimension: float | None = None,
    sample=None,
    random_state=None,
) -> StreamingPlan:
    """Suggest the streaming coreset size ``tau`` for k-center with outliers.

    Parameters mirror :func:`plan_mapreduce`; the theoretical size is the
    Theorem 3 bound ``(k + z)(96/eps)^D`` and the practical size is the
    paper's experimental knob ``mu (k + z)``.
    """
    k = check_positive_int(k, name="k")
    z = check_non_negative_int(z, name="z")
    epsilon = check_epsilon(epsilon)
    if practical_multiplier < 1:
        raise ValueError("practical_multiplier must be >= 1")
    dimension = _resolve_dimension(doubling_dimension, sample, random_state)

    theoretical = int(math.ceil((k + z) * (96.0 / epsilon) ** dimension))
    practical = int(round(practical_multiplier * (k + z)))
    return StreamingPlan(
        coreset_size_theoretical=theoretical,
        coreset_size_practical=practical,
        working_memory=practical + 1,
        doubling_dimension=dimension,
    )
