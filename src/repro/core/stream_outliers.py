"""Streaming algorithms for k-center with z outliers (Section 4).

Two algorithms are provided:

* :class:`CoresetStreamOutliers` (CORESETOUTLIERS) — the paper's 1-pass
  ``(3 + eps)``-approximation: a weighted doubling-algorithm coreset of
  ``tau`` centers is maintained during the pass and, at the end, the
  final centers are extracted with OUTLIERSCLUSTER plus the radius
  search, exactly as in the second round of the MapReduce algorithm.
  Theory sets ``tau = (k + z) (16/eps_hat)^D``; the experiments of
  Figure 5 use the space knob ``tau = mu * (k + z)``.
* :class:`TwoPassStreamOutliers` — the 2-pass variant that is *oblivious*
  to the doubling dimension: the first pass runs the doubling algorithm
  for ``(k + z)`` centers to obtain a radius estimate
  ``r_hat <= 8 r*_{k+z}``; the second pass grows a maximal weighted set
  of points with mutual distances above ``(eps/48) r_hat`` (each stream
  point is counted towards its closest retained point); the final centers
  again come from OUTLIERSCLUSTER + radius search.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import (
    check_epsilon,
    check_non_negative_int,
    check_positive_int,
)
from ..exceptions import InvalidParameterError, NotFittedError
from ..metricspace.distance import Metric, get_metric
from ..metricspace.points import WeightedPoints
from ..streaming.runner import StreamingAlgorithm
from .doubling_coreset import StreamingCoreset
from .outliers_cluster import OutliersClusterSolver
from .radius_search import search_radius

__all__ = [
    "StreamOutliersSolution",
    "CoresetStreamOutliers",
    "TwoPassStreamOutliers",
]


@dataclass(frozen=True)
class StreamOutliersSolution:
    """Final answer of a streaming k-center-with-outliers algorithm.

    Attributes
    ----------
    centers:
        ``(<=k, d)`` coordinates of the selected centers.
    estimated_radius:
        The ``r_tilde_min`` found by the radius search on the coreset.
    coreset_size:
        Number of weighted coreset points used for the final solve.
    search_probes:
        Number of OUTLIERSCLUSTER runs performed by the radius search.
    n_processed:
        Number of stream points consumed (per pass).
    """

    centers: np.ndarray
    estimated_radius: float
    coreset_size: int
    search_probes: int
    n_processed: int

    @property
    def k(self) -> int:
        """Number of returned centers."""
        return int(self.centers.shape[0])


def _solve_on_coreset(
    coreset: WeightedPoints,
    k: int,
    z: int,
    eps_hat: float,
    metric: Metric,
    n_processed: int,
) -> StreamOutliersSolution:
    """Common final phase: OUTLIERSCLUSTER + radius search on a weighted coreset."""
    solver = OutliersClusterSolver(coreset, k, eps_hat=eps_hat, metric=metric)
    search = search_radius(solver, z)
    positions = search.solution.center_indices
    return StreamOutliersSolution(
        centers=coreset.points[positions],
        estimated_radius=search.radius,
        coreset_size=len(coreset),
        search_probes=search.probes,
        n_processed=n_processed,
    )


class CoresetStreamOutliers(StreamingAlgorithm):
    """CORESETOUTLIERS: 1-pass (3+eps)-approximation for k-center with z outliers.

    Parameters
    ----------
    k, z:
        Number of centers and outlier budget.
    coreset_size:
        Explicit coreset budget ``tau``; overrides ``coreset_multiplier``.
        Must be at least ``k + z`` (the analysis requires ``tau >= k + z``;
        with fewer points the final OUTLIERSCLUSTER could not even
        distinguish the outliers).
    coreset_multiplier:
        Space knob ``mu``: ``tau = mu * (k + z)`` (default ``mu = 8``).
    eps_hat:
        Precision parameter of OUTLIERSCLUSTER (default 1/6, matching
        ``epsilon = 1``).
    metric:
        Metric name or instance.
    """

    def __init__(
        self,
        k: int,
        z: int,
        *,
        coreset_size: int | None = None,
        coreset_multiplier: float = 8.0,
        eps_hat: float = 1.0 / 6.0,
        metric: str | Metric = "euclidean",
    ) -> None:
        self.k = check_positive_int(k, name="k")
        self.z = check_non_negative_int(z, name="z")
        if coreset_size is None:
            if coreset_multiplier < 1:
                raise InvalidParameterError("coreset_multiplier must be >= 1")
            coreset_size = int(round(coreset_multiplier * (self.k + self.z)))
        self.coreset_size = check_positive_int(coreset_size, name="coreset_size")
        if self.coreset_size < self.k + self.z:
            raise InvalidParameterError("coreset_size must be at least k + z")
        if eps_hat < 0:
            raise InvalidParameterError("eps_hat must be non-negative")
        self.eps_hat = float(eps_hat)
        self.metric = get_metric(metric)
        self._coreset = StreamingCoreset(self.coreset_size, metric=self.metric)

    # -- StreamingAlgorithm protocol -----------------------------------------------------

    def process(self, point: np.ndarray) -> None:
        """Feed one stream point into the maintained weighted coreset."""
        self._coreset.process(point)

    def process_batch(self, batch: np.ndarray) -> None:
        """Feed a chunk of stream points through the vectorized update rule."""
        self._coreset.process_batch(batch)

    @property
    def working_memory_size(self) -> int:
        """Stored points (buffered + coreset centers)."""
        return self._coreset.working_memory_size

    @property
    def peak_working_memory_size(self) -> int:
        """Exact peak tracked by the coreset, drive-path independent."""
        return self._coreset.peak_working_memory_size

    def finalize(self) -> StreamOutliersSolution:
        """Extract the final centers from the weighted coreset."""
        coreset = self._coreset.coreset()
        return _solve_on_coreset(
            coreset,
            self.k,
            self.z,
            self.eps_hat,
            self.metric,
            self._coreset.n_processed,
        )


class TwoPassStreamOutliers(StreamingAlgorithm):
    """2-pass, doubling-dimension-oblivious (3+eps)-approximation with outliers.

    Parameters
    ----------
    k, z:
        Number of centers and outlier budget.
    epsilon:
        Precision parameter ``eps`` in ``(0, 1]``; the second pass keeps a
        maximal set of points with mutual distance above
        ``(epsilon / 48) * r_hat`` and OUTLIERSCLUSTER runs with
        ``eps_hat = epsilon / 6``.
    metric:
        Metric name or instance.
    max_coreset_size:
        Optional safety cap on the second-pass coreset size (the theory
        bounds it by ``(k+z)(96/eps)^D``, which is finite but can be huge
        for adversarial inputs).
    """

    n_passes = 2

    def __init__(
        self,
        k: int,
        z: int,
        *,
        epsilon: float = 1.0,
        metric: str | Metric = "euclidean",
        max_coreset_size: int | None = None,
    ) -> None:
        self.k = check_positive_int(k, name="k")
        self.z = check_non_negative_int(z, name="z")
        self.epsilon = check_epsilon(epsilon)
        self.eps_hat = self.epsilon / 6.0
        self.metric = get_metric(metric)
        self.max_coreset_size = (
            None if max_coreset_size is None
            else check_positive_int(max_coreset_size, name="max_coreset_size")
        )

        self._first_pass = StreamingCoreset(self.k + self.z, metric=self.metric)
        self._current_pass = 0
        self._separation: float | None = None
        self._points: list[np.ndarray] = []
        self._weights: list[float] = []
        self._n_processed_second = 0

    # -- StreamingAlgorithm protocol -----------------------------------------------------

    def start_pass(self, pass_index: int) -> None:
        """Switch phases between the two passes."""
        self._current_pass = pass_index
        if pass_index == 1:
            radius_estimate = 8.0 * self._first_pass.phi
            if radius_estimate <= 0.0:
                # Degenerate stream (all first-pass points coincide or very
                # short stream): fall back to keeping every distinct point.
                radius_estimate = 0.0
            self._separation = (self.epsilon / 48.0) * radius_estimate

    def process(self, point: np.ndarray) -> None:
        """First pass feeds the doubling algorithm; second pass grows the coreset."""
        if self._current_pass == 0:
            self._first_pass.process(point)
            return

        point = np.asarray(point, dtype=np.float64).reshape(-1)
        self._n_processed_second += 1
        if self._points:
            existing = np.vstack(self._points)
            distances = self.metric.point_to_points(point, existing)
            closest = int(np.argmin(distances))
            if distances[closest] <= self._separation or (
                self.max_coreset_size is not None
                and len(self._points) >= self.max_coreset_size
            ):
                self._weights[closest] += 1.0
                return
        self._points.append(np.array(point))
        self._weights.append(1.0)

    def process_batch(self, batch: np.ndarray) -> None:
        """Chunked version of :meth:`process`; equivalent to a row-by-row loop."""
        batch = np.atleast_2d(np.asarray(batch, dtype=np.float64))
        if self._current_pass == 0:
            self._first_pass.process_batch(batch)
            return
        n = batch.shape[0]
        self._n_processed_second += n
        position = 0
        while position < n and not self._points:
            self._points.append(np.array(batch[position]))
            self._weights.append(1.0)
            position += 1
        if position >= n:
            return

        tail = batch[position:]
        dmin, amin = self.metric.nearest(tail, np.vstack(self._points))
        pos = 0
        m = tail.shape[0]
        while pos < m:
            if (
                self.max_coreset_size is not None
                and len(self._points) >= self.max_coreset_size
            ):
                # At capacity every remaining point is absorbed by its
                # closest retained point; the retained set no longer grows,
                # so the cached assignments stay valid.
                self._absorb(amin[pos:])
                return
            separated = np.flatnonzero(dmin[pos:] > self._separation)
            if separated.size == 0:
                self._absorb(amin[pos:])
                return
            first = pos + int(separated[0])
            if first > pos:
                self._absorb(amin[pos:first])
            new_index = len(self._points)
            self._points.append(np.array(tail[first]))
            self._weights.append(1.0)
            pos = first + 1
            if pos < m:
                to_new = self.metric.cdist(tail[pos:], tail[first].reshape(1, -1))[:, 0]
                closer = to_new < dmin[pos:]
                dmin[pos:][closer] = to_new[closer]
                amin[pos:][closer] = new_index

    def _absorb(self, indices: np.ndarray) -> None:
        """Bulk ``weights[closest] += 1`` over a run of absorbed points."""
        counts = np.bincount(indices, minlength=len(self._weights))
        for index in np.flatnonzero(counts):
            self._weights[index] += float(counts[index])

    @property
    def working_memory_size(self) -> int:
        """Stored points across both passes' data structures."""
        return self._first_pass.working_memory_size + len(self._points)

    @property
    def peak_working_memory_size(self) -> int:
        """Exact peak across both passes, drive-path independent.

        The second-pass store only ever grows, so the peak is the larger
        of the first pass's tracked peak and the current working set.
        """
        return max(
            self._first_pass.peak_working_memory_size,
            self.working_memory_size,
        )

    def finalize(self) -> StreamOutliersSolution:
        """Extract the final centers from the second-pass weighted coreset."""
        if not self._points:
            raise NotFittedError("the second pass processed no points")
        coreset = WeightedPoints(
            points=np.vstack(self._points), weights=np.array(self._weights)
        )
        return _solve_on_coreset(
            coreset,
            self.k,
            self.z,
            self.eps_hat,
            self.metric,
            self._n_processed_second,
        )
