"""1-pass coreset-based Streaming algorithm for k-center (CORESETSTREAM).

Section 4 of the paper focuses on the outlier formulation, but notes that
the same coreset techniques give a ``(2 + eps)``-approximation Streaming
algorithm for plain k-center using ``O(k (1/eps)^D)`` working memory; the
experiments of Figure 3 call it CORESETSTREAM and compare it against the
algorithm of McCutchen and Khuller [27] (BASESTREAM).

The algorithm maintains a weighted doubling-algorithm coreset of ``tau``
centers during the pass (:class:`~repro.core.doubling_coreset.StreamingCoreset`)
and, at the end of the stream, runs GMM on the coreset to extract the
final ``k`` centers. In the experiments ``tau = mu * k`` is the space
knob.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_positive_int
from ..exceptions import InvalidParameterError
from ..metricspace.distance import Metric, get_metric
from ..streaming.runner import StreamingAlgorithm
from .doubling_coreset import StreamingCoreset
from .gmm import gmm_select

__all__ = ["StreamKCenterSolution", "CoresetStreamKCenter", "streaming_coreset_size"]


def streaming_coreset_size(
    k: int,
    z: int,
    epsilon: float,
    doubling_dimension: float,
    *,
    with_outliers: bool = True,
) -> int:
    """The theoretical coreset size ``tau`` of Theorem 3 (and its k-center analogue).

    For the outlier formulation ``tau = (k + z) * (16 / eps_hat)^D`` with
    ``eps_hat = eps / 6`` (i.e. ``(96 / eps)^D``); for plain k-center the
    paper quotes ``O(k (1/eps)^D)`` and we use ``k * (8 / eps)^D`` (the
    doubling algorithm's factor-8 radius slack divided by ``eps``).

    These bounds grow very quickly with ``D``; the experiments use the
    ``mu`` knob instead, and so do the defaults of the solver classes.
    """
    k = check_positive_int(k, name="k")
    if z < 0:
        raise InvalidParameterError("z must be non-negative")
    if epsilon <= 0 or epsilon > 1:
        raise InvalidParameterError("epsilon must lie in (0, 1]")
    if doubling_dimension < 0:
        raise InvalidParameterError("doubling_dimension must be non-negative")
    if with_outliers:
        eps_hat = epsilon / 6.0
        base = k + z
        factor = (16.0 / eps_hat) ** doubling_dimension
    else:
        base = k
        factor = (8.0 / epsilon) ** doubling_dimension
    return int(np.ceil(base * factor))


@dataclass(frozen=True)
class StreamKCenterSolution:
    """Final answer of the streaming k-center algorithm.

    Attributes
    ----------
    centers:
        ``(k, d)`` coordinates of the selected centers.
    coreset_size:
        Number of coreset points held when the stream ended.
    coreset_radius_bound:
        ``8 * phi``, the doubling algorithm's bound on the distance from
        any stream point to its proxy in the coreset.
    n_processed:
        Number of stream points consumed.
    """

    centers: np.ndarray
    coreset_size: int
    coreset_radius_bound: float
    n_processed: int

    @property
    def k(self) -> int:
        """Number of returned centers."""
        return int(self.centers.shape[0])


class CoresetStreamKCenter(StreamingAlgorithm):
    """CORESETSTREAM: 1-pass coreset-based streaming k-center.

    Parameters
    ----------
    k:
        Number of centers.
    coreset_size:
        Explicit coreset budget ``tau``; overrides ``coreset_multiplier``.
    coreset_multiplier:
        Space knob ``mu``: ``tau = mu * k`` (default ``mu = 8``).
    metric:
        Metric name or instance.
    random_state:
        Seed for the arbitrary first-center choice of the final GMM run.
    """

    def __init__(
        self,
        k: int,
        *,
        coreset_size: int | None = None,
        coreset_multiplier: float = 8.0,
        metric: str | Metric = "euclidean",
        random_state=None,
    ) -> None:
        self.k = check_positive_int(k, name="k")
        if coreset_size is None:
            if coreset_multiplier < 1:
                raise InvalidParameterError("coreset_multiplier must be >= 1")
            coreset_size = int(round(coreset_multiplier * self.k))
        self.coreset_size = check_positive_int(coreset_size, name="coreset_size")
        if self.coreset_size < self.k:
            raise InvalidParameterError("coreset_size must be at least k")
        self.metric = get_metric(metric)
        self.random_state = random_state
        self._coreset = StreamingCoreset(self.coreset_size, metric=self.metric)

    # -- StreamingAlgorithm protocol -----------------------------------------------------

    def process(self, point: np.ndarray) -> None:
        """Feed one point of the stream into the maintained coreset."""
        self._coreset.process(point)

    def process_batch(self, batch: np.ndarray) -> None:
        """Feed a chunk of stream points through the vectorized update rule."""
        self._coreset.process_batch(batch)

    @property
    def working_memory_size(self) -> int:
        """Stored points (buffered + coreset centers)."""
        return self._coreset.working_memory_size

    @property
    def peak_working_memory_size(self) -> int:
        """Exact peak tracked by the coreset, drive-path independent."""
        return self._coreset.peak_working_memory_size

    def finalize(self) -> StreamKCenterSolution:
        """Run GMM on the coreset and return the final ``k`` centers."""
        coreset = self._coreset.coreset()
        n_available = len(coreset)
        k = min(self.k, n_available)
        solution = gmm_select(
            coreset.points, k, self.metric, random_state=self.random_state
        )
        return StreamKCenterSolution(
            centers=coreset.points[solution.centers],
            coreset_size=n_available,
            coreset_radius_bound=8.0 * self._coreset.phi,
            n_processed=self._coreset.n_processed,
        )
