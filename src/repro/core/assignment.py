"""Cluster assignment and radius evaluation utilities.

These helpers implement the objective functions of the two problem
formulations:

* plain k-center radius ``r_T(S) = max_s d(s, T)``;
* the outlier radius ``r_{T,Z_T}(S)``, the maximum distance once the ``z``
  farthest points are discarded.

They are used both by the solvers (to report solution quality) and by the
evaluation harness (to compute empirical approximation ratios).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_non_negative_int, check_points
from ..exceptions import InvalidParameterError
from ..metricspace.distance import Metric, get_metric

__all__ = [
    "Clustering",
    "assign_to_centers",
    "clustering_radius",
    "radius_with_outliers",
    "evaluate_solution",
]


@dataclass(frozen=True)
class Clustering:
    """A clustering of a point set induced by a set of center coordinates.

    Attributes
    ----------
    centers:
        ``(k, d)`` coordinates of the centers.
    assignment:
        For each input point, the index (into ``centers``) of its closest
        center.
    distances:
        Distance of each input point to its assigned center.
    radius:
        Plain k-center radius (max of ``distances``).
    """

    centers: np.ndarray
    assignment: np.ndarray
    distances: np.ndarray
    radius: float

    @property
    def n_clusters(self) -> int:
        """Number of centers."""
        return int(self.centers.shape[0])

    def cluster_sizes(self) -> np.ndarray:
        """Number of points assigned to each center."""
        return np.bincount(self.assignment, minlength=self.n_clusters)

    def radius_excluding(self, n_outliers: int) -> float:
        """Radius after discarding the ``n_outliers`` farthest points."""
        return radius_from_distances(self.distances, n_outliers)

    def outlier_indices(self, n_outliers: int) -> np.ndarray:
        """Indices of the ``n_outliers`` points farthest from their centers.

        Ties at the cut-off are broken deterministically towards larger
        indices (stable sort), so the selection is reproducible across
        the in-memory and streamed drive paths.
        """
        n_outliers = check_non_negative_int(n_outliers, name="n_outliers")
        if n_outliers == 0:
            return np.empty(0, dtype=np.intp)
        order = np.argsort(self.distances, kind="stable")
        return np.sort(order[-n_outliers:])


def assign_to_centers(
    points, centers, metric: str | Metric = "euclidean"
) -> Clustering:
    """Assign every point to its closest center and compute the radius.

    Parameters
    ----------
    points:
        ``(n, d)`` input points.
    centers:
        ``(k, d)`` center coordinates (need not be a subset of ``points``).
    metric:
        Metric name or instance.
    """
    pts = check_points(points)
    ctrs = check_points(centers, name="centers")
    if pts.shape[1] != ctrs.shape[1]:
        raise InvalidParameterError(
            f"points and centers must share the dimension; got {pts.shape[1]} and {ctrs.shape[1]}"
        )
    metric = get_metric(metric)
    # Blocked nearest-center kernel: the full (n, k) cross matrix is never
    # materialised, so assigning a huge dataset to a handful of centers
    # costs O(n) output memory instead of O(n * k).
    distances, assignment = metric.nearest(pts, ctrs)
    return Clustering(
        centers=ctrs,
        assignment=assignment,
        distances=distances,
        radius=float(distances.max()),
    )


def radius_from_distances(distances: np.ndarray, n_outliers: int = 0) -> float:
    """Radius of a clustering given per-point distances, discarding outliers.

    With ``n_outliers == 0`` this is simply the maximum distance; otherwise
    the ``n_outliers`` largest distances are ignored (ties broken by
    position, as the paper allows arbitrary tie breaking).
    """
    distances = np.asarray(distances, dtype=np.float64)
    n_outliers = check_non_negative_int(n_outliers, name="n_outliers")
    if distances.ndim != 1 or distances.size == 0:
        raise InvalidParameterError("distances must be a non-empty 1-d array")
    if n_outliers >= distances.size:
        return 0.0
    if n_outliers == 0:
        return float(distances.max())
    # partition is O(n); the (n_outliers) largest values are dropped.
    kth = distances.size - n_outliers - 1
    return float(np.partition(distances, kth)[kth])


def clustering_radius(points, centers, metric: str | Metric = "euclidean") -> float:
    """Plain k-center radius of ``points`` w.r.t. ``centers``."""
    return assign_to_centers(points, centers, metric).radius


def radius_with_outliers(
    points, centers, n_outliers: int, metric: str | Metric = "euclidean"
) -> float:
    """Outlier-aware radius: max distance after discarding ``n_outliers`` points."""
    clustering = assign_to_centers(points, centers, metric)
    return clustering.radius_excluding(n_outliers)


def evaluate_solution(
    points,
    centers,
    *,
    n_outliers: int = 0,
    metric: str | Metric = "euclidean",
) -> dict:
    """Summary statistics of a k-center solution.

    Returns a dictionary with the plain radius, the outlier-aware radius,
    cluster sizes, and the indices the solution would declare outliers —
    the quantities the experiment harness logs for every run.
    """
    clustering = assign_to_centers(points, centers, metric)
    return {
        "radius": clustering.radius,
        "radius_with_outliers": clustering.radius_excluding(n_outliers),
        "n_centers": clustering.n_clusters,
        "cluster_sizes": clustering.cluster_sizes(),
        "outlier_indices": clustering.outlier_indices(n_outliers),
    }
