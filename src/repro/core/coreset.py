"""Composable coreset construction (the heart of the paper).

Each MapReduce worker (or the single streaming/sequential worker with
``ell = 1``) turns its partition ``S_i`` into a small *coreset* ``T_i`` by
running the incremental GMM traversal until a stopping condition is met,
and — for the outlier formulation — attaches to every coreset point the
number of partition points whose closest coreset point (proxy) it is.

Two stopping rules are supported, matching the paper:

* the **epsilon rule** of the analysis (Sections 3.1/3.2): run at least
  ``k`` (resp. ``k + z``) iterations, then continue until
  ``r_{T^tau}(S_i) <= (eps/2) * r_{T^k}(S_i)``;
* the **size rule** used by the experiments (Section 5): stop when the
  coreset reaches ``tau = mu * k`` (resp. ``mu * (k + z)``) points.

:class:`CoresetSpec` encodes the chosen rule; :func:`build_coreset` and
:func:`build_weighted_coreset` apply it to one partition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import (
    check_epsilon,
    check_non_negative_int,
    check_points,
    check_positive_int,
)
from ..exceptions import InvalidParameterError
from ..metricspace.distance import Metric, get_metric
from ..metricspace.points import WeightedPoints
from .gmm import GMM

__all__ = ["CoresetSpec", "CoresetResult", "build_coreset", "build_weighted_coreset"]


@dataclass(frozen=True)
class CoresetSpec:
    """How large a per-partition coreset should be.

    Exactly one of the two stopping rules is active:

    * ``epsilon`` — the theoretical rule; the coreset has at least
      ``base_size`` points and grows until the GMM radius is at most
      ``epsilon/2`` times the radius after ``base_size`` centers;
    * ``size_multiplier`` (``mu``) — the experimental rule; the coreset has
      exactly ``mu * base_size`` points (capped at the partition size).

    ``base_size`` is ``k`` for plain k-center, ``k + z`` for the
    deterministic outlier algorithm, and ``k + z'`` for the randomized
    variant; callers compute it and pass it in.

    Attributes
    ----------
    base_size:
        The reference number of centers (``k``, ``k+z``, ...).
    epsilon:
        Precision parameter of the epsilon rule, or ``None``.
    size_multiplier:
        The ``mu`` of the size rule, or ``None``.
    max_size:
        Optional hard cap on the coreset size under either rule.
    """

    base_size: int
    epsilon: float | None = None
    size_multiplier: float | None = None
    max_size: int | None = None

    def __post_init__(self) -> None:
        check_positive_int(self.base_size, name="base_size")
        if (self.epsilon is None) == (self.size_multiplier is None):
            raise InvalidParameterError(
                "exactly one of epsilon and size_multiplier must be given"
            )
        if self.epsilon is not None:
            object.__setattr__(self, "epsilon", check_epsilon(self.epsilon))
        if self.size_multiplier is not None:
            multiplier = float(self.size_multiplier)
            if multiplier < 1.0:
                raise InvalidParameterError("size_multiplier must be >= 1")
            object.__setattr__(self, "size_multiplier", multiplier)
        if self.max_size is not None:
            max_size = check_positive_int(self.max_size, name="max_size")
            if max_size < self.base_size:
                raise InvalidParameterError("max_size must be at least base_size")
            object.__setattr__(self, "max_size", max_size)

    # -- constructors ----------------------------------------------------------------

    @staticmethod
    def from_epsilon(base_size: int, epsilon: float, *, max_size: int | None = None) -> "CoresetSpec":
        """Spec using the theoretical epsilon stopping rule."""
        return CoresetSpec(base_size=base_size, epsilon=epsilon, max_size=max_size)

    @staticmethod
    def from_multiplier(base_size: int, mu: float, *, max_size: int | None = None) -> "CoresetSpec":
        """Spec using the experimental ``tau = mu * base_size`` rule."""
        return CoresetSpec(base_size=base_size, size_multiplier=mu, max_size=max_size)

    def target_size(self) -> int | None:
        """The explicit coreset size, or ``None`` under the epsilon rule."""
        if self.size_multiplier is None:
            return None
        size = int(round(self.size_multiplier * self.base_size))
        if self.max_size is not None:
            size = min(size, self.max_size)
        return size


@dataclass(frozen=True)
class CoresetResult:
    """A per-partition coreset with its proxy bookkeeping.

    Attributes
    ----------
    coreset:
        The weighted coreset points (weights are the proxy counts; they are
        all 1 when the caller asked for an unweighted coreset).
    center_indices:
        Indices of the coreset points within the partition they were
        extracted from.
    proxy_assignment:
        For each partition point, the position (into ``center_indices``) of
        its proxy, i.e. its closest coreset point.
    proxy_distances:
        Distance of each partition point to its proxy. The maximum of this
        vector is the quantity bounded by Lemmas 2 and 4.
    gmm_radius_at_base:
        GMM radius after ``base_size`` iterations (used by the epsilon rule
        and reported for diagnostics).
    """

    coreset: WeightedPoints
    center_indices: np.ndarray
    proxy_assignment: np.ndarray
    proxy_distances: np.ndarray
    gmm_radius_at_base: float

    @property
    def size(self) -> int:
        """Number of coreset points."""
        return len(self.coreset)

    @property
    def max_proxy_distance(self) -> float:
        """Largest distance from a partition point to its proxy."""
        return float(self.proxy_distances.max()) if self.proxy_distances.size else 0.0


def _run_gmm_for_spec(
    points: np.ndarray,
    spec: CoresetSpec,
    metric: Metric,
    first_center: int | None,
    random_state,
) -> GMM:
    """Run the incremental GMM traversal according to ``spec``'s stopping rule."""
    traversal = GMM(points, metric, first_center=first_center, random_state=random_state)
    n = traversal.n_points
    base = min(spec.base_size, n)
    traversal.extend_to(base)

    if spec.size_multiplier is not None:
        traversal.extend_to(min(spec.target_size(), n))
        return traversal

    # The traversal may saturate before reaching `base` centers (duplicate
    # points); reference the radius at however many centers it actually has.
    threshold = (spec.epsilon / 2.0) * traversal.radius_at(min(base, traversal.n_centers))
    limit = n if spec.max_size is None else min(spec.max_size, n)
    while traversal.radius > threshold and traversal.n_centers < limit:
        if not traversal.extend_by_one():
            break
    return traversal


def build_coreset(
    points,
    spec: CoresetSpec,
    metric: str | Metric = "euclidean",
    *,
    weighted: bool = True,
    origin_offset: int = 0,
    first_center: int | None = None,
    random_state=None,
) -> CoresetResult:
    """Build the coreset of one partition according to ``spec``.

    Parameters
    ----------
    points:
        The partition ``S_i`` as an ``(n_i, d)`` matrix.
    spec:
        Stopping rule (see :class:`CoresetSpec`).
    metric:
        Metric name or instance.
    weighted:
        When true (the outlier algorithms), every coreset point carries the
        number of partition points it is proxy for; when false (plain
        k-center), weights are all 1 and the proxy counts are ignored.
    origin_offset:
        Added to the partition-local indices when recording
        ``origin_indices`` so that coresets built from slices of a global
        dataset can refer back to global indices.
    first_center, random_state:
        Forwarded to :class:`~repro.core.gmm.GMM`.

    Returns
    -------
    CoresetResult
    """
    pts = check_points(points)
    origin_offset = check_non_negative_int(origin_offset, name="origin_offset")
    metric = get_metric(metric)

    traversal = _run_gmm_for_spec(pts, spec, metric, first_center, random_state)
    center_indices = traversal.centers
    proxy_assignment = traversal.assignment
    # The traversal's maintained distances are exactly the distances to the
    # closest selected center, i.e. the proxy distances (and they are exact
    # zeros at the centers themselves).
    proxy_distances = traversal.distances_to_centers

    if weighted:
        weights = np.bincount(proxy_assignment, minlength=center_indices.shape[0]).astype(
            np.float64
        )
        # Every center is its own proxy, so no weight can be zero; guard anyway.
        weights = np.maximum(weights, 1.0)
    else:
        weights = np.ones(center_indices.shape[0])

    coreset = WeightedPoints(
        points=pts[center_indices],
        weights=weights,
        origin_indices=center_indices + origin_offset,
    )
    return CoresetResult(
        coreset=coreset,
        center_indices=center_indices,
        proxy_assignment=proxy_assignment,
        proxy_distances=proxy_distances,
        gmm_radius_at_base=traversal.radius_at(min(spec.base_size, traversal.n_centers)),
    )


def build_weighted_coreset(
    points,
    spec: CoresetSpec,
    metric: str | Metric = "euclidean",
    **kwargs,
) -> WeightedPoints:
    """Shorthand for :func:`build_coreset` returning only the weighted coreset."""
    return build_coreset(points, spec, metric, weighted=True, **kwargs).coreset
