"""2-round MapReduce algorithms for k-center with z outliers (Section 3.2).

Two variants are provided through a single driver class:

* the **deterministic** algorithm (Theorem 2): arbitrary equal-size
  partitioning, per-partition weighted coresets of base size ``k + z``,
  final solution via OUTLIERSCLUSTER + radius search on the union —
  a ``(3 + eps)``-approximation with local memory
  ``O(sqrt(|S| (k+z)) (24/eps)^D)``;
* the **randomized** algorithm (Section 3.2.1, Corollary 3): uniformly
  random partitioning and per-partition base size ``k + z'`` with
  ``z' = 6 (z/ell + log2 |S|)`` — with high probability the same
  approximation using much smaller coresets when ``z`` is large.

Both variants accept the paper's experimental knob ``coreset_multiplier``
(``mu``) instead of the theoretical ``epsilon`` stopping rule: the
deterministic variant then uses coresets of size ``mu * (k + z)`` and the
randomized one ``mu * (k + 6 z / ell)``, exactly the configurations of
Figure 4.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from functools import partial

import numpy as np

from .._validation import (
    check_non_negative_int,
    check_points,
    check_positive_int,
    check_random_state,
)
from ..exceptions import InvalidParameterError
from ..mapreduce.backends import ExecutorBackend, SharedArray
from ..mapreduce.partitioner import (
    draw_partition_seeds,
    split_adversarial,
    split_contiguous,
    split_random,
    split_round_robin,
)
from ..mapreduce.runtime import (
    JobStats,
    MapReduceRuntime,
    StreamedPartition,
    identity_mapper,
    shuffle_point_stream,
)
from ..metricspace.distance import Metric, get_metric
from ..metricspace.points import WeightedPoints
from .assignment import assign_to_centers
from .coreset import CoresetSpec, build_coreset
from .outliers_cluster import OutliersClusterSolver
from .radius_search import search_radius

__all__ = ["MROutliersResult", "MapReduceKCenterOutliers"]


@dataclass(frozen=True)
class _CoresetPhaseOutput:
    """Round-1 reducer output: a partition's weighted coreset plus its build time.

    The timing rides along to the coordinator, which harvests it in the
    round-2 mapper; only the coreset continues into the shuffle, so memory
    accounting sees exactly the same values on every backend.
    """

    coreset: WeightedPoints
    elapsed: float


@dataclass(frozen=True)
class _SolvePhaseOutput:
    """Round-2 reducer output: the union, the radius search outcome, the solve time."""

    union: WeightedPoints
    search: object
    elapsed: float


def _coreset_reducer(
    partition_id,
    values,
    *,
    points: SharedArray,
    spec: CoresetSpec,
    metric: Metric,
    seeds: tuple[int, ...],
):
    """Build one partition's weighted coreset (round-1 reducer; picklable)."""
    indices = np.concatenate(values)
    start = time.perf_counter()
    result = build_coreset(
        points.array[indices],
        spec,
        metric,
        weighted=True,
        origin_offset=0,
        first_center=None,
        random_state=seeds[partition_id],
    )
    elapsed = time.perf_counter() - start
    coreset = WeightedPoints(
        points=result.coreset.points,
        weights=result.coreset.weights,
        origin_indices=indices[result.center_indices],
    )
    return [(0, _CoresetPhaseOutput(coreset, elapsed))]


def _solve_reducer(
    _key,
    values,
    *,
    k: int,
    z: int,
    eps_hat: float,
    metric: Metric,
):
    """Radius search + OUTLIERSCLUSTER on the coreset union (round-2 reducer; picklable)."""
    union = WeightedPoints.concatenate(values)
    start = time.perf_counter()
    solver = OutliersClusterSolver(union, k, eps_hat=eps_hat, metric=metric)
    search = search_radius(solver, z)
    elapsed = time.perf_counter() - start
    return [(0, _SolvePhaseOutput(union, search, elapsed))]


# -- streamed (out-of-core) shuffle reducers -------------------------------------------


def _stream_coreset_reducer(
    partition_id,
    values,
    *,
    spec: CoresetSpec,
    metric: Metric,
    seeds: tuple[int, ...],
):
    """Build one streamed partition's weighted coreset (round-1 reducer; picklable).

    Identical to :func:`_coreset_reducer` except that the reducer works
    on its own partition matrix instead of indexing a full shared
    dataset; global origin indices come from the partition's index
    column.
    """
    part: StreamedPartition = values[0]
    start = time.perf_counter()
    result = build_coreset(
        part.points.array,
        spec,
        metric,
        weighted=True,
        origin_offset=0,
        first_center=None,
        random_state=seeds[partition_id],
    )
    elapsed = time.perf_counter() - start
    coreset = WeightedPoints(
        points=result.coreset.points,
        weights=result.coreset.weights,
        origin_indices=part.indices.array[result.center_indices],
    )
    return [(0, _CoresetPhaseOutput(coreset, elapsed))]


@dataclass(frozen=True)
class _OutlierAssignTask:
    """Round-3 input on the streamed path: score one partition against the centers."""

    partition: StreamedPartition
    centers: np.ndarray
    z: int

    def __len__(self) -> int:
        return len(self.partition)


def _stream_assign_reducer(_partition_id, values, *, metric: Metric):
    """Per-partition distance summary vs the final centers (round-3; picklable).

    Uses the blocked :meth:`~repro.metricspace.distance.Metric.nearest`
    kernel and returns only what the coordinator needs to reconstruct
    the global outlier set: the partition's ``z + 1`` largest
    center-distances with their global indices. Merging the
    per-partition top lists recovers the exact global top ``z + 1``
    (every globally-large distance is large within its partition).
    """
    task: _OutlierAssignTask = values[0]
    indices = task.partition.indices.array
    distances, _ = metric.nearest(task.partition.points.array, task.centers)
    keep = min(task.z + 1, distances.shape[0])
    # Order by (distance, global index) — the same tie-break the global
    # selection uses — so the kept candidates are exactly the ones the
    # in-memory path would pick among equal distances.
    order = np.lexsort((indices, distances))[-keep:]
    return [(0, (distances[order], indices[order]))]


@dataclass(frozen=True)
class MROutliersResult:
    """Result of a 2-round MapReduce k-center-with-outliers run.

    Attributes
    ----------
    centers:
        ``(<=k, d)`` coordinates of the returned centers.
    center_indices:
        Indices of the centers in the original dataset (when available).
    radius:
        Radius of the dataset w.r.t. the centers **after discarding the
        z farthest points** (the problem's objective).
    radius_all_points:
        Plain radius including the outliers, for reference.
    outlier_indices:
        Indices of the ``z`` points the solution leaves farthest away.
    estimated_radius:
        The ``r_tilde_min`` found by the radius search on the coreset.
    coreset_size:
        Size of the union of the weighted coresets.
    ell:
        Number of partitions used.
    randomized:
        Whether the randomized variant was used.
    stats:
        MapReduce accounting.
    coreset_time, solve_time:
        Wall-clock seconds in the two phases (coreset construction summed
        over partitions; radius search + OUTLIERSCLUSTER for the solve).
    search_probes:
        Number of OUTLIERSCLUSTER executions performed by the radius search.
    peak_working_memory_size:
        The paper's space metric (stored points): the largest working
        set any single participant held — reducers *and* the
        coordinator. ``O(n)`` for the in-memory drive path,
        ``O(n/ell + chunk + union coreset)`` for the streamed one.
    """

    centers: np.ndarray
    center_indices: np.ndarray
    radius: float
    radius_all_points: float
    outlier_indices: np.ndarray
    estimated_radius: float
    coreset_size: int
    ell: int
    randomized: bool
    stats: JobStats
    coreset_time: float
    solve_time: float
    search_probes: int
    peak_working_memory_size: int = 0

    @property
    def k(self) -> int:
        """Number of returned centers."""
        return int(self.centers.shape[0])


class MapReduceKCenterOutliers:
    """Coreset-based 2-round MapReduce solver for k-center with z outliers.

    Parameters
    ----------
    k:
        Number of centers.
    z:
        Number of outliers the objective may discard.
    ell:
        Number of partitions (degree of parallelism).
    epsilon:
        Precision parameter; drives both the theoretical coreset stopping
        rule and ``eps_hat = epsilon / 6`` used by OUTLIERSCLUSTER.
        Mutually exclusive with ``coreset_multiplier``.
    coreset_multiplier:
        The experimental knob ``mu``: per-partition coresets of size
        ``mu * (k + z)`` (deterministic) or ``mu * (k + 6 z / ell)``
        (randomized). ``mu = 1`` with the deterministic variant is the
        baseline of [26].
    randomized:
        Use the randomized partitioning / reduced coreset variant of
        Section 3.2.1.
    eps_hat:
        Explicit override of the OUTLIERSCLUSTER precision parameter.
        Defaults to ``epsilon / 6`` when ``epsilon`` is given, else to
        ``1/6`` (i.e. the value corresponding to ``epsilon = 1``).
    partitioning:
        ``"contiguous"``, ``"round_robin"``, ``"random"`` or
        ``"adversarial"``. The adversarial option requires
        ``adversarial_indices`` (typically the planted outliers) and
        reproduces the stress setup of Figure 4. The randomized variant
        always uses random partitioning regardless of this setting.
    adversarial_indices:
        Indices forced into a single partition under adversarial
        partitioning.
    include_log_term:
        Whether ``z'`` includes the ``log2 |S|`` term of Lemma 7 (the
        paper's experiments drop it; theory keeps it). Only relevant for
        the randomized variant.
    metric, random_state, local_memory_limit, max_workers, backend, workers:
        As in :class:`~repro.core.mr_kcenter.MapReduceKCenter`
        (``workers`` are the distributed backend's daemon addresses).
    """

    def __init__(
        self,
        k: int,
        z: int,
        *,
        ell: int = 4,
        epsilon: float | None = None,
        coreset_multiplier: float | None = None,
        randomized: bool = False,
        eps_hat: float | None = None,
        partitioning: str = "contiguous",
        adversarial_indices=None,
        include_log_term: bool = True,
        metric: str | Metric = "euclidean",
        random_state=None,
        local_memory_limit: int | None = None,
        max_workers: int | None = None,
        backend: str | ExecutorBackend | None = None,
        workers=None,
    ) -> None:
        self.k = check_positive_int(k, name="k")
        self.z = check_non_negative_int(z, name="z")
        self.ell = check_positive_int(ell, name="ell")
        if epsilon is not None and coreset_multiplier is not None:
            raise InvalidParameterError(
                "epsilon and coreset_multiplier are mutually exclusive"
            )
        if epsilon is None and coreset_multiplier is None:
            epsilon = 1.0
        self.epsilon = epsilon
        self.coreset_multiplier = coreset_multiplier
        self.randomized = bool(randomized)
        if eps_hat is None:
            eps_hat = (epsilon / 6.0) if epsilon is not None else 1.0 / 6.0
        if eps_hat < 0:
            raise InvalidParameterError("eps_hat must be non-negative")
        self.eps_hat = float(eps_hat)
        valid_partitionings = {"contiguous", "round_robin", "random", "adversarial"}
        if partitioning not in valid_partitionings:
            raise InvalidParameterError(
                f"partitioning must be one of {sorted(valid_partitionings)}; got {partitioning!r}"
            )
        if partitioning == "adversarial" and adversarial_indices is None:
            raise InvalidParameterError(
                "adversarial partitioning requires adversarial_indices"
            )
        self.partitioning = partitioning
        self.adversarial_indices = (
            None
            if adversarial_indices is None
            else np.asarray(adversarial_indices, dtype=np.intp)
        )
        self.include_log_term = bool(include_log_term)
        self.metric = get_metric(metric)
        self.random_state = random_state
        self.local_memory_limit = local_memory_limit
        if max_workers is not None:
            max_workers = check_positive_int(max_workers, name="max_workers")
        self.max_workers = max_workers
        self.backend = backend
        self.workers = None if workers is None else list(workers)

    # -- helpers -----------------------------------------------------------------------

    def _z_prime(self, n: int, ell: int) -> int:
        """The randomized variant's per-partition outlier bound ``z'`` (Lemma 7)."""
        log_term = math.log2(max(n, 2)) if self.include_log_term else 0.0
        return max(1, int(math.ceil(6.0 * (self.z / ell + log_term))))

    def _base_size(self, n: int, ell: int) -> int:
        if self.randomized:
            return self.k + self._z_prime(n, ell)
        return self.k + self.z

    def _coreset_spec(self, n: int, ell: int) -> CoresetSpec:
        base = self._base_size(n, ell)
        if self.coreset_multiplier is not None:
            return CoresetSpec.from_multiplier(base, self.coreset_multiplier)
        return CoresetSpec.from_epsilon(base, self.epsilon)

    def _partition(self, n: int, ell: int, rng: np.random.Generator) -> list[np.ndarray]:
        # Empty parts (possible under random partitioning on tiny inputs)
        # are dropped by the round-1 mapper, identically in both MapReduce
        # drivers — see tests/mapreduce/test_empty_partitions.py.
        if self.randomized or self.partitioning == "random":
            return split_random(n, ell, random_state=rng)
        if self.partitioning == "adversarial":
            return split_adversarial(
                n, ell, self.adversarial_indices, random_state=rng
            )
        if self.partitioning == "round_robin":
            return split_round_robin(n, ell)
        return split_contiguous(n, ell)

    # -- main entry point --------------------------------------------------------------

    def fit(self, points) -> MROutliersResult:
        """Run the 2-round algorithm on ``points`` and return the solution."""
        pts = check_points(points)
        n = pts.shape[0]
        if self.k > n:
            raise InvalidParameterError(f"k={self.k} exceeds the dataset size {n}")
        if self.z >= n:
            raise InvalidParameterError(f"z={self.z} must be smaller than the dataset size {n}")
        rng = check_random_state(self.random_state)
        ell = min(self.ell, n)
        spec = self._coreset_spec(n, ell)
        parts = self._partition(n, ell, rng)

        # Per-partition seeds are drawn up front so reducers carry no shared
        # random state; results are identical on every backend (serial,
        # thread pool, process pool).
        partition_seeds = draw_partition_seeds(rng, len(parts))

        timings = {"coreset": 0.0}

        def first_round_mapper(_key, value):
            del value
            for partition_id, indices in enumerate(parts):
                if indices.size:
                    yield (partition_id, indices)

        def second_round_mapper(_key, value: _CoresetPhaseOutput):
            # Runs in the coordinator: harvest the per-partition build times
            # and forward only the weighted coresets into the shuffle.
            timings["coreset"] += value.elapsed
            yield (0, value.coreset)

        with MapReduceRuntime(
            local_memory_limit=self.local_memory_limit,
            max_workers=self.max_workers,
            backend=self.backend,
            workers=self.workers,
        ) as runtime:
            shared_pts = runtime.share_array(pts)
            first_round_reducer = partial(
                _coreset_reducer,
                points=shared_pts,
                spec=spec,
                metric=self.metric,
                seeds=partition_seeds,
            )
            second_round_reducer = partial(
                _solve_reducer,
                k=self.k,
                z=self.z,
                eps_hat=self.eps_hat,
                metric=self.metric,
            )
            output = runtime.execute_job(
                [(None, np.arange(n))],
                [
                    (first_round_mapper, first_round_reducer),
                    (second_round_mapper, second_round_reducer),
                ],
            )
            stats = runtime.stats

        solution: _SolvePhaseOutput = output[0][1]
        union = solution.union
        search = solution.search
        coreset_center_positions = search.solution.center_indices
        centers = union.points[coreset_center_positions]
        center_indices = (
            union.origin_indices[coreset_center_positions]
            if union.origin_indices is not None
            else np.full(coreset_center_positions.shape[0], -1, dtype=np.intp)
        )

        clustering = assign_to_centers(pts, centers, self.metric)
        return MROutliersResult(
            centers=centers,
            center_indices=center_indices,
            radius=clustering.radius_excluding(self.z),
            radius_all_points=clustering.radius,
            outlier_indices=clustering.outlier_indices(self.z),
            estimated_radius=search.radius,
            coreset_size=len(union),
            ell=sum(1 for p in parts if p.size),
            randomized=self.randomized,
            stats=stats,
            coreset_time=timings["coreset"],
            solve_time=solution.elapsed,
            search_probes=search.probes,
            peak_working_memory_size=stats.peak_working_memory_size,
        )

    def fit_stream(
        self,
        stream,
        *,
        chunk_size: int = 4096,
        storage: str = "auto",
        spill_dir: str | None = None,
        memory_budget_bytes: int | None = None,
    ) -> MROutliersResult:
        """Run the 2-round algorithm on a chunked point stream, out of core.

        Equivalent to :meth:`fit` on the same points in the same order —
        bit-identical centers, radii and outlier sets on every backend —
        without the coordinator ever materialising the ``(n, d)``
        matrix. The shuffle routes chunks directly into per-partition
        buffers (shared-memory segments under the ``"processes"``
        backend); a third MapReduce round evaluates the final solution
        by scoring each partition against the centers with the blocked
        :meth:`~repro.metricspace.distance.Metric.nearest` kernel and
        returning only its ``z + 1`` largest distances, from which the
        coordinator reconstructs the exact global outlier set and radii.

        Parameters
        ----------
        stream:
            A :class:`~repro.streaming.stream.PointStream`, or any
            iterable of points / point batches. ``"contiguous"``
            partitioning needs a known stream length;
            ``"adversarial"`` partitioning is inherently offline and not
            supported here. For unknown-length streams ``ell`` is used
            as given (the in-memory path caps it at ``n``), so exact
            ``fit`` equivalence additionally needs ``ell <= n`` or a
            sized stream.
        chunk_size:
            Rows per routing chunk; also the coordinator's transient
            working set during the shuffle.
        storage:
            Partition-storage tier for the shuffle: ``"auto"``
            (default), ``"memory"``, ``"shared"`` or ``"disk"``. Under
            ``"auto"`` with a ``memory_budget_bytes``, streams whose
            estimated partition footprint exceeds the budget spill to
            disk; ``stats.storage_tier`` / ``stats.spilled_bytes``
            report what ran. Every tier is bit-identical.
        spill_dir:
            Directory for ``"disk"``-tier spill files (default: a
            run-owned temporary directory, removed afterwards).
        memory_budget_bytes:
            In-memory partition budget consulted by ``storage="auto"``.
        """
        chunk_size = check_positive_int(chunk_size, name="chunk_size")
        if self.partitioning == "adversarial" and not self.randomized:
            raise InvalidParameterError(
                "adversarial partitioning requires the full index set up front "
                "and cannot be streamed; use fit() instead"
            )
        rng = check_random_state(self.random_state)
        partitioning = (
            "random" if self.randomized or self.partitioning == "random"
            else self.partitioning
        )

        with MapReduceRuntime(
            local_memory_limit=self.local_memory_limit,
            max_workers=self.max_workers,
            backend=self.backend,
            workers=self.workers,
            storage=storage,
            spill_dir=spill_dir,
            memory_budget_bytes=memory_budget_bytes,
        ) as runtime:
            parts, n, ell = shuffle_point_stream(
                runtime,
                stream,
                ell=self.ell,
                partitioning=partitioning,
                rng=rng,
                chunk_size=chunk_size,
            )
            if self.k > n:
                raise InvalidParameterError(f"k={self.k} exceeds the dataset size {n}")
            if self.z >= n:
                raise InvalidParameterError(
                    f"z={self.z} must be smaller than the dataset size {n}"
                )
            spec = self._coreset_spec(n, ell)
            partition_seeds = draw_partition_seeds(rng, len(parts))

            coreset_pairs = [
                (partition_id, part)
                for partition_id, part in enumerate(parts)
                if len(part)
            ]
            coreset_outputs = runtime.execute_round(
                coreset_pairs,
                identity_mapper,
                partial(
                    _stream_coreset_reducer,
                    spec=spec,
                    metric=self.metric,
                    seeds=partition_seeds,
                ),
            )
            coreset_time = sum(value.elapsed for _, value in coreset_outputs)

            solve_pairs = [(0, value.coreset) for _, value in coreset_outputs]
            solution: _SolvePhaseOutput = runtime.execute_round(
                solve_pairs,
                identity_mapper,
                partial(
                    _solve_reducer,
                    k=self.k,
                    z=self.z,
                    eps_hat=self.eps_hat,
                    metric=self.metric,
                ),
            )[0][1]
            union = solution.union
            search = solution.search
            runtime.note_coordinator_items(len(union))
            coreset_center_positions = search.solution.center_indices
            centers = union.points[coreset_center_positions]
            center_indices = (
                union.origin_indices[coreset_center_positions]
                if union.origin_indices is not None
                else np.full(coreset_center_positions.shape[0], -1, dtype=np.intp)
            )

            assign_pairs = [
                (partition_id, _OutlierAssignTask(part, centers, self.z))
                for partition_id, part in enumerate(parts)
                if len(part)
            ]
            assign_outputs = runtime.execute_round(
                assign_pairs,
                identity_mapper,
                partial(_stream_assign_reducer, metric=self.metric),
            )
            stats = runtime.stats

        # Merge the per-partition top-(z+1) summaries into the global
        # outlier set. Sorting by (distance, index) reproduces the stable
        # tie-break of Clustering.outlier_indices, so the streamed path
        # selects exactly the outliers the in-memory path selects.
        top_distances = np.concatenate([value[0] for _, value in assign_outputs])
        top_indices = np.concatenate([value[1] for _, value in assign_outputs])
        order = np.lexsort((top_indices, top_distances))
        radius_all = float(top_distances[order[-1]])
        if self.z == 0:
            outlier_indices = np.empty(0, dtype=np.intp)
            radius = radius_all
        else:
            outlier_indices = np.sort(top_indices[order[-self.z :]])
            radius = float(top_distances[order[-(self.z + 1)]])

        return MROutliersResult(
            centers=centers,
            center_indices=center_indices,
            radius=radius,
            radius_all_points=radius_all,
            outlier_indices=outlier_indices,
            estimated_radius=search.radius,
            coreset_size=len(union),
            ell=len(coreset_pairs),
            randomized=self.randomized,
            stats=stats,
            coreset_time=coreset_time,
            solve_time=solution.elapsed,
            search_probes=search.probes,
            peak_working_memory_size=stats.peak_working_memory_size,
        )
