"""2-round MapReduce algorithms for k-center with z outliers (Section 3.2).

Two variants are provided through a single driver class:

* the **deterministic** algorithm (Theorem 2): arbitrary equal-size
  partitioning, per-partition weighted coresets of base size ``k + z``,
  final solution via OUTLIERSCLUSTER + radius search on the union —
  a ``(3 + eps)``-approximation with local memory
  ``O(sqrt(|S| (k+z)) (24/eps)^D)``;
* the **randomized** algorithm (Section 3.2.1, Corollary 3): uniformly
  random partitioning and per-partition base size ``k + z'`` with
  ``z' = 6 (z/ell + log2 |S|)`` — with high probability the same
  approximation using much smaller coresets when ``z`` is large.

Both variants accept the paper's experimental knob ``coreset_multiplier``
(``mu``) instead of the theoretical ``epsilon`` stopping rule: the
deterministic variant then uses coresets of size ``mu * (k + z)`` and the
randomized one ``mu * (k + 6 z / ell)``, exactly the configurations of
Figure 4.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from functools import partial

import numpy as np

from .._validation import (
    check_non_negative_int,
    check_points,
    check_positive_int,
    check_random_state,
)
from ..exceptions import InvalidParameterError
from ..mapreduce.backends import ExecutorBackend, SharedArray
from ..mapreduce.partitioner import (
    split_adversarial,
    split_contiguous,
    split_random,
    split_round_robin,
)
from ..mapreduce.runtime import JobStats, MapReduceRuntime
from ..metricspace.distance import Metric, get_metric
from ..metricspace.points import WeightedPoints
from .assignment import assign_to_centers
from .coreset import CoresetSpec, build_coreset
from .outliers_cluster import OutliersClusterSolver
from .radius_search import search_radius

__all__ = ["MROutliersResult", "MapReduceKCenterOutliers"]


@dataclass(frozen=True)
class _CoresetPhaseOutput:
    """Round-1 reducer output: a partition's weighted coreset plus its build time.

    The timing rides along to the coordinator, which harvests it in the
    round-2 mapper; only the coreset continues into the shuffle, so memory
    accounting sees exactly the same values on every backend.
    """

    coreset: WeightedPoints
    elapsed: float


@dataclass(frozen=True)
class _SolvePhaseOutput:
    """Round-2 reducer output: the union, the radius search outcome, the solve time."""

    union: WeightedPoints
    search: object
    elapsed: float


def _coreset_reducer(
    partition_id,
    values,
    *,
    points: SharedArray,
    spec: CoresetSpec,
    metric: Metric,
    seeds: dict[int, int],
):
    """Build one partition's weighted coreset (round-1 reducer; picklable)."""
    indices = np.concatenate(values)
    start = time.perf_counter()
    result = build_coreset(
        points.array[indices],
        spec,
        metric,
        weighted=True,
        origin_offset=0,
        first_center=None,
        random_state=seeds[partition_id],
    )
    elapsed = time.perf_counter() - start
    coreset = WeightedPoints(
        points=result.coreset.points,
        weights=result.coreset.weights,
        origin_indices=indices[result.center_indices],
    )
    return [(0, _CoresetPhaseOutput(coreset, elapsed))]


def _solve_reducer(
    _key,
    values,
    *,
    k: int,
    z: int,
    eps_hat: float,
    metric: Metric,
):
    """Radius search + OUTLIERSCLUSTER on the coreset union (round-2 reducer; picklable)."""
    union = WeightedPoints.concatenate(values)
    start = time.perf_counter()
    solver = OutliersClusterSolver(union, k, eps_hat=eps_hat, metric=metric)
    search = search_radius(solver, z)
    elapsed = time.perf_counter() - start
    return [(0, _SolvePhaseOutput(union, search, elapsed))]


@dataclass(frozen=True)
class MROutliersResult:
    """Result of a 2-round MapReduce k-center-with-outliers run.

    Attributes
    ----------
    centers:
        ``(<=k, d)`` coordinates of the returned centers.
    center_indices:
        Indices of the centers in the original dataset (when available).
    radius:
        Radius of the dataset w.r.t. the centers **after discarding the
        z farthest points** (the problem's objective).
    radius_all_points:
        Plain radius including the outliers, for reference.
    outlier_indices:
        Indices of the ``z`` points the solution leaves farthest away.
    estimated_radius:
        The ``r_tilde_min`` found by the radius search on the coreset.
    coreset_size:
        Size of the union of the weighted coresets.
    ell:
        Number of partitions used.
    randomized:
        Whether the randomized variant was used.
    stats:
        MapReduce accounting.
    coreset_time, solve_time:
        Wall-clock seconds in the two phases (coreset construction summed
        over partitions; radius search + OUTLIERSCLUSTER for the solve).
    search_probes:
        Number of OUTLIERSCLUSTER executions performed by the radius search.
    """

    centers: np.ndarray
    center_indices: np.ndarray
    radius: float
    radius_all_points: float
    outlier_indices: np.ndarray
    estimated_radius: float
    coreset_size: int
    ell: int
    randomized: bool
    stats: JobStats
    coreset_time: float
    solve_time: float
    search_probes: int

    @property
    def k(self) -> int:
        """Number of returned centers."""
        return int(self.centers.shape[0])


class MapReduceKCenterOutliers:
    """Coreset-based 2-round MapReduce solver for k-center with z outliers.

    Parameters
    ----------
    k:
        Number of centers.
    z:
        Number of outliers the objective may discard.
    ell:
        Number of partitions (degree of parallelism).
    epsilon:
        Precision parameter; drives both the theoretical coreset stopping
        rule and ``eps_hat = epsilon / 6`` used by OUTLIERSCLUSTER.
        Mutually exclusive with ``coreset_multiplier``.
    coreset_multiplier:
        The experimental knob ``mu``: per-partition coresets of size
        ``mu * (k + z)`` (deterministic) or ``mu * (k + 6 z / ell)``
        (randomized). ``mu = 1`` with the deterministic variant is the
        baseline of [26].
    randomized:
        Use the randomized partitioning / reduced coreset variant of
        Section 3.2.1.
    eps_hat:
        Explicit override of the OUTLIERSCLUSTER precision parameter.
        Defaults to ``epsilon / 6`` when ``epsilon`` is given, else to
        ``1/6`` (i.e. the value corresponding to ``epsilon = 1``).
    partitioning:
        ``"contiguous"``, ``"round_robin"``, ``"random"`` or
        ``"adversarial"``. The adversarial option requires
        ``adversarial_indices`` (typically the planted outliers) and
        reproduces the stress setup of Figure 4. The randomized variant
        always uses random partitioning regardless of this setting.
    adversarial_indices:
        Indices forced into a single partition under adversarial
        partitioning.
    include_log_term:
        Whether ``z'`` includes the ``log2 |S|`` term of Lemma 7 (the
        paper's experiments drop it; theory keeps it). Only relevant for
        the randomized variant.
    metric, random_state, local_memory_limit, max_workers, backend:
        As in :class:`~repro.core.mr_kcenter.MapReduceKCenter`.
    """

    def __init__(
        self,
        k: int,
        z: int,
        *,
        ell: int = 4,
        epsilon: float | None = None,
        coreset_multiplier: float | None = None,
        randomized: bool = False,
        eps_hat: float | None = None,
        partitioning: str = "contiguous",
        adversarial_indices=None,
        include_log_term: bool = True,
        metric: str | Metric = "euclidean",
        random_state=None,
        local_memory_limit: int | None = None,
        max_workers: int | None = None,
        backend: str | ExecutorBackend | None = None,
    ) -> None:
        self.k = check_positive_int(k, name="k")
        self.z = check_non_negative_int(z, name="z")
        self.ell = check_positive_int(ell, name="ell")
        if epsilon is not None and coreset_multiplier is not None:
            raise InvalidParameterError(
                "epsilon and coreset_multiplier are mutually exclusive"
            )
        if epsilon is None and coreset_multiplier is None:
            epsilon = 1.0
        self.epsilon = epsilon
        self.coreset_multiplier = coreset_multiplier
        self.randomized = bool(randomized)
        if eps_hat is None:
            eps_hat = (epsilon / 6.0) if epsilon is not None else 1.0 / 6.0
        if eps_hat < 0:
            raise InvalidParameterError("eps_hat must be non-negative")
        self.eps_hat = float(eps_hat)
        valid_partitionings = {"contiguous", "round_robin", "random", "adversarial"}
        if partitioning not in valid_partitionings:
            raise InvalidParameterError(
                f"partitioning must be one of {sorted(valid_partitionings)}; got {partitioning!r}"
            )
        if partitioning == "adversarial" and adversarial_indices is None:
            raise InvalidParameterError(
                "adversarial partitioning requires adversarial_indices"
            )
        self.partitioning = partitioning
        self.adversarial_indices = (
            None
            if adversarial_indices is None
            else np.asarray(adversarial_indices, dtype=np.intp)
        )
        self.include_log_term = bool(include_log_term)
        self.metric = get_metric(metric)
        self.random_state = random_state
        self.local_memory_limit = local_memory_limit
        if max_workers is not None:
            max_workers = check_positive_int(max_workers, name="max_workers")
        self.max_workers = max_workers
        self.backend = backend

    # -- helpers -----------------------------------------------------------------------

    def _z_prime(self, n: int, ell: int) -> int:
        """The randomized variant's per-partition outlier bound ``z'`` (Lemma 7)."""
        log_term = math.log2(max(n, 2)) if self.include_log_term else 0.0
        return max(1, int(math.ceil(6.0 * (self.z / ell + log_term))))

    def _base_size(self, n: int, ell: int) -> int:
        if self.randomized:
            return self.k + self._z_prime(n, ell)
        return self.k + self.z

    def _coreset_spec(self, n: int, ell: int) -> CoresetSpec:
        base = self._base_size(n, ell)
        if self.coreset_multiplier is not None:
            return CoresetSpec.from_multiplier(base, self.coreset_multiplier)
        return CoresetSpec.from_epsilon(base, self.epsilon)

    def _partition(self, n: int, ell: int, rng: np.random.Generator) -> list[np.ndarray]:
        if self.randomized or self.partitioning == "random":
            parts = split_random(n, ell, random_state=rng)
            if any(p.size == 0 for p in parts):
                parts = split_round_robin(n, ell)
            return parts
        if self.partitioning == "adversarial":
            return split_adversarial(
                n, ell, self.adversarial_indices, random_state=rng
            )
        if self.partitioning == "round_robin":
            return split_round_robin(n, ell)
        return split_contiguous(n, ell)

    # -- main entry point --------------------------------------------------------------

    def fit(self, points) -> MROutliersResult:
        """Run the 2-round algorithm on ``points`` and return the solution."""
        pts = check_points(points)
        n = pts.shape[0]
        if self.k > n:
            raise InvalidParameterError(f"k={self.k} exceeds the dataset size {n}")
        if self.z >= n:
            raise InvalidParameterError(f"z={self.z} must be smaller than the dataset size {n}")
        rng = check_random_state(self.random_state)
        ell = min(self.ell, n)
        spec = self._coreset_spec(n, ell)
        parts = self._partition(n, ell, rng)

        # Per-partition seeds are drawn up front so reducers carry no shared
        # random state; results are identical on every backend (serial,
        # thread pool, process pool).
        partition_seeds = {
            partition_id: int(rng.integers(2**31 - 1)) for partition_id in range(len(parts))
        }

        timings = {"coreset": 0.0}

        def first_round_mapper(_key, value):
            del value
            for partition_id, indices in enumerate(parts):
                if indices.size:
                    yield (partition_id, indices)

        def second_round_mapper(_key, value: _CoresetPhaseOutput):
            # Runs in the coordinator: harvest the per-partition build times
            # and forward only the weighted coresets into the shuffle.
            timings["coreset"] += value.elapsed
            yield (0, value.coreset)

        with MapReduceRuntime(
            local_memory_limit=self.local_memory_limit,
            max_workers=self.max_workers,
            backend=self.backend,
        ) as runtime:
            shared_pts = runtime.share_array(pts)
            first_round_reducer = partial(
                _coreset_reducer,
                points=shared_pts,
                spec=spec,
                metric=self.metric,
                seeds=partition_seeds,
            )
            second_round_reducer = partial(
                _solve_reducer,
                k=self.k,
                z=self.z,
                eps_hat=self.eps_hat,
                metric=self.metric,
            )
            output = runtime.execute_job(
                [(None, np.arange(n))],
                [
                    (first_round_mapper, first_round_reducer),
                    (second_round_mapper, second_round_reducer),
                ],
            )
            stats = runtime.stats

        solution: _SolvePhaseOutput = output[0][1]
        union = solution.union
        search = solution.search
        coreset_center_positions = search.solution.center_indices
        centers = union.points[coreset_center_positions]
        center_indices = (
            union.origin_indices[coreset_center_positions]
            if union.origin_indices is not None
            else np.full(coreset_center_positions.shape[0], -1, dtype=np.intp)
        )

        clustering = assign_to_centers(pts, centers, self.metric)
        return MROutliersResult(
            centers=centers,
            center_indices=center_indices,
            radius=clustering.radius_excluding(self.z),
            radius_all_points=clustering.radius,
            outlier_indices=clustering.outlier_indices(self.z),
            estimated_radius=search.radius,
            coreset_size=len(union),
            ell=ell,
            randomized=self.randomized,
            stats=stats,
            coreset_time=timings["coreset"],
            solve_time=solution.elapsed,
            search_probes=search.probes,
        )
