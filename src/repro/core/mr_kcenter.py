"""2-round MapReduce algorithm for k-center (Section 3.1, Theorem 1).

Round 1 partitions the input into ``ell`` subsets and, in parallel, runs
the incremental GMM traversal on each subset until the coreset stopping
rule is met (either the theoretical ``epsilon`` rule or the experimental
``tau = mu * k`` rule). Round 2 gathers the union of the per-partition
coresets into one reducer and runs GMM on the union to produce the final
``k`` centers. The result is a ``(2 + eps)``-approximation with local
memory ``O(|S|/ell + ell * k * (4/eps)^D)``.

Setting ``coreset_multiplier = 1`` recovers the algorithm of Malkomes et
al. [26] (the paper's baseline in Figure 2), which is also exposed
directly as :class:`repro.baselines.malkomes.MalkomesKCenter`.

The reducers are module-level functions parameterised with
:func:`functools.partial` over picklable arguments (the point matrix
travels as a :class:`~repro.mapreduce.backends.SharedArray`), so the
driver runs unchanged — and produces identical results — on every
executor backend, including ``"processes"``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import partial

import numpy as np

from .._validation import check_points, check_positive_int, check_random_state
from ..exceptions import InvalidParameterError
from ..mapreduce.backends import ExecutorBackend, SharedArray
from ..mapreduce.partitioner import (
    draw_partition_seeds,
    split_contiguous,
    split_random,
    split_round_robin,
)
from ..mapreduce.runtime import (
    JobStats,
    MapReduceRuntime,
    StreamedPartition,
    identity_mapper,
    shuffle_point_stream,
)
from ..metricspace.distance import Metric, get_metric
from .assignment import assign_to_centers
from .coreset import CoresetSpec, build_coreset
from .gmm import gmm_select

__all__ = ["MRKCenterResult", "MapReduceKCenter"]


_PARTITIONERS = {
    "contiguous": split_contiguous,
    "round_robin": split_round_robin,
    "random": split_random,
}


@dataclass(frozen=True)
class _CoresetPhaseOutput:
    """Round-1 reducer output: a partition's coreset plus its build time.

    The timing rides along to the coordinator, which harvests it in the
    round-2 mapper; only the indices continue into the shuffle, so memory
    accounting sees exactly the same values on every backend.
    """

    indices: np.ndarray
    elapsed: float


@dataclass(frozen=True)
class _SolvePhaseOutput:
    """Round-2 reducer output: the final solution data plus the solve time."""

    center_indices: np.ndarray
    coreset_size: int
    elapsed: float


# -- streamed (out-of-core) shuffle payloads and reducers ------------------------------


@dataclass(frozen=True)
class _StreamedCoreset:
    """Round-1 output on the streamed path: coreset rows with global indices."""

    points: np.ndarray
    origin_indices: np.ndarray
    elapsed: float

    def __len__(self) -> int:
        return int(self.points.shape[0])


@dataclass(frozen=True)
class _StreamedSolution:
    """Round-2 output on the streamed path: the solution with coordinates."""

    centers: np.ndarray
    center_indices: np.ndarray
    coreset_size: int
    elapsed: float


@dataclass(frozen=True)
class _AssignTask:
    """Round-3 input on the streamed path: score one partition against the centers."""

    partition: StreamedPartition
    centers: np.ndarray

    def __len__(self) -> int:
        return len(self.partition)


def _coreset_reducer(
    partition_id,
    values,
    *,
    points: SharedArray,
    spec: CoresetSpec,
    metric: Metric,
    seeds: tuple[int, ...],
):
    """Build the coreset of one partition (round-1 reducer; picklable)."""
    indices = np.concatenate(values)
    start = time.perf_counter()
    result = build_coreset(
        points.array[indices],
        spec,
        metric,
        weighted=False,
        first_center=None,
        random_state=seeds[partition_id],
    )
    elapsed = time.perf_counter() - start
    return [(0, _CoresetPhaseOutput(indices[result.center_indices], elapsed))]


def _solve_reducer(
    _key,
    values,
    *,
    points: SharedArray,
    k: int,
    metric: Metric,
    seed: int,
):
    """Run GMM on the union of the coresets (round-2 reducer; picklable)."""
    union_indices = np.concatenate(values)
    start = time.perf_counter()
    solution = gmm_select(
        points.array[union_indices],
        k,
        metric,
        first_center=None,
        random_state=seed,
    )
    elapsed = time.perf_counter() - start
    return [
        (
            0,
            _SolvePhaseOutput(
                center_indices=union_indices[solution.centers],
                coreset_size=int(union_indices.shape[0]),
                elapsed=elapsed,
            ),
        )
    ]


def _stream_coreset_reducer(
    partition_id,
    values,
    *,
    spec: CoresetSpec,
    metric: Metric,
    seeds: tuple[int, ...],
):
    """Build the coreset of one streamed partition (round-1 reducer; picklable).

    Identical to :func:`_coreset_reducer` except that the reducer works
    on its own partition matrix (no full shared dataset exists) and
    therefore forwards coreset *coordinates* alongside the global
    indices.
    """
    part: StreamedPartition = values[0]
    start = time.perf_counter()
    result = build_coreset(
        part.points.array,
        spec,
        metric,
        weighted=False,
        first_center=None,
        random_state=seeds[partition_id],
    )
    elapsed = time.perf_counter() - start
    return [
        (
            0,
            _StreamedCoreset(
                points=part.points.array[result.center_indices],
                origin_indices=part.indices.array[result.center_indices],
                elapsed=elapsed,
            ),
        )
    ]


def _stream_solve_reducer(
    _key,
    values,
    *,
    k: int,
    metric: Metric,
    seed: int,
):
    """Run GMM on the union of the streamed coresets (round-2 reducer; picklable)."""
    union_points = np.concatenate([value.points for value in values])
    union_origin = np.concatenate([value.origin_indices for value in values])
    start = time.perf_counter()
    solution = gmm_select(
        union_points,
        k,
        metric,
        first_center=None,
        random_state=seed,
    )
    elapsed = time.perf_counter() - start
    return [
        (
            0,
            _StreamedSolution(
                centers=union_points[solution.centers],
                center_indices=union_origin[solution.centers],
                coreset_size=int(union_points.shape[0]),
                elapsed=elapsed,
            ),
        )
    ]


def _stream_assign_reducer(_partition_id, values, *, metric: Metric):
    """Radius of one partition w.r.t. the final centers (round-3 reducer; picklable).

    Uses the blocked :meth:`~repro.metricspace.distance.Metric.nearest`
    kernel, so the reducer's working set stays at its partition plus the
    ``k`` centers — never the ``(n_i, k)`` cross matrix.
    """
    task: _AssignTask = values[0]
    distances, _ = metric.nearest(task.partition.points.array, task.centers)
    return [(0, float(distances.max()))]


@dataclass(frozen=True)
class MRKCenterResult:
    """Result of a 2-round MapReduce k-center run.

    Attributes
    ----------
    centers:
        ``(k, d)`` coordinates of the returned centers.
    center_indices:
        Indices of the centers in the original dataset.
    radius:
        Radius of the dataset with respect to the returned centers.
    coreset_size:
        Size of the union of the per-partition coresets handled by the
        second-round reducer.
    ell:
        Number of partitions (degree of parallelism) used.
    stats:
        MapReduce accounting (rounds, local / aggregate memory, parallel
        time estimate).
    coreset_time:
        Wall-clock seconds spent building the per-partition coresets
        (sum over partitions; divide by ``ell`` for the ideal parallel time,
        or use ``stats`` for the slowest-reducer estimate).
    solve_time:
        Wall-clock seconds spent solving on the union of the coresets.
    peak_working_memory_size:
        The paper's space metric (stored points): the largest working
        set any single participant held — reducers *and* the
        coordinator. ``O(n)`` for the in-memory drive path,
        ``O(n/ell + chunk + union coreset)`` for the streamed one.
    """

    centers: np.ndarray
    center_indices: np.ndarray
    radius: float
    coreset_size: int
    ell: int
    stats: JobStats
    coreset_time: float
    solve_time: float
    peak_working_memory_size: int = 0

    @property
    def k(self) -> int:
        """Number of returned centers."""
        return int(self.centers.shape[0])


class MapReduceKCenter:
    """Coreset-based 2-round MapReduce solver for the k-center problem.

    Parameters
    ----------
    k:
        Number of centers.
    ell:
        Number of partitions (the paper's degree of parallelism). The
        theory suggests ``ell = Theta(sqrt(|S| / k))``; any value >= 1 works.
    epsilon:
        Precision parameter of the theoretical coreset stopping rule.
        Mutually exclusive with ``coreset_multiplier``; if neither is
        given, ``epsilon = 1.0`` is used.
    coreset_multiplier:
        The experimental knob ``mu``: each partition contributes a coreset
        of exactly ``mu * k`` points. ``mu = 1`` is the baseline of [26].
    partitioning:
        ``"contiguous"`` (default), ``"round_robin"`` or ``"random"``.
    metric:
        Metric name or instance.
    random_state:
        Seed for the random partitioning and the arbitrary choice of the
        first GMM center in each partition.
    local_memory_limit:
        Optional per-reducer memory cap (items) enforced by the runtime.
    max_workers:
        Workers used by the runtime to execute the per-partition coreset
        constructions concurrently (1 = sequential). The result is
        deterministic for any value because per-partition seeds are drawn
        up front.
    backend:
        Executor backend for the runtime: ``"serial"``, ``"threads"``,
        ``"processes"``, ``"distributed"``, an instance, or ``None``
        (threads when ``max_workers`` > 1, distributed when ``workers``
        is given, serial otherwise). All backends produce identical
        centers, radii and accounting, modulo timings.
    workers:
        Worker daemon addresses (``["host:port", ...]``) for the
        distributed backend — see the "Distributed backend" section of
        the :mod:`repro.mapreduce.runtime` docstring. Each daemon is
        started with ``repro worker --listen HOST:PORT``.

    Examples
    --------
    >>> from repro.datasets import gaussian_mixture, GaussianMixtureSpec
    >>> pts = gaussian_mixture(500, GaussianMixtureSpec(5, 2), random_state=0)
    >>> result = MapReduceKCenter(k=5, ell=4, coreset_multiplier=4,
    ...                           random_state=0).fit(pts)
    >>> result.k
    5
    """

    def __init__(
        self,
        k: int,
        *,
        ell: int = 4,
        epsilon: float | None = None,
        coreset_multiplier: float | None = None,
        partitioning: str = "contiguous",
        metric: str | Metric = "euclidean",
        random_state=None,
        local_memory_limit: int | None = None,
        max_workers: int | None = None,
        backend: str | ExecutorBackend | None = None,
        workers=None,
    ) -> None:
        self.k = check_positive_int(k, name="k")
        self.ell = check_positive_int(ell, name="ell")
        if epsilon is not None and coreset_multiplier is not None:
            raise InvalidParameterError(
                "epsilon and coreset_multiplier are mutually exclusive"
            )
        if epsilon is None and coreset_multiplier is None:
            epsilon = 1.0
        self.epsilon = epsilon
        self.coreset_multiplier = coreset_multiplier
        if partitioning not in _PARTITIONERS:
            raise InvalidParameterError(
                f"partitioning must be one of {sorted(_PARTITIONERS)}; got {partitioning!r}"
            )
        self.partitioning = partitioning
        self.metric = get_metric(metric)
        self.random_state = random_state
        self.local_memory_limit = local_memory_limit
        if max_workers is not None:
            max_workers = check_positive_int(max_workers, name="max_workers")
        self.max_workers = max_workers
        self.backend = backend
        self.workers = None if workers is None else list(workers)

    # -- helpers -----------------------------------------------------------------------

    def _coreset_spec(self) -> CoresetSpec:
        if self.coreset_multiplier is not None:
            return CoresetSpec.from_multiplier(self.k, self.coreset_multiplier)
        return CoresetSpec.from_epsilon(self.k, self.epsilon)

    def _partition(self, n: int, rng: np.random.Generator) -> list[np.ndarray]:
        # Random partitioning can leave a part empty on tiny inputs; both
        # MapReduce drivers handle that identically by *dropping* empty
        # parts (the round-1 mappers skip them), which only lowers the
        # effective parallelism — see tests/mapreduce/test_empty_partitions.py.
        ell = min(self.ell, n)
        if self.partitioning == "random":
            return split_random(n, ell, random_state=rng)
        return _PARTITIONERS[self.partitioning](n, ell)

    # -- main entry point --------------------------------------------------------------

    def fit(self, points) -> MRKCenterResult:
        """Run the 2-round algorithm on ``points`` and return the solution."""
        pts = check_points(points)
        n = pts.shape[0]
        if self.k > n:
            raise InvalidParameterError(f"k={self.k} exceeds the dataset size {n}")
        rng = check_random_state(self.random_state)
        spec = self._coreset_spec()
        parts = self._partition(n, rng)

        # Per-partition seeds (and the second-round seed) are drawn up front
        # so that reducers are free of shared mutable state and the result is
        # identical on every backend (serial, thread pool, process pool).
        partition_seeds = draw_partition_seeds(rng, len(parts))
        final_seed = int(rng.integers(2**31 - 1))

        timings = {"coreset": 0.0}

        def first_round_mapper(_key, value):
            # The mapper only routes point indices to their partition; it is
            # the constant-space transformation the paper describes. Empty
            # parts (possible under random partitioning on tiny inputs) are
            # dropped, matching the outlier driver and the streamed path.
            del value
            for partition_id, indices in enumerate(parts):
                if indices.size:
                    yield (partition_id, indices)

        def second_round_mapper(_key, value: _CoresetPhaseOutput):
            # Runs in the coordinator: harvest the per-partition build times
            # and forward only the coreset indices into the shuffle.
            timings["coreset"] += value.elapsed
            yield (0, value.indices)

        with MapReduceRuntime(
            local_memory_limit=self.local_memory_limit,
            max_workers=self.max_workers,
            backend=self.backend,
            workers=self.workers,
        ) as runtime:
            shared_pts = runtime.share_array(pts)
            first_round_reducer = partial(
                _coreset_reducer,
                points=shared_pts,
                spec=spec,
                metric=self.metric,
                seeds=partition_seeds,
            )
            second_round_reducer = partial(
                _solve_reducer,
                points=shared_pts,
                k=self.k,
                metric=self.metric,
                seed=final_seed,
            )
            output = runtime.execute_job(
                [(None, np.arange(n))],
                [
                    (first_round_mapper, first_round_reducer),
                    (second_round_mapper, second_round_reducer),
                ],
            )
            stats = runtime.stats

        solution: _SolvePhaseOutput = output[0][1]
        center_indices = solution.center_indices
        clustering = assign_to_centers(pts, pts[center_indices], self.metric)
        return MRKCenterResult(
            centers=pts[center_indices],
            center_indices=center_indices,
            radius=clustering.radius,
            coreset_size=solution.coreset_size,
            ell=sum(1 for p in parts if p.size),
            stats=stats,
            coreset_time=timings["coreset"],
            solve_time=solution.elapsed,
            peak_working_memory_size=stats.peak_working_memory_size,
        )

    def fit_stream(
        self,
        stream,
        *,
        chunk_size: int = 4096,
        storage: str = "auto",
        spill_dir: str | None = None,
        memory_budget_bytes: int | None = None,
    ) -> MRKCenterResult:
        """Run the 2-round algorithm on a chunked point stream, out of core.

        Equivalent to :meth:`fit` on the same points in the same order —
        bit-identical centers, indices and radius on every backend — but
        the coordinator never materialises the ``(n, d)`` matrix: chunks
        are routed straight into per-partition buffers (shared-memory
        segments under the ``"processes"`` backend), the reducers build
        their coresets from their own partitions, and the final radius is
        computed by a third MapReduce round that scores each partition
        against the centers with the blocked
        :meth:`~repro.metricspace.distance.Metric.nearest` kernel. The
        coordinator's working set is ``O(chunk_size + union coreset)``
        (see ``stats.coordinator_peak_items``), which restores the
        paper's memory model: dataset size is bounded by the *reducers'*
        memory, not the coordinator's.

        Parameters
        ----------
        stream:
            A :class:`~repro.streaming.stream.PointStream`, or any
            iterable of points / point batches (wrapped in a
            :class:`~repro.streaming.stream.GeneratorStream`).
            ``"contiguous"`` partitioning needs a stream with a known
            length (``len(stream)``); unknown-length sources can use
            ``"round_robin"`` or ``"random"``. For unknown-length
            streams ``ell`` is used as given (the in-memory path caps it
            at ``n``), so exact ``fit`` equivalence additionally needs
            ``ell <= n`` or a sized stream.
        chunk_size:
            Rows per routing chunk; also the coordinator's transient
            working set during the shuffle.
        storage:
            Partition-storage tier for the shuffle: ``"auto"``
            (default), ``"memory"``, ``"shared"`` or ``"disk"``. Under
            ``"auto"`` with a ``memory_budget_bytes``, streams whose
            estimated partition footprint exceeds the budget spill to
            disk; ``stats.storage_tier`` / ``stats.spilled_bytes``
            report what ran. Every tier is bit-identical.
        spill_dir:
            Directory for ``"disk"``-tier spill files (default: a
            run-owned temporary directory, removed afterwards).
        memory_budget_bytes:
            In-memory partition budget consulted by ``storage="auto"``.
        """
        chunk_size = check_positive_int(chunk_size, name="chunk_size")
        rng = check_random_state(self.random_state)
        spec = self._coreset_spec()

        with MapReduceRuntime(
            local_memory_limit=self.local_memory_limit,
            max_workers=self.max_workers,
            backend=self.backend,
            workers=self.workers,
            storage=storage,
            spill_dir=spill_dir,
            memory_budget_bytes=memory_budget_bytes,
        ) as runtime:
            parts, n, _ = shuffle_point_stream(
                runtime,
                stream,
                ell=self.ell,
                partitioning=self.partitioning,
                rng=rng,
                chunk_size=chunk_size,
            )
            if self.k > n:
                raise InvalidParameterError(f"k={self.k} exceeds the dataset size {n}")
            partition_seeds = draw_partition_seeds(rng, len(parts))
            final_seed = int(rng.integers(2**31 - 1))

            coreset_pairs = [
                (partition_id, part)
                for partition_id, part in enumerate(parts)
                if len(part)
            ]
            coreset_outputs = runtime.execute_round(
                coreset_pairs,
                identity_mapper,
                partial(
                    _stream_coreset_reducer,
                    spec=spec,
                    metric=self.metric,
                    seeds=partition_seeds,
                ),
            )
            coreset_time = sum(value.elapsed for _, value in coreset_outputs)

            solution: _StreamedSolution = runtime.execute_round(
                coreset_outputs,
                identity_mapper,
                partial(
                    _stream_solve_reducer,
                    k=self.k,
                    metric=self.metric,
                    seed=final_seed,
                ),
            )[0][1]
            # The union of the coresets passed through the coordinator
            # between rounds 1 and 2: charge it to the coordinator's peak.
            runtime.note_coordinator_items(solution.coreset_size)

            assign_pairs = [
                (partition_id, _AssignTask(part, solution.centers))
                for partition_id, part in enumerate(parts)
                if len(part)
            ]
            assign_outputs = runtime.execute_round(
                assign_pairs,
                identity_mapper,
                partial(_stream_assign_reducer, metric=self.metric),
            )
            radius = max(value for _, value in assign_outputs)
            stats = runtime.stats

        return MRKCenterResult(
            centers=solution.centers,
            center_indices=solution.center_indices,
            radius=radius,
            coreset_size=solution.coreset_size,
            ell=len(coreset_pairs),
            stats=stats,
            coreset_time=coreset_time,
            solve_time=solution.elapsed,
            peak_working_memory_size=stats.peak_working_memory_size,
        )
