"""2-round MapReduce algorithm for k-center (Section 3.1, Theorem 1).

Round 1 partitions the input into ``ell`` subsets and, in parallel, runs
the incremental GMM traversal on each subset until the coreset stopping
rule is met (either the theoretical ``epsilon`` rule or the experimental
``tau = mu * k`` rule). Round 2 gathers the union of the per-partition
coresets into one reducer and runs GMM on the union to produce the final
``k`` centers. The result is a ``(2 + eps)``-approximation with local
memory ``O(|S|/ell + ell * k * (4/eps)^D)``.

Setting ``coreset_multiplier = 1`` recovers the algorithm of Malkomes et
al. [26] (the paper's baseline in Figure 2), which is also exposed
directly as :class:`repro.baselines.malkomes.MalkomesKCenter`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .._validation import check_points, check_positive_int, check_random_state
from ..exceptions import InvalidParameterError
from ..mapreduce.partitioner import (
    split_adversarial,
    split_contiguous,
    split_random,
    split_round_robin,
)
from ..mapreduce.runtime import JobStats, MapReduceRuntime
from ..metricspace.distance import Metric, get_metric
from .assignment import assign_to_centers
from .coreset import CoresetResult, CoresetSpec, build_coreset
from .gmm import gmm_select

__all__ = ["MRKCenterResult", "MapReduceKCenter"]


_PARTITIONERS = {
    "contiguous": split_contiguous,
    "round_robin": split_round_robin,
    "random": split_random,
}


@dataclass(frozen=True)
class MRKCenterResult:
    """Result of a 2-round MapReduce k-center run.

    Attributes
    ----------
    centers:
        ``(k, d)`` coordinates of the returned centers.
    center_indices:
        Indices of the centers in the original dataset.
    radius:
        Radius of the dataset with respect to the returned centers.
    coreset_size:
        Size of the union of the per-partition coresets handled by the
        second-round reducer.
    ell:
        Number of partitions (degree of parallelism) used.
    stats:
        MapReduce accounting (rounds, local / aggregate memory, simulated
        parallel time).
    coreset_time:
        Wall-clock seconds spent building the per-partition coresets
        (sum over partitions; divide by ``ell`` for the ideal parallel time,
        or use ``stats`` for the slowest-reducer estimate).
    solve_time:
        Wall-clock seconds spent solving on the union of the coresets.
    """

    centers: np.ndarray
    center_indices: np.ndarray
    radius: float
    coreset_size: int
    ell: int
    stats: JobStats
    coreset_time: float
    solve_time: float

    @property
    def k(self) -> int:
        """Number of returned centers."""
        return int(self.centers.shape[0])


class MapReduceKCenter:
    """Coreset-based 2-round MapReduce solver for the k-center problem.

    Parameters
    ----------
    k:
        Number of centers.
    ell:
        Number of partitions (the paper's degree of parallelism). The
        theory suggests ``ell = Theta(sqrt(|S| / k))``; any value >= 1 works.
    epsilon:
        Precision parameter of the theoretical coreset stopping rule.
        Mutually exclusive with ``coreset_multiplier``; if neither is
        given, ``epsilon = 1.0`` is used.
    coreset_multiplier:
        The experimental knob ``mu``: each partition contributes a coreset
        of exactly ``mu * k`` points. ``mu = 1`` is the baseline of [26].
    partitioning:
        ``"contiguous"`` (default), ``"round_robin"`` or ``"random"``.
    metric:
        Metric name or instance.
    random_state:
        Seed for the random partitioning and the arbitrary choice of the
        first GMM center in each partition.
    local_memory_limit:
        Optional per-reducer memory cap (items) enforced by the simulated
        runtime.
    max_workers:
        Threads used by the simulated runtime to execute the per-partition
        coreset constructions concurrently (1 = sequential). The result is
        deterministic for any value because per-partition seeds are drawn
        up front.

    Examples
    --------
    >>> from repro.datasets import gaussian_mixture, GaussianMixtureSpec
    >>> pts = gaussian_mixture(500, GaussianMixtureSpec(5, 2), random_state=0)
    >>> result = MapReduceKCenter(k=5, ell=4, coreset_multiplier=4,
    ...                           random_state=0).fit(pts)
    >>> result.k
    5
    """

    def __init__(
        self,
        k: int,
        *,
        ell: int = 4,
        epsilon: float | None = None,
        coreset_multiplier: float | None = None,
        partitioning: str = "contiguous",
        metric: str | Metric = "euclidean",
        random_state=None,
        local_memory_limit: int | None = None,
        max_workers: int = 1,
    ) -> None:
        self.k = check_positive_int(k, name="k")
        self.ell = check_positive_int(ell, name="ell")
        if epsilon is not None and coreset_multiplier is not None:
            raise InvalidParameterError(
                "epsilon and coreset_multiplier are mutually exclusive"
            )
        if epsilon is None and coreset_multiplier is None:
            epsilon = 1.0
        self.epsilon = epsilon
        self.coreset_multiplier = coreset_multiplier
        if partitioning not in _PARTITIONERS:
            raise InvalidParameterError(
                f"partitioning must be one of {sorted(_PARTITIONERS)}; got {partitioning!r}"
            )
        self.partitioning = partitioning
        self.metric = get_metric(metric)
        self.random_state = random_state
        self.local_memory_limit = local_memory_limit
        self.max_workers = check_positive_int(max_workers, name="max_workers")

    # -- helpers -----------------------------------------------------------------------

    def _coreset_spec(self) -> CoresetSpec:
        if self.coreset_multiplier is not None:
            return CoresetSpec.from_multiplier(self.k, self.coreset_multiplier)
        return CoresetSpec.from_epsilon(self.k, self.epsilon)

    def _partition(self, n: int, rng: np.random.Generator) -> list[np.ndarray]:
        ell = min(self.ell, n)
        if self.partitioning == "random":
            parts = split_random(n, ell, random_state=rng)
            if any(p.size == 0 for p in parts):
                parts = split_round_robin(n, ell)
            return parts
        return _PARTITIONERS[self.partitioning](n, ell)

    # -- main entry point --------------------------------------------------------------

    def fit(self, points) -> MRKCenterResult:
        """Run the 2-round algorithm on ``points`` and return the solution."""
        pts = check_points(points)
        n = pts.shape[0]
        if self.k > n:
            raise InvalidParameterError(f"k={self.k} exceeds the dataset size {n}")
        rng = check_random_state(self.random_state)
        spec = self._coreset_spec()
        parts = self._partition(n, rng)
        runtime = MapReduceRuntime(
            local_memory_limit=self.local_memory_limit, max_workers=self.max_workers
        )

        # Per-partition seeds (and the second-round seed) are drawn up front
        # so that reducers are free of shared mutable state and the result is
        # identical whether the runtime executes them sequentially or in a
        # thread pool.
        partition_seeds = [int(rng.integers(2**31 - 1)) for _ in parts]
        final_seed = int(rng.integers(2**31 - 1))

        coreset_results: dict[int, CoresetResult] = {}
        timings = {"coreset": 0.0, "solve": 0.0}

        def first_round_mapper(_key, value):
            # The mapper only routes point indices to their partition; it is
            # the constant-space transformation the paper describes.
            del value
            for partition_id, indices in enumerate(parts):
                yield (partition_id, indices)

        def first_round_reducer(partition_id, values):
            indices = np.concatenate(values)
            start = time.perf_counter()
            result = build_coreset(
                pts[indices],
                spec,
                self.metric,
                weighted=False,
                first_center=None,
                random_state=partition_seeds[partition_id],
            )
            timings["coreset"] += time.perf_counter() - start
            coreset_results[partition_id] = result
            # Re-express coreset point indices in global coordinates.
            global_indices = indices[result.center_indices]
            yield (0, global_indices)

        def second_round_mapper(key, value):
            yield (key, value)

        final: dict[str, np.ndarray] = {}

        def second_round_reducer(_key, values):
            union_indices = np.concatenate(values)
            start = time.perf_counter()
            solution = gmm_select(
                pts[union_indices],
                self.k,
                self.metric,
                first_center=None,
                random_state=final_seed,
            )
            timings["solve"] += time.perf_counter() - start
            final["center_indices"] = union_indices[solution.centers]
            final["coreset_size"] = union_indices.shape[0]
            yield (0, final["center_indices"])

        runtime.execute_job(
            [(None, np.arange(n))],
            [
                (first_round_mapper, first_round_reducer),
                (second_round_mapper, second_round_reducer),
            ],
        )

        center_indices = final["center_indices"]
        clustering = assign_to_centers(pts, pts[center_indices], self.metric)
        return MRKCenterResult(
            centers=pts[center_indices],
            center_indices=center_indices,
            radius=clustering.radius,
            coreset_size=int(final["coreset_size"]),
            ell=len(parts),
            stats=runtime.stats,
            coreset_time=timings["coreset"],
            solve_time=timings["solve"],
        )
