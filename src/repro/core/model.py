"""A scikit-learn-style estimator facade over the k-center solvers.

The solver classes in :mod:`repro.core` expose the paper's algorithms
directly (each with its own result dataclass). Downstream users often
just want the familiar *fit / predict* workflow: fit a clustering on a
training set, then assign labels (and outlier flags) to new points. This
module provides that facade:

* :class:`KCenterModel` — wraps any of the solvers (sequential,
  MapReduce, deterministic or randomized, with or without outliers) and
  exposes ``fit``, ``predict``, ``transform`` (distances to centers) and
  ``outlier_mask``.

The wrapper never re-implements algorithmic logic; it simply normalises
the different result dataclasses into one fitted state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_points
from ..exceptions import InvalidParameterError, NotFittedError
from ..metricspace.distance import Metric, get_metric
from .assignment import assign_to_centers
from .mr_kcenter import MapReduceKCenter
from .mr_outliers import MapReduceKCenterOutliers
from .sequential import SequentialKCenter, SequentialKCenterOutliers

__all__ = ["FittedClustering", "KCenterModel"]

_SOLVER_TYPES = (
    SequentialKCenter,
    SequentialKCenterOutliers,
    MapReduceKCenter,
    MapReduceKCenterOutliers,
)


@dataclass(frozen=True)
class FittedClustering:
    """Normalised fitted state shared by every solver type.

    Attributes
    ----------
    centers:
        ``(k, d)`` coordinates of the fitted centers.
    radius:
        The solver's objective value (outlier-aware when applicable).
    n_outliers:
        The outlier budget the solver was configured with (0 for plain
        k-center).
    training_outlier_indices:
        Indices of the training points the solution treats as outliers.
    raw_result:
        The solver's original result object, for full detail.
    """

    centers: np.ndarray
    radius: float
    n_outliers: int
    training_outlier_indices: np.ndarray
    raw_result: object


class KCenterModel:
    """Fit/predict facade over the package's k-center solvers.

    Parameters
    ----------
    solver:
        A configured solver instance: :class:`SequentialKCenter`,
        :class:`SequentialKCenterOutliers`, :class:`MapReduceKCenter` or
        :class:`MapReduceKCenterOutliers`.
    metric:
        Metric used for prediction-time assignments; defaults to the
        solver's metric when it has one.

    Examples
    --------
    >>> from repro.core import SequentialKCenter
    >>> import numpy as np
    >>> points = np.vstack([np.zeros((10, 2)), np.ones((10, 2)) * 10])
    >>> model = KCenterModel(SequentialKCenter(2)).fit(points)
    >>> int(model.predict([[0.2, 0.1]])[0]) == int(model.predict([[0.0, 0.0]])[0])
    True
    """

    def __init__(self, solver, *, metric: str | Metric | None = None) -> None:
        if not isinstance(solver, _SOLVER_TYPES):
            raise InvalidParameterError(
                "solver must be one of SequentialKCenter, SequentialKCenterOutliers, "
                "MapReduceKCenter, MapReduceKCenterOutliers"
            )
        self.solver = solver
        if metric is None:
            metric = getattr(solver, "metric", "euclidean")
        self.metric = get_metric(metric)
        self._fitted: FittedClustering | None = None

    # -- fitting ------------------------------------------------------------------------

    def fit(self, points) -> "KCenterModel":
        """Run the wrapped solver on ``points`` and store the fitted state."""
        result = self.solver.fit(points)
        outlier_indices = getattr(result, "outlier_indices", np.empty(0, dtype=np.intp))
        n_outliers = getattr(self.solver, "z", 0)
        self._fitted = FittedClustering(
            centers=np.array(result.centers),
            radius=float(result.radius),
            n_outliers=int(n_outliers),
            training_outlier_indices=np.asarray(outlier_indices, dtype=np.intp),
            raw_result=result,
        )
        return self

    @property
    def fitted(self) -> FittedClustering:
        """The fitted state (raises :class:`NotFittedError` before :meth:`fit`)."""
        if self._fitted is None:
            raise NotFittedError("call fit() before querying the model")
        return self._fitted

    @property
    def centers(self) -> np.ndarray:
        """Fitted center coordinates."""
        return self.fitted.centers

    @property
    def radius(self) -> float:
        """Objective value achieved on the training set."""
        return self.fitted.radius

    # -- prediction ---------------------------------------------------------------------

    def transform(self, points) -> np.ndarray:
        """Distances from each query point to every fitted center."""
        pts = check_points(points)
        return self.metric.cdist(pts, self.fitted.centers)

    def predict(self, points) -> np.ndarray:
        """Index of the closest fitted center for each query point."""
        return np.argmin(self.transform(points), axis=1).astype(np.intp)

    def predict_distance(self, points) -> np.ndarray:
        """Distance from each query point to its closest fitted center."""
        return self.transform(points).min(axis=1)

    def outlier_mask(self, points, *, threshold: float | None = None) -> np.ndarray:
        """Boolean mask of which query points look like outliers.

        A point is flagged when its distance to the closest center exceeds
        ``threshold``; by default the threshold is the training radius, so
        the mask marks points the fitted clustering would *not* have
        covered (the natural generalisation of the training outliers).
        """
        if threshold is None:
            threshold = self.fitted.radius
        if threshold < 0:
            raise InvalidParameterError("threshold must be non-negative")
        return self.predict_distance(points) > threshold

    def evaluate(self, points) -> dict:
        """Radius statistics of the fitted centers on an arbitrary point set."""
        clustering = assign_to_centers(check_points(points), self.fitted.centers, self.metric)
        return {
            "radius": clustering.radius,
            "radius_excluding_outliers": clustering.radius_excluding(self.fitted.n_outliers),
            "cluster_sizes": clustering.cluster_sizes(),
        }
