"""OUTLIERSCLUSTER: the weighted sequential routine of Algorithm 1.

Given a weighted coreset ``T``, a number of centers ``k``, a guess ``r``
of the optimal radius, and the precision parameter ``eps_hat``, the
routine greedily picks ``k`` centers: each iteration selects the point of
``T`` whose ball of radius ``(1 + 2*eps_hat) * r`` covers the largest
aggregate weight of still-uncovered points, then marks as covered every
uncovered point within ``(3 + 4*eps_hat) * r`` of the chosen center. The
points left uncovered at the end are the candidate outliers.

The routine is a weighted modification of Charikar et al.'s algorithm
[16] (which is the special case of unit weights and ``eps_hat = 0``), and
it is the second-round workhorse of both the MapReduce and the Streaming
algorithms for the outlier formulation.

:class:`OutliersClusterSolver` precomputes the (small) pairwise distance
matrix of ``T`` once so that the radius search of
:mod:`repro.core.radius_search` can probe many radii cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_positive_int
from ..exceptions import InvalidParameterError
from ..metricspace.distance import Metric, get_metric
from ..metricspace.points import WeightedPoints

__all__ = ["OutliersClusterResult", "OutliersClusterSolver", "outliers_cluster"]


@dataclass(frozen=True)
class OutliersClusterResult:
    """Output of one OUTLIERSCLUSTER run.

    Attributes
    ----------
    center_indices:
        Indices (into the coreset) of the selected centers ``X``, in
        selection order; at most ``k`` of them.
    uncovered_mask:
        Boolean mask over the coreset marking the final uncovered set
        ``T'`` (the candidate outliers).
    uncovered_weight:
        Total weight of the uncovered points; the radius search looks for
        the smallest radius making this at most ``z``.
    radius:
        The radius guess ``r`` this run was executed with.
    """

    center_indices: np.ndarray
    uncovered_mask: np.ndarray
    uncovered_weight: float
    radius: float

    @property
    def n_centers(self) -> int:
        """Number of selected centers (``<= k``)."""
        return int(self.center_indices.shape[0])


class OutliersClusterSolver:
    """Reusable OUTLIERSCLUSTER executor over a fixed weighted coreset.

    Parameters
    ----------
    coreset:
        The weighted coreset ``T`` (union of the per-partition coresets).
    k:
        Number of centers to select.
    eps_hat:
        The precision parameter ``eps_hat`` of Algorithm 1 (the paper sets
        ``eps_hat = eps / 6`` to obtain a ``3 + eps`` approximation). A
        value of 0 recovers the unweighted ball radii of Charikar et al.
    metric:
        Metric name or instance.
    """

    def __init__(
        self,
        coreset: WeightedPoints,
        k: int,
        *,
        eps_hat: float = 0.0,
        metric: str | Metric = "euclidean",
    ) -> None:
        if not isinstance(coreset, WeightedPoints):
            raise InvalidParameterError("coreset must be a WeightedPoints instance")
        self._coreset = coreset
        self._k = check_positive_int(k, name="k")
        if eps_hat < 0:
            raise InvalidParameterError("eps_hat must be non-negative")
        self._eps_hat = float(eps_hat)
        self._metric = get_metric(metric)
        self._pairwise = self._metric.pairwise(coreset.points)
        self._weights = coreset.weights

    # -- read-only properties ---------------------------------------------------------

    @property
    def coreset(self) -> WeightedPoints:
        """The weighted coreset this solver operates on."""
        return self._coreset

    @property
    def k(self) -> int:
        """Number of centers selected per run."""
        return self._k

    @property
    def eps_hat(self) -> float:
        """The precision parameter used for the ball radii."""
        return self._eps_hat

    @property
    def pairwise_distances(self) -> np.ndarray:
        """The precomputed pairwise distance matrix of the coreset."""
        return self._pairwise

    def candidate_radii(self) -> np.ndarray:
        """Sorted unique pairwise distances — the radius-search candidates."""
        upper = self._pairwise[np.triu_indices(self._pairwise.shape[0], k=1)]
        return np.unique(upper)

    # -- the algorithm -----------------------------------------------------------------

    def run(self, radius: float) -> OutliersClusterResult:
        """Execute OUTLIERSCLUSTER with the radius guess ``radius``.

        Follows Algorithm 1 literally: selection balls of radius
        ``(1 + 2*eps_hat) * radius``, coverage balls of radius
        ``(3 + 4*eps_hat) * radius``, stop when ``k`` centers are chosen or
        nothing is left uncovered.
        """
        if radius < 0:
            raise InvalidParameterError("radius must be non-negative")
        selection_radius = (1.0 + 2.0 * self._eps_hat) * radius
        coverage_radius = (3.0 + 4.0 * self._eps_hat) * radius

        n = len(self._coreset)
        uncovered = np.ones(n, dtype=bool)
        # One boolean threshold pass over the cached pairwise matrix per
        # probe (no (n, n) float64 materialisation), then the per-ball
        # uncovered weights are maintained *incrementally*: selecting a
        # center only subtracts the newly covered points' contributions
        # (narrow column slices) instead of redoing a dense matrix-vector
        # product per iteration. For the integer proxy weights of the
        # coreset constructions the running values are exact.
        selection_balls = self._pairwise <= selection_radius
        ball_weights = selection_balls @ self._weights
        centers: list[int] = []

        while len(centers) < self._k and uncovered.any():
            center = int(np.argmax(ball_weights))
            centers.append(center)
            newly_covered = np.flatnonzero(
                uncovered & (self._pairwise[center] <= coverage_radius)
            )
            uncovered[newly_covered] = False
            ball_weights -= selection_balls[:, newly_covered] @ self._weights[newly_covered]

        return OutliersClusterResult(
            center_indices=np.array(centers, dtype=np.intp),
            uncovered_mask=uncovered,
            uncovered_weight=float(self._weights[uncovered].sum()),
            radius=float(radius),
        )

    def uncovered_weight(self, radius: float) -> float:
        """Total uncovered weight after a run with radius ``radius``."""
        return self.run(radius).uncovered_weight


def outliers_cluster(
    coreset: WeightedPoints,
    k: int,
    radius: float,
    eps_hat: float = 0.0,
    metric: str | Metric = "euclidean",
) -> OutliersClusterResult:
    """One-shot OUTLIERSCLUSTER run (convenience wrapper around the solver)."""
    solver = OutliersClusterSolver(coreset, k, eps_hat=eps_hat, metric=metric)
    return solver.run(radius)
