"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
editable installs keep working on fully offline machines whose setuptools
cannot build PEP 660 editable wheels (no ``wheel`` package available).
"""

from setuptools import setup

setup()
