"""Scenario: the coreset trick as a drop-in sequential accelerator.

The paper's Section 3.2 observes that running the MapReduce algorithm
with ``ell = 1`` gives a *sequential* algorithm for k-center with
outliers that is dramatically faster than the classical algorithm of
Charikar et al. [16] while preserving solution quality — its Figure 8.

This script reproduces that comparison on a sample of a Higgs-like
dataset: the quadratic CHARIKARETAL baseline versus the coreset-based
sequential solver at increasing coreset multipliers, reporting running
time and clustering radius (after discarding the planted outliers).

Run with:  python examples/sequential_speedup.py
"""

from __future__ import annotations

from repro import SequentialKCenterOutliers
from repro.baselines import CharikarKCenterOutliers
from repro.datasets import higgs_like, inject_outliers
from repro.evaluation import format_records


def main() -> None:
    n_points = 3000   # the paper samples 10 000; keep the demo snappy
    k, z = 20, 100

    sample = higgs_like(n_points, random_state=0)
    injected = inject_outliers(sample, z, random_state=1)
    data = injected.points

    records = []

    charikar = CharikarKCenterOutliers(k, z, max_points=data.shape[0]).fit(data)
    records.append(
        {
            "algorithm": "CharikarEtAl [16]",
            "radius": charikar.radius,
            "time (s)": charikar.elapsed_time,
            "coreset size": data.shape[0],
        }
    )

    for mu in (1, 2, 4, 8):
        label = "MalkomesEtAl [26]" if mu == 1 else f"Ours (mu={mu})"
        result = SequentialKCenterOutliers(k, z, coreset_multiplier=mu, random_state=0).fit(data)
        records.append(
            {
                "algorithm": label,
                "radius": result.radius,
                "time (s)": result.elapsed_time,
                "coreset size": result.coreset_size,
            }
        )

    print(f"Sequential k-center with outliers on {data.shape[0]} points (k={k}, z={z})\n")
    print(format_records(records))
    print("\nBuilding a coreset first cuts the running time by an order of "
          "magnitude; with mu >= 2 the radius is essentially the same as the "
          "quadratic baseline's.")


if __name__ == "__main__":
    main()
