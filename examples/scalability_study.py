"""Scenario: how the randomized MapReduce algorithm scales (Figures 6 and 7).

Two questions a practitioner asks before deploying the algorithm on a
cluster:

1. *How does the running time grow with the input size?* — we inflate a
   Power-like dataset with the paper's SMOTE-style procedure and measure
   the end-to-end time of the randomized outlier algorithm (Figure 6).
2. *How does it scale with the number of workers?* — we hold the size of
   the union of the coresets fixed and vary the parallelism ``ell``,
   reporting the simulated parallel time of the coreset phase (the
   slowest worker) and the fixed cost of the final OUTLIERSCLUSTER phase
   (Figure 7).

Run with:  python examples/scalability_study.py
"""

from __future__ import annotations

from repro.datasets import power_like
from repro.evaluation import (
    figure6_scaling_size,
    figure7_scaling_processors,
    format_records,
)


def main() -> None:
    base = power_like(2000, random_state=0)

    print("Scaling with the input size (randomized MapReduce, k=20, z=100):\n")
    size_records = figure6_scaling_size(
        {"power": base},
        k=20,
        z=100,
        ell=8,
        mu=4,
        size_factors=(1, 2, 4, 8),
        random_state=0,
    )
    print(format_records(
        size_records,
        columns=["size_factor", "n_points", "radius", "time_s", "points_per_s"],
    ))

    print("\nScaling with the number of workers (fixed union-coreset size):\n")
    processor_records = figure7_scaling_processors(
        {"power": base},
        k=20,
        z=100,
        ells=(1, 2, 4, 8, 16),
        random_state=0,
    )
    print(format_records(
        processor_records,
        columns=[
            "ell",
            "per_partition_coreset",
            "radius",
            "coreset_time_parallel_s",
            "coreset_time_total_s",
            "solve_time_s",
        ],
    ))

    print(
        "\nThe coreset phase dominates at low parallelism and shrinks "
        "super-linearly as ell grows (each worker builds a smaller coreset "
        "over fewer points), while the final solve on the fixed-size union "
        "stays constant — the behaviour reported in the paper's Figure 7."
    )


if __name__ == "__main__":
    main()
