"""Quickstart: k-center clustering with the coreset-based MapReduce algorithm.

This script walks through the package's main entry points on a synthetic
dataset:

1. generate a clustered dataset;
2. solve plain k-center sequentially (Gonzalez's GMM) and with the
   2-round MapReduce algorithm at several coreset sizes;
3. inject outliers and solve the outlier formulation with the
   deterministic MapReduce algorithm;
4. print radii, coreset sizes and the memory accounting of the simulated
   MapReduce runtime.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import MapReduceKCenter, MapReduceKCenterOutliers, SequentialKCenter
from repro.datasets import GaussianMixtureSpec, gaussian_mixture, inject_outliers
from repro.evaluation import format_records


def main() -> None:
    # 1. A dataset with 12 natural clusters in 5 dimensions.
    spec = GaussianMixtureSpec(n_clusters=12, dimension=5, cluster_std=1.0, box_size=100.0)
    points = gaussian_mixture(5000, spec, random_state=0)
    k = 12

    # 2. Plain k-center: sequential GMM vs MapReduce with growing coresets.
    sequential = SequentialKCenter(k, random_state=0).fit(points)
    print(f"Sequential GMM:            radius = {sequential.radius:.3f}")

    records = []
    for mu in (1, 2, 4, 8):
        result = MapReduceKCenter(
            k, ell=8, coreset_multiplier=mu, random_state=0
        ).fit(points)
        records.append(
            {
                "coreset multiplier": mu,
                "radius": result.radius,
                "union coreset size": result.coreset_size,
                "peak local memory (points)": result.stats.peak_local_memory,
            }
        )
    print("\n2-round MapReduce k-center (ell = 8):")
    print(format_records(records))

    # 3. The outlier formulation: plant 50 far-away points and ask the
    #    solver to ignore up to 50 outliers.
    injected = inject_outliers(points, 50, random_state=1)
    z = injected.n_outliers
    outlier_result = MapReduceKCenterOutliers(
        k, z, ell=8, coreset_multiplier=4, random_state=0
    ).fit(injected.points)

    recovered = set(outlier_result.outlier_indices) == set(injected.outlier_indices)
    print("\n2-round MapReduce k-center with outliers (mu = 4):")
    print(f"  radius excluding z outliers : {outlier_result.radius:.3f}")
    print(f"  radius over all points      : {outlier_result.radius_all_points:.3f}")
    print(f"  planted outliers recovered  : {recovered}")
    print(f"  union coreset size          : {outlier_result.coreset_size}")
    print(f"  rounds                      : {outlier_result.stats.n_rounds}")


if __name__ == "__main__":
    main()
