"""Scenario: placing gateways for a sensor network with faulty sensors.

A utility company has hundreds of thousands of smart meters (we simulate
their feature vectors from the Power-like generator) and wants to choose
``k`` gateway locations minimising the worst meter-to-gateway "distance"
(a proxy for communication cost). A fraction of the meters are faulty and
report garbage readings far outside the normal range — classic outliers
that would otherwise dominate the k-center objective.

The script compares, on the same data:

* the mu = 1 MapReduce baseline of Malkomes et al. [26];
* the paper's deterministic algorithm with larger coresets (mu = 4, 8);
* the randomized variant, which keeps coresets small even when the number
  of faulty meters is large;

under an *adversarial* partitioning that routes every faulty meter to the
same worker — the stress case of the paper's Figure 4.

Run with:  python examples/sensor_network_outliers.py
"""

from __future__ import annotations

import time

from repro import MapReduceKCenterOutliers
from repro.baselines import MalkomesKCenterOutliers
from repro.datasets import inject_outliers, power_like
from repro.evaluation import approximation_ratios, format_records


def main() -> None:
    n_meters = 8000
    k = 20           # gateways to place
    z = 200          # faulty meters the objective may ignore
    ell = 16         # parallel workers

    readings = power_like(n_meters, random_state=0)
    injected = inject_outliers(readings, z, random_state=1)
    faulty = injected.outlier_indices

    configurations = []
    configurations.append(
        ("MalkomesEtAl (mu=1)", MalkomesKCenterOutliers(
            k, z, ell=ell, partitioning="adversarial",
            adversarial_indices=faulty, random_state=0,
        ))
    )
    for mu in (4, 8):
        configurations.append(
            (f"deterministic mu={mu}", MapReduceKCenterOutliers(
                k, z, ell=ell, coreset_multiplier=mu, partitioning="adversarial",
                adversarial_indices=faulty, random_state=0,
            ))
        )
    for mu in (4, 8):
        configurations.append(
            (f"randomized mu={mu}", MapReduceKCenterOutliers(
                k, z, ell=ell, coreset_multiplier=mu, randomized=True,
                include_log_term=False, random_state=0,
            ))
        )

    records = []
    radii = {}
    for label, solver in configurations:
        start = time.perf_counter()
        result = solver.fit(injected.points)
        elapsed = time.perf_counter() - start
        radii[label] = result.radius
        records.append(
            {
                "algorithm": label,
                "radius": result.radius,
                "coreset size": result.coreset_size,
                "faulty meters recovered": len(set(result.outlier_indices) & set(faulty)),
                "time (s)": elapsed,
            }
        )

    ratios = approximation_ratios(radii)
    for record in records:
        record["ratio vs best"] = ratios[record["algorithm"]]

    print(f"Gateway placement: {n_meters} meters, k={k}, z={z}, ell={ell}, "
          f"all {z} faulty meters packed into one worker\n")
    print(format_records(records))
    print("\nLarger coresets (mu) recover solution quality under adversarial "
          "placement; the randomized variant gets there with far smaller coresets.")


if __name__ == "__main__":
    main()
