"""Scenario: plan a large clustering job, fit a model, persist and reuse it.

A practitioner workflow on top of the paper's algorithms:

1. **Plan** — before touching the full dataset, use the paper's memory
   bounds (Corollaries 1–3, Theorem 3) to choose the parallelism and the
   coreset sizes from the dataset size, k, z and an estimated doubling
   dimension (`repro.core.plan_mapreduce` / `plan_streaming`).
2. **Fit** — run the randomized MapReduce algorithm through the
   scikit-learn-style `KCenterModel` facade.
3. **Persist** — save the fitted solution (centers, radius, outliers) to
   disk and load it back (`repro.save_solution` / `load_solution`).
4. **Serve** — use the reloaded centers to assign cluster labels and flag
   outliers on previously unseen points.

Run with:  python examples/capacity_planning_and_model.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import load_solution, save_solution
from repro.core import KCenterModel, MapReduceKCenterOutliers, plan_mapreduce, plan_streaming
from repro.core.assignment import assign_to_centers
from repro.datasets import higgs_like, inject_outliers
from repro.evaluation import format_records


def main() -> None:
    # The "full" job we are planning for (the paper's Higgs scale)...
    full_n, k, z = 11_000_000, 20, 200
    # ...and the sample we actually run here.
    sample_n = 6000

    sample = higgs_like(sample_n, random_state=0)

    # 1. Capacity planning from the theoretical bounds, with the doubling
    #    dimension estimated on the sample.
    mr_plan = plan_mapreduce(full_n, k, z=z, randomized=True, sample=sample, random_state=0)
    stream_plan = plan_streaming(k, z, sample=sample, random_state=0)
    print("Planned configuration for the full-scale job:")
    print(format_records([
        {
            "setting": "MapReduce (randomized)",
            "ell": mr_plan.ell,
            "points/worker": mr_plan.per_partition_points,
            "coreset/worker (practical)": mr_plan.coreset_size_practical,
            "union coreset": mr_plan.union_coreset_size,
            "peak local memory (points)": mr_plan.local_memory,
            "estimated doubling dim": round(mr_plan.doubling_dimension, 2),
        },
        {
            "setting": "Streaming (1-pass)",
            "ell": "-",
            "points/worker": "-",
            "coreset/worker (practical)": stream_plan.coreset_size_practical,
            "union coreset": "-",
            "peak local memory (points)": stream_plan.working_memory,
            "estimated doubling dim": round(stream_plan.doubling_dimension, 2),
        },
    ]))

    # 2. Fit on the sample (with planted outliers) through the model facade.
    injected = inject_outliers(sample, 100, random_state=1)
    solver = MapReduceKCenterOutliers(
        k, 100, ell=8, coreset_multiplier=4, randomized=True,
        include_log_term=False, random_state=0, max_workers=2,
    )
    model = KCenterModel(solver).fit(injected.points)
    print(f"\nFitted radius (excluding outliers): {model.radius:.3f}")

    # 3. Persist the solution and reload it.
    with tempfile.TemporaryDirectory() as tmp:
        base = Path(tmp) / "higgs_gateways"
        save_solution(model.fitted.raw_result, base,
                      metadata={"dataset": "higgs-like sample", "k": k, "z": 100})
        reloaded = load_solution(base)
        print(f"Reloaded solution: {reloaded.k} centers, radius {reloaded.radius:.3f}")

    # 4. Serve: label fresh points and flag anomalies with the fitted model.
    fresh = higgs_like(1000, random_state=7)
    fresh_with_anomalies = np.vstack([fresh, fresh[:5] + 1e4])
    labels = model.predict(fresh_with_anomalies)
    anomalies = model.outlier_mask(fresh_with_anomalies)
    clustering = assign_to_centers(fresh, model.centers)
    print(f"\nServing 1005 new points: {len(np.unique(labels))} clusters used, "
          f"{int(anomalies.sum())} flagged as outliers "
          f"(the 5 injected anomalies are {'all' if anomalies[-5:].all() else 'NOT all'} caught)")
    print(f"Radius of the fitted centers on the fresh sample: {clustering.radius:.3f}")


if __name__ == "__main__":
    main()
