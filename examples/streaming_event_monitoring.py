"""Scenario: clustering a live event stream with a bounded-memory summary.

The paper motivates the Streaming setting with real-time analysis of data
generated on the fly (e.g. a social-media firehose). Here we simulate an
embedding stream of "events": most events come from a moderate number of
topics (clusters in embedding space), while a small number are spam /
corrupted embeddings lying far away from everything.

The script runs the paper's 1-pass CORESETOUTLIERS algorithm at several
working-memory budgets and the BASEOUTLIERS baseline of McCutchen and
Khuller, and reports solution quality (clustering radius after discarding
the spam), peak working memory, and throughput — the axes of Figure 5.
The stream is consumed through a generator, so the full dataset is never
materialised by the algorithms.

The runs use the batched streaming engine (events are ingested in
1024-point chunks, the realistic shape for a high-rate pipeline); the
last row repeats the mu=8 configuration on the per-point path to show
that the answer is identical and only the throughput changes.

Run with:  python examples/streaming_event_monitoring.py
"""

from __future__ import annotations

from repro.baselines import BaseStreamOutliers
from repro.core import CoresetStreamOutliers, radius_with_outliers
from repro.datasets import GaussianMixtureSpec, gaussian_mixture, inject_outliers
from repro.evaluation import format_records
from repro.streaming import ArrayStream, StreamingRunner


def main() -> None:
    n_events = 20_000
    k = 25    # topics to track
    z = 100   # spam budget

    topics = GaussianMixtureSpec(n_clusters=k, dimension=16, cluster_std=0.8, box_size=40.0)
    events = gaussian_mixture(n_events, topics, random_state=0)
    injected = inject_outliers(events, z, random_state=1)
    stream_data = injected.points

    runner = StreamingRunner(batch_size=1024)
    records = []

    for mu in (1, 2, 4, 8):
        algorithm = CoresetStreamOutliers(k, z, coreset_multiplier=mu)
        report = runner.run(algorithm, ArrayStream(stream_data, shuffle=True, random_state=2))
        records.append(
            {
                "algorithm": f"CoresetOutliers mu={mu}",
                "peak memory (points)": report.peak_memory,
                "radius (excl. spam)": radius_with_outliers(stream_data, report.result.centers, z),
                "throughput (events/s)": report.throughput,
            }
        )

    baseline = BaseStreamOutliers(k, z, n_instances=1, buffer_capacity=k * z // 4)
    report = runner.run(baseline, ArrayStream(stream_data, shuffle=True, random_state=2))
    records.append(
        {
            "algorithm": "BaseOutliers m=1",
            "peak memory (points)": report.peak_memory,
            "radius (excl. spam)": radius_with_outliers(stream_data, report.result.centers, z),
            "throughput (events/s)": report.throughput,
        }
    )

    # Same configuration, per-point path: identical answer, lower throughput.
    per_point = CoresetStreamOutliers(k, z, coreset_multiplier=8)
    report = StreamingRunner().run(
        per_point, ArrayStream(stream_data, shuffle=True, random_state=2)
    )
    records.append(
        {
            "algorithm": "CoresetOutliers mu=8 (per-point)",
            "peak memory (points)": report.peak_memory,
            "radius (excl. spam)": radius_with_outliers(stream_data, report.result.centers, z),
            "throughput (events/s)": report.throughput,
        }
    )

    print(f"Event stream: {n_events} events + {z} spam, k={k} topics\n")
    print(format_records(records))
    print("\nThe coreset algorithm keeps a working set of mu*(k+z) points and "
          "trades memory for quality; the buffered baseline needs a much "
          "larger working set for comparable radii and runs slower. The "
          "batched rows ingest 1024-event chunks through the vectorized "
          "update rule — same answers as the per-point row, roughly an "
          "order of magnitude more events per second.")


if __name__ == "__main__":
    main()
