"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve", "mr-kcenter"])
        assert args.command == "mr-kcenter"
        assert args.dataset == "higgs"
        assert args.k == 20

    def test_figure_defaults(self):
        args = build_parser().parse_args(["figure2"])
        assert args.figure == "figure2"
        assert args.n_points == 2000

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure99"])

    def test_backend_defaults(self):
        args = build_parser().parse_args(["solve", "mr-kcenter"])
        assert args.backend is None
        assert args.workers is None

    def test_backend_choices(self):
        args = build_parser().parse_args(
            ["solve", "mr-outliers", "--backend", "processes", "--workers", "2"]
        )
        assert args.backend == "processes"
        # --workers stays a string at parse time: it is either a pool size
        # or a distributed address list, resolved per backend by the handler.
        assert args.workers == "2"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "mr-kcenter", "--backend", "spark"])

    def test_backend_rejected_where_not_honored(self):
        # Subcommands that would silently ignore the knob must reject it.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "sequential-kcenter", "--backend", "serial"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure2", "--backend", "processes"])
        args = build_parser().parse_args(["figure7", "--backend", "processes"])
        assert args.backend == "processes"


class TestMain:
    def test_solve_mr_kcenter(self, capsys):
        exit_code = main([
            "solve", "mr-kcenter", "--dataset", "power",
            "--n-points", "300", "--k", "5", "--ell", "2", "--mu", "2",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "MapReduceKCenter" in output
        assert "radius" in output

    def test_solve_mr_kcenter_from_stream(self, capsys):
        exit_code = main([
            "solve", "mr-kcenter", "--dataset", "power",
            "--n-points", "600", "--k", "5", "--ell", "2", "--mu", "2",
            "--from-stream", "--chunk-size", "128",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "streamed" in output
        assert "coordinator_peak" in output

    def test_solve_mr_outliers_from_stream(self, capsys):
        exit_code = main([
            "solve", "mr-outliers", "--dataset", "higgs",
            "--n-points", "600", "--k", "5", "--z", "10",
            "--ell", "2", "--mu", "2", "--randomized",
            "--from-stream", "--chunk-size", "100",
        ])
        assert exit_code == 0
        assert "streamed" in capsys.readouterr().out

    def test_solve_mr_kcenter_from_stream_disk_storage(self, capsys, tmp_path):
        exit_code = main([
            "solve", "mr-kcenter", "--dataset", "power",
            "--n-points", "600", "--k", "5", "--ell", "2", "--mu", "2",
            "--from-stream", "--chunk-size", "128",
            "--storage", "disk", "--spill-dir", str(tmp_path),
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "disk" in output
        assert "spilled_bytes" in output
        # Spill files are cleaned up after the run.
        assert list(tmp_path.glob("*.npy")) == []

    def test_solve_mr_outliers_from_stream_auto_spills_over_budget(self, capsys):
        exit_code = main([
            "solve", "mr-outliers", "--dataset", "higgs",
            "--n-points", "600", "--k", "5", "--z", "10",
            "--ell", "2", "--mu", "2", "--randomized",
            "--from-stream", "--chunk-size", "100",
            "--storage", "auto", "--memory-budget-mb", "0.001",
        ])
        assert exit_code == 0
        assert "disk" in capsys.readouterr().out

    def test_non_positive_memory_budget_rejected(self):
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            main([
                "solve", "mr-kcenter", "--dataset", "power",
                "--n-points", "300", "--k", "5", "--ell", "2", "--mu", "2",
                "--from-stream", "--memory-budget-mb", "-1",
            ])

    def test_storage_choices_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["solve", "mr-kcenter", "--from-stream", "--storage", "tape"]
            )

    def test_from_stream_rejected_on_non_mr_commands(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["solve", "sequential-kcenter", "--from-stream"]
            )

    def test_solve_mr_outliers_randomized(self, capsys):
        exit_code = main([
            "solve", "mr-outliers", "--dataset", "higgs",
            "--n-points", "300", "--k", "5", "--z", "10",
            "--ell", "2", "--mu", "2", "--randomized",
        ])
        assert exit_code == 0
        assert "randomized" in capsys.readouterr().out

    def test_solve_mr_kcenter_on_threads_backend(self, capsys):
        exit_code = main([
            "solve", "mr-kcenter", "--dataset", "power",
            "--n-points", "300", "--k", "5", "--ell", "2", "--mu", "2",
            "--backend", "threads", "--workers", "2",
        ])
        assert exit_code == 0
        assert "threads" in capsys.readouterr().out

    def test_solve_mr_kcenter_on_distributed_backend(self, capsys):
        from repro.mapreduce import LocalCluster

        with LocalCluster(2) as cluster:
            exit_code = main([
                "solve", "mr-kcenter", "--dataset", "power",
                "--n-points", "300", "--k", "5", "--ell", "2", "--mu", "2",
                "--backend", "distributed", "--workers", ",".join(cluster.addresses),
            ])
        assert exit_code == 0
        assert "distributed" in capsys.readouterr().out

    def test_solve_mr_outliers_distributed_from_stream_disk(self, capsys, tmp_path):
        from repro.mapreduce import LocalCluster

        with LocalCluster(2) as cluster:
            exit_code = main([
                "solve", "mr-outliers", "--dataset", "higgs",
                "--n-points", "400", "--k", "5", "--z", "10",
                "--ell", "2", "--mu", "2", "--randomized",
                "--from-stream", "--chunk-size", "100",
                "--storage", "disk", "--spill-dir", str(tmp_path),
                "--backend", "distributed", "--workers", ",".join(cluster.addresses),
            ])
        assert exit_code == 0
        assert "streamed" in capsys.readouterr().out
        assert list(tmp_path.glob("*.npy")) == []

    def test_distributed_requires_worker_addresses(self):
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError, match="--workers"):
            main([
                "solve", "mr-kcenter", "--n-points", "200", "--k", "4",
                "--backend", "distributed",
            ])

    def test_non_integer_workers_rejected_for_pool_backends(self):
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError, match="integer count"):
            main([
                "solve", "mr-kcenter", "--n-points", "200", "--k", "4",
                "--backend", "threads", "--workers", "host:7071",
            ])

    def test_worker_subcommand_parses(self):
        args = build_parser().parse_args(
            ["worker", "--listen", "127.0.0.1:7071", "--spill-dir", "/tmp/x"]
        )
        assert args.listen == "127.0.0.1:7071"
        assert args.spill_dir == "/tmp/x"

    def test_solve_sequential_outliers(self, capsys):
        exit_code = main([
            "solve", "sequential-outliers", "--dataset", "wiki",
            "--n-points", "200", "--k", "4", "--z", "8", "--mu", "2",
        ])
        assert exit_code == 0
        assert "SequentialKCenterOutliers" in capsys.readouterr().out

    def test_solve_sequential_kcenter(self, capsys):
        exit_code = main([
            "solve", "sequential-kcenter", "--dataset", "power",
            "--n-points", "200", "--k", "4",
        ])
        assert exit_code == 0
        assert "GMM" in capsys.readouterr().out

    def test_ablation_partitioning_figure(self, capsys):
        exit_code = main([
            "ablation-partitioning", "--n-points", "300", "--k", "5", "--z", "10",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "configuration" in output
        assert "randomized" in output

    def test_figure6_scaling(self, capsys):
        exit_code = main([
            "figure6", "--n-points", "150", "--k", "4", "--z", "8", "--seed", "1",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "size_factor" in output
        assert "points_per_s" in output

    def test_ablation_coreset(self, capsys):
        exit_code = main([
            "ablation-coreset", "--n-points", "250", "--k", "5",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "rule" in output
        assert "epsilon" in output
