"""Tests for repro.datasets.synthetic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    GaussianMixtureSpec,
    annulus,
    clustered_with_noise,
    gaussian_mixture,
    points_on_manifold,
    uniform_hypercube,
)
from repro.exceptions import InvalidParameterError


class TestGaussianMixtureSpec:
    def test_valid_spec(self):
        spec = GaussianMixtureSpec(n_clusters=3, dimension=2)
        assert spec.n_clusters == 3

    def test_invalid_cluster_std(self):
        with pytest.raises(InvalidParameterError):
            GaussianMixtureSpec(n_clusters=3, dimension=2, cluster_std=0.0)

    def test_weights_normalised(self):
        spec = GaussianMixtureSpec(n_clusters=2, dimension=1, weights=(1.0, 3.0))
        assert sum(spec.weights) == pytest.approx(1.0)

    def test_invalid_weights_length(self):
        with pytest.raises(InvalidParameterError):
            GaussianMixtureSpec(n_clusters=3, dimension=1, weights=(0.5, 0.5))


class TestGaussianMixture:
    def test_shape(self):
        spec = GaussianMixtureSpec(n_clusters=4, dimension=3)
        points = gaussian_mixture(100, spec, random_state=0)
        assert points.shape == (100, 3)

    def test_reproducible(self):
        spec = GaussianMixtureSpec(n_clusters=4, dimension=3)
        a = gaussian_mixture(50, spec, random_state=42)
        b = gaussian_mixture(50, spec, random_state=42)
        np.testing.assert_allclose(a, b)

    def test_labels_returned(self):
        spec = GaussianMixtureSpec(n_clusters=4, dimension=2)
        points, labels = gaussian_mixture(80, spec, random_state=0, return_labels=True)
        assert labels.shape == (80,)
        assert set(np.unique(labels)).issubset(set(range(4)))

    def test_weighted_components(self):
        spec = GaussianMixtureSpec(n_clusters=2, dimension=1, weights=(0.95, 0.05))
        _, labels = gaussian_mixture(1000, spec, random_state=0, return_labels=True)
        assert (labels == 0).sum() > (labels == 1).sum()


class TestUniformHypercube:
    def test_bounds(self):
        points = uniform_hypercube(200, 4, side=2.0, random_state=0)
        assert points.shape == (200, 4)
        assert points.min() >= 0.0
        assert points.max() <= 2.0

    def test_invalid_side(self):
        with pytest.raises(InvalidParameterError):
            uniform_hypercube(10, 2, side=-1.0)


class TestClusteredWithNoise:
    def test_shape_and_fraction(self):
        points = clustered_with_noise(500, 5, 2, noise_fraction=0.1, random_state=0)
        assert points.shape == (500, 2)

    def test_invalid_fraction(self):
        with pytest.raises(InvalidParameterError):
            clustered_with_noise(100, 3, 2, noise_fraction=1.0)

    def test_zero_noise(self):
        points = clustered_with_noise(100, 3, 2, noise_fraction=0.0, random_state=0)
        assert points.shape == (100, 2)


class TestPointsOnManifold:
    def test_shape(self):
        points = points_on_manifold(100, 2, 8, random_state=0)
        assert points.shape == (100, 8)

    def test_zero_noise_lies_on_subspace(self):
        points = points_on_manifold(200, 2, 6, noise_std=0.0, random_state=0)
        # Rank of the point cloud should be (at most) the intrinsic dimension.
        rank = np.linalg.matrix_rank(points - points.mean(axis=0), tol=1e-6)
        assert rank <= 2

    def test_intrinsic_larger_than_ambient_raises(self):
        with pytest.raises(InvalidParameterError):
            points_on_manifold(10, 5, 3)


class TestAnnulus:
    def test_radii_within_ring(self):
        points = annulus(300, inner_radius=4.0, outer_radius=6.0, random_state=0)
        radii = np.linalg.norm(points, axis=1)
        assert radii.min() >= 4.0 - 1e-9
        assert radii.max() <= 6.0 + 1e-9

    def test_planted_outliers_are_far(self):
        points = annulus(
            100, inner_radius=1.0, outer_radius=2.0, n_planted_outliers=5,
            outlier_distance=100.0, random_state=0,
        )
        radii = np.linalg.norm(points, axis=1)
        assert (radii > 50).sum() == 5

    def test_invalid_ring(self):
        with pytest.raises(InvalidParameterError):
            annulus(10, inner_radius=3.0, outer_radius=2.0)
