"""Tests for repro.datasets.loaders (paper-dataset stand-ins)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    PAPER_DATASETS,
    higgs_like,
    load_paper_dataset,
    power_like,
    stream_paper_dataset,
    wiki_like,
)


class TestStreamPaperDataset:
    def test_chunks_total_n_points(self):
        chunks = list(stream_paper_dataset("power", 1000, chunk_size=128, random_state=0))
        assert sum(chunk.shape[0] for chunk in chunks) == 1000
        assert all(chunk.shape[0] <= 128 for chunk in chunks)
        assert all(chunk.shape[1] == 7 for chunk in chunks)

    def test_deterministic_for_seed(self):
        a = np.vstack(list(stream_paper_dataset("higgs", 500, chunk_size=64, random_state=3)))
        b = np.vstack(list(stream_paper_dataset("higgs", 500, chunk_size=64, random_state=3)))
        np.testing.assert_array_equal(a, b)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            list(stream_paper_dataset("netflix", 100))

    def test_feeds_fit_stream(self):
        from repro.core import MapReduceKCenter
        from repro.streaming import GeneratorStream

        chunks = stream_paper_dataset("power", 800, chunk_size=100, random_state=1)
        result = MapReduceKCenter(5, ell=4, coreset_multiplier=2, random_state=0).fit_stream(
            GeneratorStream(chunks, length_hint=800), chunk_size=100
        )
        assert result.k == 5
        assert result.stats.coordinator_peak_items <= max(100, result.coreset_size)


class TestLoaders:
    def test_higgs_like_dimension(self):
        points = higgs_like(500, random_state=0)
        assert points.shape == (500, 7)
        assert np.all(np.isfinite(points))

    def test_power_like_dimension(self):
        points = power_like(500, random_state=0)
        assert points.shape == (500, 7)
        assert np.all(np.isfinite(points))

    def test_wiki_like_dimension(self):
        points = wiki_like(300, random_state=0)
        assert points.shape == (300, 50)
        assert np.all(np.isfinite(points))

    def test_wiki_like_norm_scale(self):
        points = wiki_like(300, random_state=0)
        norms = np.linalg.norm(points, axis=1)
        # Rows are rescaled to a norm around 5 (word2vec-like shell).
        assert 2.0 < norms.mean() < 8.0

    def test_reproducibility(self):
        a = power_like(100, random_state=5)
        b = power_like(100, random_state=5)
        np.testing.assert_allclose(a, b)

    def test_registry_contains_all(self):
        assert set(PAPER_DATASETS) == {"higgs", "power", "wiki"}

    def test_load_by_name(self):
        points = load_paper_dataset("HIGGS", 200, random_state=0)
        assert points.shape == (200, 7)

    def test_load_unknown_name(self):
        with pytest.raises(KeyError):
            load_paper_dataset("mnist", 10)
