"""Tests for repro.datasets.loaders (paper-dataset stand-ins)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    PAPER_DATASETS,
    higgs_like,
    load_paper_dataset,
    power_like,
    wiki_like,
)


class TestLoaders:
    def test_higgs_like_dimension(self):
        points = higgs_like(500, random_state=0)
        assert points.shape == (500, 7)
        assert np.all(np.isfinite(points))

    def test_power_like_dimension(self):
        points = power_like(500, random_state=0)
        assert points.shape == (500, 7)
        assert np.all(np.isfinite(points))

    def test_wiki_like_dimension(self):
        points = wiki_like(300, random_state=0)
        assert points.shape == (300, 50)
        assert np.all(np.isfinite(points))

    def test_wiki_like_norm_scale(self):
        points = wiki_like(300, random_state=0)
        norms = np.linalg.norm(points, axis=1)
        # Rows are rescaled to a norm around 5 (word2vec-like shell).
        assert 2.0 < norms.mean() < 8.0

    def test_reproducibility(self):
        a = power_like(100, random_state=5)
        b = power_like(100, random_state=5)
        np.testing.assert_allclose(a, b)

    def test_registry_contains_all(self):
        assert set(PAPER_DATASETS) == {"higgs", "power", "wiki"}

    def test_load_by_name(self):
        points = load_paper_dataset("HIGGS", 200, random_state=0)
        assert points.shape == (200, 7)

    def test_load_unknown_name(self):
        with pytest.raises(KeyError):
            load_paper_dataset("mnist", 10)
