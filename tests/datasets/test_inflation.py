"""Tests for repro.datasets.inflation (SMOTE-style scalability instances)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import coordinate_noise_scale, inflate, inflate_streaming
from repro.exceptions import InvalidParameterError


class TestCoordinateNoiseScale:
    def test_ten_percent_of_range(self):
        points = np.array([[0.0, 0.0], [10.0, 100.0]])
        scale = coordinate_noise_scale(points)
        np.testing.assert_allclose(scale, [1.0, 10.0])

    def test_constant_feature_gets_zero_noise(self):
        points = np.array([[1.0, 5.0], [2.0, 5.0]])
        scale = coordinate_noise_scale(points)
        assert scale[1] == pytest.approx(0.0)

    def test_invalid_fraction(self):
        with pytest.raises(InvalidParameterError):
            coordinate_noise_scale(np.ones((3, 2)), fraction=0.0)


class TestInflate:
    def test_factor_one_returns_copy(self, small_blobs):
        inflated = inflate(small_blobs, 1.0, random_state=0)
        np.testing.assert_allclose(inflated, small_blobs)
        inflated[0, 0] = 1e9
        assert small_blobs[0, 0] != 1e9

    def test_size(self, small_blobs):
        inflated = inflate(small_blobs, 3.0, random_state=0)
        assert inflated.shape[0] == 3 * small_blobs.shape[0]
        assert inflated.shape[1] == small_blobs.shape[1]

    def test_original_points_included_first(self, small_blobs):
        inflated = inflate(small_blobs, 2.0, random_state=0)
        np.testing.assert_allclose(inflated[: small_blobs.shape[0]], small_blobs)

    def test_synthetic_points_stay_near_data(self, small_blobs):
        inflated = inflate(small_blobs, 2.0, random_state=0)
        synthetic = inflated[small_blobs.shape[0]:]
        lower = small_blobs.min(axis=0)
        upper = small_blobs.max(axis=0)
        margin = (upper - lower) * 1.0  # generous: noise std is 10% of range
        assert np.all(synthetic >= lower - margin)
        assert np.all(synthetic <= upper + margin)

    def test_factor_below_one_raises(self, small_blobs):
        with pytest.raises(InvalidParameterError):
            inflate(small_blobs, 0.5)


class TestInflateStreaming:
    def test_matches_total_size(self, small_blobs):
        batches = list(inflate_streaming(small_blobs, 2.5, batch_size=64, random_state=0))
        total = sum(batch.shape[0] for batch in batches)
        assert total == int(round(2.5 * small_blobs.shape[0]))

    def test_first_batches_replay_original(self, small_blobs):
        batches = list(inflate_streaming(small_blobs, 2.0, batch_size=50, random_state=0))
        replay = np.vstack(batches)[: small_blobs.shape[0]]
        np.testing.assert_allclose(replay, small_blobs)

    def test_factor_one_only_replays(self, small_blobs):
        batches = list(inflate_streaming(small_blobs, 1.0, batch_size=50, random_state=0))
        total = sum(batch.shape[0] for batch in batches)
        assert total == small_blobs.shape[0]
