"""Tests for repro.datasets.files (CSV loading with the paper's preprocessing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_higgs_csv, load_numeric_csv, load_power_csv
from repro.exceptions import DatasetError


@pytest.fixture
def numeric_csv(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text("1.0,2.0,3.0\n4.0,5.0,6.0\n7.0,8.0,9.0\n")
    return path


@pytest.fixture
def higgs_csv(tmp_path):
    # label + 21 low-level + 7 derived features = 29 columns.
    rows = []
    for i in range(4):
        row = [str(i % 2)] + [f"{0.1 * j + i:.3f}" for j in range(21)] + [
            f"{10.0 + j + i:.3f}" for j in range(7)
        ]
        rows.append(",".join(row))
    path = tmp_path / "higgs.csv"
    path.write_text("\n".join(rows) + "\n")
    return path


@pytest.fixture
def power_csv(tmp_path):
    header = "Date;Time;Global_active_power;Global_reactive_power;Voltage;Global_intensity;Sub_metering_1;Sub_metering_2;Sub_metering_3"
    rows = [
        "16/12/2006;17:24:00;4.216;0.418;234.840;18.400;0.000;1.000;17.000",
        "16/12/2006;17:25:00;?;?;?;?;?;?;?",  # missing row, must be dropped
        "16/12/2006;17:26:00;5.360;0.436;233.630;23.000;0.000;2.000;16.000",
    ]
    path = tmp_path / "power.txt"
    path.write_text(header + "\n" + "\n".join(rows) + "\n")
    return path


class TestLoadNumericCsv:
    def test_loads_all_columns(self, numeric_csv):
        data = load_numeric_csv(numeric_csv)
        assert data.shape == (3, 3)
        assert data[1, 2] == pytest.approx(6.0)

    def test_column_selection(self, numeric_csv):
        data = load_numeric_csv(numeric_csv, columns=(0, 2))
        assert data.shape == (3, 2)
        np.testing.assert_allclose(data[0], [1.0, 3.0])

    def test_max_rows(self, numeric_csv):
        data = load_numeric_csv(numeric_csv, max_rows=2)
        assert data.shape == (2, 3)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_numeric_csv(tmp_path / "nope.csv")

    def test_unparseable_value(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1.0,hello\n")
        with pytest.raises(DatasetError):
            load_numeric_csv(path)

    def test_all_rows_missing(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("?,?\n?,?\n")
        with pytest.raises(DatasetError):
            load_numeric_csv(path)

    def test_drop_missing_false_raises(self, tmp_path):
        path = tmp_path / "missing.csv"
        path.write_text("1.0,?\n")
        with pytest.raises(DatasetError):
            load_numeric_csv(path, drop_missing=False)


class TestPaperLoaders:
    def test_higgs_keeps_only_derived_features(self, higgs_csv):
        data = load_higgs_csv(higgs_csv)
        assert data.shape == (4, 7)
        # The derived features of the fixture start at 10.0.
        assert data.min() >= 10.0

    def test_higgs_max_rows(self, higgs_csv):
        assert load_higgs_csv(higgs_csv, max_rows=2).shape == (2, 7)

    def test_power_drops_missing_and_non_numeric_columns(self, power_csv):
        data = load_power_csv(power_csv)
        assert data.shape == (2, 7)
        assert data[0, 0] == pytest.approx(4.216)
        assert data[1, 2] == pytest.approx(233.630)
