"""Tests for repro.datasets.outliers (the paper's outlier-injection procedure)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import inject_outliers
from repro.exceptions import InvalidParameterError
from repro.metricspace import minimum_enclosing_ball


class TestInjectOutliers:
    def test_counts(self, small_blobs):
        injection = inject_outliers(small_blobs, 10, random_state=0)
        assert injection.points.shape[0] == small_blobs.shape[0] + 10
        assert injection.n_outliers == 10
        assert injection.outlier_indices.shape == (10,)

    def test_zero_outliers(self, small_blobs):
        injection = inject_outliers(small_blobs, 0, random_state=0)
        assert injection.points.shape == small_blobs.shape
        assert injection.n_outliers == 0

    def test_outliers_are_far_from_data(self, small_blobs):
        injection = inject_outliers(small_blobs, 8, random_state=1)
        mask = injection.outlier_mask()
        originals = injection.points[~mask]
        planted = injection.points[mask]
        ball = minimum_enclosing_ball(originals)
        for point in planted:
            distances = np.linalg.norm(originals - point, axis=1)
            # Paper's construction guarantees distance >= 99 * r_MEB.
            assert distances.min() >= 90.0 * ball.radius

    def test_outliers_mutually_separated(self, small_blobs):
        injection = inject_outliers(small_blobs, 8, random_state=2)
        planted = injection.points[injection.outlier_mask()]
        for i in range(planted.shape[0]):
            for j in range(i + 1, planted.shape[0]):
                separation = np.linalg.norm(planted[i] - planted[j])
                assert separation >= 10.0 * injection.meb_radius - 1e-6

    def test_shuffle_false_appends_at_end(self, small_blobs):
        injection = inject_outliers(small_blobs, 5, shuffle=False, random_state=0)
        expected = np.arange(small_blobs.shape[0], small_blobs.shape[0] + 5)
        np.testing.assert_array_equal(injection.outlier_indices, expected)
        np.testing.assert_allclose(injection.points[: small_blobs.shape[0]], small_blobs)

    def test_outlier_mask_matches_indices(self, small_blobs):
        injection = inject_outliers(small_blobs, 6, random_state=3)
        mask = injection.outlier_mask()
        np.testing.assert_array_equal(np.flatnonzero(mask), injection.outlier_indices)

    def test_reproducible(self, small_blobs):
        a = inject_outliers(small_blobs, 7, random_state=9)
        b = inject_outliers(small_blobs, 7, random_state=9)
        np.testing.assert_allclose(a.points, b.points)
        np.testing.assert_array_equal(a.outlier_indices, b.outlier_indices)

    def test_invalid_distance_factor(self, small_blobs):
        with pytest.raises(InvalidParameterError):
            inject_outliers(small_blobs, 3, distance_factor=0.5)

    def test_impossible_separation_raises(self, small_blobs):
        # Demanding separation larger than the diameter of the sphere the
        # outliers live on cannot be satisfied.
        with pytest.raises(InvalidParameterError):
            inject_outliers(
                small_blobs,
                50,
                distance_factor=2.0,
                min_separation_factor=100.0,
                max_attempts=3,
                random_state=0,
            )
