"""Property-based tests for GMM and the exact solvers."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import gmm_adaptive, gmm_select
from repro.evaluation import (
    optimal_kcenter_radius,
    optimal_kcenter_with_outliers_radius,
)

coordinates = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)


def small_point_sets(min_points=4, max_points=14, max_dim=3):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(min_points, max_points), st.integers(1, max_dim)),
        elements=coordinates,
    )


class TestGMMProperties:
    @given(points=small_point_sets(), k=st.integers(1, 5))
    @settings(max_examples=60, deadline=None)
    def test_two_approximation(self, points, k):
        k = min(k, points.shape[0])
        result = gmm_select(points, k)
        optimum = optimal_kcenter_radius(points, k)
        scale = max(1.0, np.abs(points).max())
        assert result.radius <= 2.0 * optimum + 1e-6 * scale

    @given(points=small_point_sets())
    @settings(max_examples=40, deadline=None)
    def test_radius_history_non_increasing(self, points):
        result = gmm_select(points, min(6, points.shape[0]))
        history = result.radius_history
        assert np.all(np.diff(history) <= 1e-9 * max(1.0, history[0]))

    @given(points=small_point_sets(), k=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_centers_distinct_until_saturation(self, points, k):
        k = min(k, points.shape[0])
        result = gmm_select(points, k)
        assert len(set(result.centers.tolist())) == result.n_centers

    @given(points=small_point_sets(), k=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_adaptive_stopping_condition(self, points, k):
        k = min(k, points.shape[0])
        epsilon = 0.5
        result = gmm_adaptive(points, k, epsilon)
        radius_at_k = result.radius_history[min(k, result.n_centers) - 1]
        assert result.radius <= (epsilon / 2.0) * radius_at_k + 1e-9 * max(1.0, radius_at_k)


class TestExactSolverProperties:
    @given(points=small_point_sets(min_points=5, max_points=10), z=st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_outlier_optimum_monotone_in_z(self, points, z):
        k = 2
        z = min(z, points.shape[0] - 1)
        with_z = optimal_kcenter_with_outliers_radius(points, k, z)
        without = optimal_kcenter_with_outliers_radius(points, k, 0)
        assert with_z <= without + 1e-12

    @given(points=small_point_sets(min_points=6, max_points=10))
    @settings(max_examples=30, deadline=None)
    def test_equation_1(self, points):
        # r*_{k+z}(S) <= r*_{k,z}(S) for every instance.
        k, z = 2, 2
        lhs = optimal_kcenter_radius(points, k + z)
        rhs = optimal_kcenter_with_outliers_radius(points, k, z)
        assert lhs <= rhs + 1e-12
