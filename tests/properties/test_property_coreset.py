"""Property-based tests for coreset construction and OUTLIERSCLUSTER."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    CoresetSpec,
    OutliersClusterSolver,
    build_coreset,
    search_radius,
)
from repro.metricspace import WeightedPoints

coordinates = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False)


def point_sets(min_points=8, max_points=40, max_dim=3):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(min_points, max_points), st.integers(1, max_dim)),
        elements=coordinates,
    )


class TestCoresetProperties:
    @given(points=point_sets(), k=st.integers(1, 4), mu=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_weights_conserve_partition_size(self, points, k, mu):
        spec = CoresetSpec.from_multiplier(min(k, points.shape[0]), mu)
        result = build_coreset(points, spec, weighted=True)
        assert result.coreset.total_weight == points.shape[0]

    @given(points=point_sets(), k=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_proxy_distance_bounded_by_base_radius(self, points, k):
        # With the epsilon rule, max proxy distance <= (eps/2) * r_{T^k}.
        k = min(k, points.shape[0])
        epsilon = 0.5
        spec = CoresetSpec.from_epsilon(k, epsilon)
        result = build_coreset(points, spec, weighted=True)
        scale = max(1.0, result.gmm_radius_at_base)
        assert result.max_proxy_distance <= (epsilon / 2.0) * result.gmm_radius_at_base + 1e-9 * scale

    @given(points=point_sets(), k=st.integers(1, 4), mu=st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_coreset_points_are_input_points(self, points, k, mu):
        spec = CoresetSpec.from_multiplier(min(k, points.shape[0]), mu)
        result = build_coreset(points, spec)
        np.testing.assert_allclose(result.coreset.points, points[result.center_indices])


class TestOutliersClusterProperties:
    @given(points=point_sets(max_points=25), k=st.integers(1, 3), z=st.integers(0, 4))
    @settings(max_examples=40, deadline=None)
    def test_radius_search_result_is_feasible(self, points, k, z):
        coreset = WeightedPoints(points=points, weights=np.ones(points.shape[0]))
        solver = OutliersClusterSolver(coreset, k=k, eps_hat=0.1)
        result = search_radius(solver, z=z)
        assert result.solution.uncovered_weight <= z + 1e-9

    @given(points=point_sets(max_points=25), k=st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_uncovered_weight_monotone_in_radius(self, points, k):
        coreset = WeightedPoints(points=points, weights=np.ones(points.shape[0]))
        solver = OutliersClusterSolver(coreset, k=k, eps_hat=0.0)
        diameter = float(solver.pairwise_distances.max())
        small = solver.uncovered_weight(diameter * 0.1)
        large = solver.uncovered_weight(diameter)
        assert large <= small + 1e-9

    @given(points=point_sets(max_points=20), k=st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_selected_centers_within_coreset(self, points, k):
        coreset = WeightedPoints(points=points, weights=np.ones(points.shape[0]))
        solver = OutliersClusterSolver(coreset, k=k, eps_hat=0.2)
        result = solver.run(radius=1.0)
        assert np.all(result.center_indices < len(coreset))
        assert np.all(result.center_indices >= 0)
