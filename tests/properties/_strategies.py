"""Shared hypothesis strategies for the property-based suites.

Imported by the test modules in this directory via pytest's rootdir
``sys.path`` insertion (the test tree is not a package), so the module
name is prefixed to stay out of the way of any real package.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

coordinates = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def streams(min_points=5, max_points=80, max_dim=3):
    """Random finite point streams as ``(n, d)`` float64 arrays."""
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(min_points, max_points), st.integers(1, max_dim)),
        elements=coordinates,
    )
