"""Property-based test of Lemma 5 in its weighted (coreset) form.

Lemma 5 is the heart of the outlier analysis: when OUTLIERSCLUSTER runs
on the *weighted* union of coresets with any radius ``r >= r*_{k,z}(S)``,
the total weight left uncovered is at most ``z`` (so the corresponding
original points can legitimately be declared outliers). We check this end
to end on random small instances: build the weighted coreset with the
epsilon rule (as the sequential / ell = 1 algorithm does), compute the
true ``r*_{k,z}`` by brute force, and verify the uncovered-weight bound.

The lemma needs the proxy error to be accounted for: the uncovered weight
is guaranteed to be at most ``z`` when the radius handed to
OUTLIERSCLUSTER is at least ``r*_{k,z}``, *given* that the coreset's
proxy distance is at most ``eps_hat * r*_{k,z}`` (Lemma 4). The epsilon
rule guarantees the latter, so the combined statement must hold.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import CoresetSpec, OutliersClusterSolver, build_coreset
from repro.evaluation import optimal_kcenter_with_outliers_radius

coordinates = st.floats(min_value=-30.0, max_value=30.0, allow_nan=False, allow_infinity=False)


def instances():
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(8, 16), st.integers(1, 2)),
        elements=coordinates,
    )


class TestWeightedLemma5:
    @given(points=instances(), k=st.integers(1, 3), z=st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_uncovered_weight_at_most_z_at_optimal_radius(self, points, k, z):
        k = min(k, points.shape[0] - 1) or 1
        z = min(z, points.shape[0] - k - 1)
        if z < 0:
            z = 0
        epsilon = 1.0
        eps_hat = epsilon / 6.0

        coreset = build_coreset(
            points, CoresetSpec.from_epsilon(k + z, epsilon), weighted=True
        ).coreset
        optimum = optimal_kcenter_with_outliers_radius(points, k, z)

        solver = OutliersClusterSolver(coreset, k=k, eps_hat=eps_hat)
        result = solver.run(radius=max(optimum, 1e-12))
        scale = max(1.0, np.abs(points).max())
        assert result.uncovered_weight <= z + 1e-7 * scale

    @given(points=instances(), k=st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_covered_points_within_three_plus_eps_of_centers(self, points, k):
        # The companion claim of Lemma 5: every covered coreset point lies
        # within (3 + 4 eps_hat) r of the selected centers.
        k = min(k, points.shape[0] - 1) or 1
        eps_hat = 1.0 / 6.0
        coreset = build_coreset(
            points, CoresetSpec.from_epsilon(k, 1.0), weighted=True
        ).coreset
        solver = OutliersClusterSolver(coreset, k=k, eps_hat=eps_hat)
        radius = float(np.median(solver.candidate_radii())) if len(coreset) > 1 else 0.0
        result = solver.run(radius)
        covered = ~result.uncovered_mask
        if covered.any() and result.n_centers:
            distances = solver.pairwise_distances[np.ix_(covered, result.center_indices)]
            scale = max(1.0, radius)
            assert distances.min(axis=1).max() <= (3 + 4 * eps_hat) * radius + 1e-7 * scale
