"""Batched-vs-per-point equivalence of the streaming engine.

The batch protocol's contract is *order equivalence*: for any stream and
any ``batch_size`` (including 1 and larger than the stream), processing
the stream in chunks must leave every streaming solver in exactly the
state that per-point processing produces — identical coreset state
(centers, weights, phi, n_processed) and identical final solutions.

Two layers of evidence:

* a hypothesis property over :class:`~repro.core.StreamingCoreset` with
  arbitrary streams and arbitrary chunkings of the same stream;
* a deterministic parametrized suite driving all four streaming solvers
  (CORESETSTREAM, CORESETOUTLIERS, BASESTREAM of McCutchen–Khuller, and
  the doubling baseline) plus the 2-pass variant and BASEOUTLIERS
  through :class:`~repro.streaming.StreamingRunner` at batch sizes
  {1, 7, 64, 1024} against the per-point path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import BaseStreamKCenter, BaseStreamOutliers, DoublingStreamKCenter
from repro.core import (
    CoresetStreamKCenter,
    CoresetStreamOutliers,
    StreamingCoreset,
    TwoPassStreamOutliers,
)
from repro.streaming import ArrayStream, StreamingRunner

from _strategies import streams

BATCH_SIZES = (1, 7, 64, 1024)


def _assert_same_coreset(batched: StreamingCoreset, reference: StreamingCoreset) -> None:
    assert batched.n_processed == reference.n_processed
    assert batched.phi == reference.phi
    assert batched.size == reference.size
    assert np.array_equal(batched.centers, reference.centers)
    assert np.array_equal(batched.weights, reference.weights)
    assert batched.peak_working_memory_size == reference.peak_working_memory_size


class TestStreamingCoresetBatchEquivalence:
    @given(
        points=streams(),
        tau=st.integers(1, 12),
        chunking=st.lists(st.integers(1, 30), min_size=1, max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_chunking_matches_per_point(self, points, tau, chunking):
        reference = StreamingCoreset(tau=tau)
        for point in points:
            reference.process(point)

        batched = StreamingCoreset(tau=tau)
        position = 0
        chunk_index = 0
        while position < points.shape[0]:
            size = chunking[chunk_index % len(chunking)]
            batched.process_batch(points[position : position + size])
            position += size
            chunk_index += 1
        _assert_same_coreset(batched, reference)

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_batch_sizes_match_per_point(self, medium_blobs, batch_size):
        tau = 25
        reference = StreamingCoreset(tau=tau)
        for point in medium_blobs:
            reference.process(point)

        batched = StreamingCoreset(tau=tau)
        for start in range(0, medium_blobs.shape[0], batch_size):
            batched.process_batch(medium_blobs[start : start + batch_size])
        _assert_same_coreset(batched, reference)

    def test_empty_batch_is_a_no_op(self):
        coreset = StreamingCoreset(tau=3)
        coreset.process_batch(np.empty((0, 2)))
        assert coreset.n_processed == 0


def _solver_factories():
    return {
        "coreset-stream": lambda: CoresetStreamKCenter(
            6, coreset_multiplier=4, random_state=5
        ),
        "coreset-outliers": lambda: CoresetStreamOutliers(4, 10, coreset_multiplier=2),
        "base-stream": lambda: BaseStreamKCenter(6, n_instances=4),
        "doubling": lambda: DoublingStreamKCenter(7),
        "base-outliers": lambda: BaseStreamOutliers(
            4, 8, n_instances=2, buffer_capacity=40
        ),
        "two-pass": lambda: TwoPassStreamOutliers(
            4, 10, epsilon=0.5, max_coreset_size=80
        ),
    }


def _stress_stream(medium_blobs: np.ndarray) -> np.ndarray:
    # Clusters + far-away points (forces merges) + exact duplicates (forces
    # argmin tie-breaks) — the cases where batched bookkeeping could drift.
    rng = np.random.default_rng(99)
    far = rng.normal(size=(60, medium_blobs.shape[1])) * 400.0
    stream = np.vstack([medium_blobs, far, medium_blobs[:23]])
    return stream[rng.permutation(stream.shape[0])]


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("name", sorted(_solver_factories()))
def test_solver_batched_runner_matches_per_point(medium_blobs, name, batch_size):
    make = _solver_factories()[name]
    stream = _stress_stream(medium_blobs)

    reference_algorithm = make()
    reference = StreamingRunner().run(
        reference_algorithm,
        ArrayStream(stream, max_passes=reference_algorithm.n_passes),
    )

    algorithm = make()
    report = StreamingRunner(batch_size=batch_size).run(
        algorithm, ArrayStream(stream, max_passes=algorithm.n_passes)
    )

    assert report.n_points == reference.n_points
    assert report.n_passes == reference.n_passes
    assert report.peak_memory == reference.peak_memory
    assert np.array_equal(report.result.centers, reference.result.centers)
    assert report.result.n_processed == reference.result.n_processed


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_coreset_stream_internal_state_matches(medium_blobs, batch_size):
    stream = _stress_stream(medium_blobs)

    reference = CoresetStreamKCenter(6, coreset_multiplier=4, random_state=5)
    StreamingRunner().run(reference, ArrayStream(stream))

    batched = CoresetStreamKCenter(6, coreset_multiplier=4, random_state=5)
    StreamingRunner(batch_size=batch_size).run(batched, ArrayStream(stream))

    _assert_same_coreset(batched._coreset, reference._coreset)
