"""Bit-identical equivalence of the distributed backend with the serial reference.

The distributed counterpart of ``test_property_mr_equivalence``: for
fixed seeds, a 2-worker loopback :class:`~repro.mapreduce.LocalCluster`
must produce **bit-identical** centers, center indices, radii and
outlier sets compared with ``backend="serial"`` across

* both MapReduce drivers (k-center and k-center-with-outliers),
* both drive paths (the in-memory ``fit`` and the out-of-core
  ``fit_stream``),
* the memory and disk partition-storage tiers (the two tiers whose
  handles are valid across address spaces: by-value rows, and spill
  files pushed as raw bytes),
* every partitioning and several chunk sizes,

and a worker killed mid-job must not change the solution — only add a
reassignment to :attr:`~repro.mapreduce.runtime.JobStats.worker_assignments`.
This is the acceptance contract of the distributed backend (ISSUE 5):
all randomness is drawn in the coordinator before dispatch, so remote
execution may only move computation, never change it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MapReduceKCenter, MapReduceKCenterOutliers
from repro.mapreduce import LocalCluster
from repro.streaming import ArrayStream

STORAGE_TIERS = ("memory", "disk")
CHUNK_SIZES = (64, 251, 4096)


@pytest.fixture(scope="module")
def dataset():
    from repro.datasets import higgs_like, inject_outliers

    points = higgs_like(1200, random_state=17)
    return inject_outliers(points, 40, random_state=18)


@pytest.fixture(scope="module")
def cluster():
    with LocalCluster(2) as loopback:
        yield loopback


def _kcenter(workers=None, **kwargs):
    kwargs.setdefault("partitioning", "random")
    kwargs.setdefault("random_state", 5)
    return MapReduceKCenter(6, ell=4, coreset_multiplier=3, workers=workers, **kwargs)


def _outliers(workers=None, **kwargs):
    return MapReduceKCenterOutliers(
        5, 40, ell=4, coreset_multiplier=3, include_log_term=False,
        random_state=5, workers=workers, **kwargs,
    )


def _assert_kcenter_equal(result, reference):
    np.testing.assert_array_equal(result.center_indices, reference.center_indices)
    np.testing.assert_array_equal(result.centers, reference.centers)
    assert result.radius == reference.radius
    assert result.coreset_size == reference.coreset_size


def _assert_outliers_equal(result, reference):
    np.testing.assert_array_equal(result.center_indices, reference.center_indices)
    np.testing.assert_array_equal(result.centers, reference.centers)
    assert result.radius == reference.radius
    assert result.radius_all_points == reference.radius_all_points
    assert result.estimated_radius == reference.estimated_radius
    np.testing.assert_array_equal(result.outlier_indices, reference.outlier_indices)


class TestKCenterEquivalence:
    def test_fit_matches_serial(self, dataset, cluster):
        points = dataset.points
        reference = _kcenter().fit(points)
        distributed = _kcenter(cluster.addresses).fit(points)
        _assert_kcenter_equal(distributed, reference)

    @pytest.mark.parametrize("storage", STORAGE_TIERS)
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_fit_stream_matches_serial_fit(self, dataset, cluster, storage, chunk_size):
        points = dataset.points
        reference = _kcenter().fit(points)
        distributed = _kcenter(cluster.addresses).fit_stream(
            ArrayStream(points), chunk_size=chunk_size, storage=storage
        )
        assert distributed.stats.storage_tier == storage
        _assert_kcenter_equal(distributed, reference)

    @pytest.mark.parametrize("partitioning", ("contiguous", "round_robin", "random"))
    def test_partitionings_match_across_paths(self, dataset, cluster, partitioning):
        points = dataset.points
        reference = _kcenter(partitioning=partitioning, random_state=9).fit(points)
        d_fit = _kcenter(
            cluster.addresses, partitioning=partitioning, random_state=9
        ).fit(points)
        d_stream = _kcenter(
            cluster.addresses, partitioning=partitioning, random_state=9
        ).fit_stream(ArrayStream(points), chunk_size=200)
        _assert_kcenter_equal(d_fit, reference)
        _assert_kcenter_equal(d_stream, reference)


class TestOutliersEquivalence:
    def test_fit_matches_serial(self, dataset, cluster):
        points = dataset.points
        reference = _outliers().fit(points)
        distributed = _outliers(cluster.addresses).fit(points)
        _assert_outliers_equal(distributed, reference)

    @pytest.mark.parametrize("storage", STORAGE_TIERS)
    def test_fit_stream_matches_serial_fit(self, dataset, cluster, storage):
        points = dataset.points
        reference = _outliers().fit(points)
        distributed = _outliers(cluster.addresses).fit_stream(
            ArrayStream(points), chunk_size=251, storage=storage
        )
        assert distributed.stats.storage_tier == storage
        _assert_outliers_equal(distributed, reference)

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_randomized_variant_matches(self, dataset, cluster, chunk_size):
        points = dataset.points
        reference = _outliers(randomized=True).fit(points)
        distributed = _outliers(cluster.addresses, randomized=True).fit_stream(
            ArrayStream(points), chunk_size=chunk_size
        )
        np.testing.assert_array_equal(
            distributed.center_indices, reference.center_indices
        )
        assert distributed.radius == reference.radius
        np.testing.assert_array_equal(
            distributed.outlier_indices, reference.outlier_indices
        )

    def test_recovers_planted_outliers(self, dataset, cluster):
        distributed = _outliers(cluster.addresses, randomized=True).fit_stream(
            ArrayStream(dataset.points), chunk_size=128, storage="disk"
        )
        assert set(distributed.outlier_indices) == set(dataset.outlier_indices)


class TestWorkerKillEquivalence:
    """A mid-job worker death must not change the solution (ISSUE 5 acceptance)."""

    @pytest.mark.parametrize("storage", STORAGE_TIERS)
    def test_kcenter_survives_worker_death(self, dataset, storage):
        points = dataset.points
        reference = _kcenter().fit(points)
        with LocalCluster(2, fail_after_tasks={0: 1}) as flaky:
            distributed = _kcenter(flaky.addresses).fit_stream(
                ArrayStream(points), chunk_size=251, storage=storage
            )
        _assert_kcenter_equal(distributed, reference)
        retried = [
            key
            for round_assignments in distributed.stats.worker_assignments
            for key, attempts in round_assignments.items()
            if len(attempts) > 1
        ]
        assert retried, "JobStats must record the reassignment"

    def test_outliers_survive_truncated_result(self, dataset):
        points = dataset.points
        reference = _outliers().fit(points)
        with LocalCluster(2, fail_after_tasks={0: 1}, fail_mode="truncate") as flaky:
            distributed = _outliers(flaky.addresses).fit_stream(
                ArrayStream(points), chunk_size=251, storage="disk"
            )
        _assert_outliers_equal(distributed, reference)

    def test_in_memory_fit_survives_worker_death(self, dataset):
        points = dataset.points
        reference = _outliers().fit(points)
        with LocalCluster(2, fail_after_tasks={1: 1}) as flaky:
            distributed = _outliers(flaky.addresses).fit(points)
        _assert_outliers_equal(distributed, reference)


class TestAccounting:
    def test_reducer_side_accounting_matches_serial(self, dataset, cluster):
        points = dataset.points
        reference = _kcenter().fit_stream(ArrayStream(points), chunk_size=251)
        distributed = _kcenter(cluster.addresses).fit_stream(
            ArrayStream(points), chunk_size=251
        )
        # The paper's M_L is computed in the coordinator before dispatch
        # and must not depend on where the reducers ran.
        assert (
            distributed.stats.peak_local_memory == reference.stats.peak_local_memory
        )
        assert distributed.stats.bytes_shipped > 0
        assert reference.stats.bytes_shipped == 0
        assert len(distributed.stats.worker_assignments) == len(
            distributed.stats.rounds
        )
