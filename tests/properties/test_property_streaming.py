"""Property-based tests for the streaming coreset invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import StreamingCoreset
from repro.metricspace import pairwise

from _strategies import streams


class TestStreamingCoresetInvariants:
    @given(points=streams(), tau=st.integers(1, 12))
    @settings(max_examples=50, deadline=None)
    def test_invariant_a_size_never_exceeds_tau(self, points, tau):
        coreset = StreamingCoreset(tau=tau)
        for point in points:
            coreset.process(point)
            if coreset.is_initialized:
                assert coreset.size <= tau

    @given(points=streams(), tau=st.integers(2, 10))
    @settings(max_examples=50, deadline=None)
    def test_invariant_b_pairwise_separation(self, points, tau):
        coreset = StreamingCoreset(tau=tau)
        for point in points:
            coreset.process(point)
        if coreset.is_initialized and coreset.size > 1 and coreset.phi > 0:
            distances = pairwise(coreset.centers)
            off_diag = distances[np.triu_indices(coreset.size, k=1)]
            assert off_diag.min() > 4.0 * coreset.phi - 1e-7 * max(1.0, coreset.phi)

    @given(points=streams(), tau=st.integers(1, 10))
    @settings(max_examples=50, deadline=None)
    def test_invariant_c_coverage(self, points, tau):
        coreset = StreamingCoreset(tau=tau)
        for point in points:
            coreset.process(point)
        centers = coreset.centers
        distances = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2).min(axis=1)
        bound = 8.0 * coreset.phi
        scale = max(1.0, np.abs(points).max())
        assert distances.max() <= bound + 1e-7 * scale

    @given(points=streams(), tau=st.integers(1, 10))
    @settings(max_examples=50, deadline=None)
    def test_invariant_d_weight_conservation(self, points, tau):
        coreset = StreamingCoreset(tau=tau)
        for point in points:
            coreset.process(point)
        assert coreset.weights.sum() == points.shape[0]

    @given(points=streams(min_points=10), tau=st.integers(2, 8))
    @settings(max_examples=30, deadline=None)
    def test_working_memory_bound(self, points, tau):
        coreset = StreamingCoreset(tau=tau)
        for point in points:
            coreset.process(point)
            assert coreset.working_memory_size <= tau + 1
