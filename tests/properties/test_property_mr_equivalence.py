"""Cross-path equivalence of the MapReduce drivers.

The MapReduce counterpart of ``test_property_batch_equivalence``: for
fixed seeds, the solvers must produce **bit-identical** centers, center
indices, radii and outlier sets across

* every executor backend (serial / threads / processes),
* every partition-storage tier (in-process memory / POSIX shared memory
  / disk spill files), and
* every drive path — the in-memory ``fit`` and the out-of-core
  ``fit_stream`` at several chunk sizes, fed from both an
  :class:`~repro.streaming.stream.ArrayStream` and a single-pass
  :class:`~repro.streaming.stream.GeneratorStream`.

This is what lets the streamed shuffle (and the pooled backends, and the
spill-to-disk tier) inherit the paper-faithfulness arguments of the
serial in-memory reference, and it doubles as the acceptance check that
the coordinator's working set is bounded by O(chunk + coreset) instead
of O(n) — including when the partitions spill past the shared-memory
budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MapReduceKCenter, MapReduceKCenterOutliers
from repro.streaming import ArrayStream, GeneratorStream

BACKENDS = ("serial", "threads", "processes")
STORAGE_TIERS = ("memory", "shared", "disk")
CHUNK_SIZES = (64, 251, 4096)


@pytest.fixture(scope="module")
def dataset():
    from repro.datasets import higgs_like, inject_outliers

    points = higgs_like(1200, random_state=17)
    return inject_outliers(points, 40, random_state=18)


def _kcenter(backend):
    return MapReduceKCenter(
        6, ell=4, coreset_multiplier=3, partitioning="random",
        random_state=5, backend=backend, max_workers=2,
    )


def _outliers(backend, **kwargs):
    return MapReduceKCenterOutliers(
        5, 40, ell=4, coreset_multiplier=3, include_log_term=False,
        random_state=5, backend=backend, max_workers=2, **kwargs,
    )


class TestKCenterEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_streamed_matches_in_memory(self, dataset, backend, chunk_size):
        points = dataset.points
        reference = _kcenter("serial").fit(points)
        streamed = _kcenter(backend).fit_stream(
            ArrayStream(points), chunk_size=chunk_size
        )
        np.testing.assert_array_equal(streamed.center_indices, reference.center_indices)
        np.testing.assert_array_equal(streamed.centers, reference.centers)
        assert streamed.radius == reference.radius
        assert streamed.coreset_size == reference.coreset_size

    @pytest.mark.parametrize("partitioning", ("contiguous", "round_robin", "random"))
    def test_partitionings_match_across_paths(self, dataset, partitioning):
        points = dataset.points
        solver = MapReduceKCenter(
            6, ell=4, coreset_multiplier=3, partitioning=partitioning, random_state=9
        )
        in_memory = solver.fit(points)
        streamed = solver.fit_stream(ArrayStream(points), chunk_size=200)
        np.testing.assert_array_equal(streamed.center_indices, in_memory.center_indices)
        assert streamed.radius == in_memory.radius

    def test_generator_stream_matches_array_stream(self, dataset):
        points = dataset.points

        def chunks():
            for start in range(0, points.shape[0], 300):
                yield points[start : start + 300]

        # Unknown-length single-pass source; round_robin needs no length.
        solver = MapReduceKCenter(
            6, ell=4, coreset_multiplier=3, partitioning="round_robin", random_state=5
        )
        from_array = solver.fit_stream(ArrayStream(points), chunk_size=300)
        from_generator = solver.fit_stream(GeneratorStream(chunks()), chunk_size=300)
        np.testing.assert_array_equal(
            from_generator.center_indices, from_array.center_indices
        )
        assert from_generator.radius == from_array.radius


class TestOutliersEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_streamed_matches_in_memory(self, dataset, backend):
        points = dataset.points
        reference = _outliers("serial").fit(points)
        streamed = _outliers(backend).fit_stream(ArrayStream(points), chunk_size=251)
        np.testing.assert_array_equal(streamed.center_indices, reference.center_indices)
        np.testing.assert_array_equal(streamed.centers, reference.centers)
        assert streamed.radius == reference.radius
        assert streamed.radius_all_points == reference.radius_all_points
        assert streamed.estimated_radius == reference.estimated_radius
        np.testing.assert_array_equal(
            streamed.outlier_indices, reference.outlier_indices
        )

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_randomized_variant_matches(self, dataset, chunk_size):
        points = dataset.points
        in_memory = _outliers(None, randomized=True).fit(points)
        streamed = _outliers(None, randomized=True).fit_stream(
            ArrayStream(points), chunk_size=chunk_size
        )
        np.testing.assert_array_equal(streamed.center_indices, in_memory.center_indices)
        assert streamed.radius == in_memory.radius
        np.testing.assert_array_equal(
            streamed.outlier_indices, in_memory.outlier_indices
        )

    def test_recovers_planted_outliers_out_of_core(self, dataset):
        streamed = _outliers("processes", randomized=True).fit_stream(
            ArrayStream(dataset.points), chunk_size=128
        )
        assert set(streamed.outlier_indices) == set(dataset.outlier_indices)


class TestCoordinatorMemoryBound:
    def test_streamed_coordinator_peak_is_chunk_plus_coreset(self, dataset):
        points = dataset.points
        n = points.shape[0]
        chunk_size = 128
        in_memory = _outliers("serial").fit(points)
        streamed = _outliers("serial").fit_stream(
            ArrayStream(points), chunk_size=chunk_size
        )
        # In-memory: the coordinator materialises all n points.
        assert in_memory.stats.coordinator_peak_items >= n
        # Streamed: one chunk or the coreset union, whichever is larger —
        # measurably below the full materialisation.
        bound = max(chunk_size, streamed.coreset_size)
        assert streamed.stats.coordinator_peak_items <= bound
        assert streamed.stats.coordinator_peak_items < n
        # Reducer-side accounting (the paper's M_L) is unchanged.
        assert (
            streamed.stats.rounds[0].max_local_memory
            == in_memory.stats.rounds[0].max_local_memory
        )

    def test_peak_working_memory_reported_on_results(self, dataset):
        points = dataset.points
        in_memory = _kcenter("serial").fit(points)
        streamed = _kcenter("serial").fit_stream(ArrayStream(points), chunk_size=100)
        assert in_memory.peak_working_memory_size >= points.shape[0]
        assert streamed.peak_working_memory_size < in_memory.peak_working_memory_size


class TestStorageTierEquivalence:
    """All three partition-storage tiers must be bit-identical to ``fit``."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("storage", STORAGE_TIERS)
    def test_kcenter_every_tier_on_every_backend(self, dataset, backend, storage):
        points = dataset.points
        reference = _kcenter("serial").fit(points)
        streamed = _kcenter(backend).fit_stream(
            ArrayStream(points), chunk_size=251, storage=storage
        )
        assert streamed.stats.storage_tier == storage
        np.testing.assert_array_equal(streamed.center_indices, reference.center_indices)
        np.testing.assert_array_equal(streamed.centers, reference.centers)
        assert streamed.radius == reference.radius
        assert streamed.coreset_size == reference.coreset_size

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_kcenter_disk_tier_across_chunk_sizes(self, dataset, chunk_size):
        points = dataset.points
        reference = _kcenter("serial").fit(points)
        streamed = _kcenter("serial").fit_stream(
            ArrayStream(points), chunk_size=chunk_size, storage="disk"
        )
        np.testing.assert_array_equal(streamed.center_indices, reference.center_indices)
        assert streamed.radius == reference.radius
        assert streamed.stats.spilled_bytes > 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_outliers_disk_tier_on_every_backend(self, dataset, backend):
        points = dataset.points
        reference = _outliers("serial").fit(points)
        streamed = _outliers(backend).fit_stream(
            ArrayStream(points), chunk_size=251, storage="disk"
        )
        assert streamed.stats.storage_tier == "disk"
        np.testing.assert_array_equal(streamed.center_indices, reference.center_indices)
        assert streamed.radius == reference.radius
        assert streamed.radius_all_points == reference.radius_all_points
        np.testing.assert_array_equal(
            streamed.outlier_indices, reference.outlier_indices
        )

    @pytest.mark.parametrize("partitioning", ("contiguous", "round_robin", "random"))
    def test_disk_tier_across_partitionings(self, dataset, partitioning):
        points = dataset.points
        solver = MapReduceKCenter(
            6, ell=4, coreset_multiplier=3, partitioning=partitioning, random_state=9
        )
        in_memory = solver.fit(points)
        streamed = solver.fit_stream(
            ArrayStream(points), chunk_size=200, storage="disk"
        )
        np.testing.assert_array_equal(streamed.center_indices, in_memory.center_indices)
        assert streamed.radius == in_memory.radius


class TestAutoSpillAcceptance:
    """The acceptance contract of the disk tier (ISSUE 4).

    A dataset whose partition footprint exceeds the configured
    shared-memory budget must complete under ``storage="auto"`` by
    spilling (``spilled_bytes > 0``), bit-identically, while the
    coordinator stays at O(chunk + union coreset).
    """

    def test_dataset_above_budget_completes_by_spilling(self, dataset):
        points = dataset.points
        chunk_size = 128
        reference = _outliers("serial").fit(points)
        # Budget far below the ~(n, d) float64 partition footprint.
        budget = points.nbytes // 8
        streamed = _outliers("serial").fit_stream(
            ArrayStream(points),
            chunk_size=chunk_size,
            storage="auto",
            memory_budget_bytes=budget,
        )
        assert streamed.stats.storage_tier == "disk"
        assert streamed.stats.spilled_bytes > budget
        np.testing.assert_array_equal(
            streamed.center_indices, reference.center_indices
        )
        assert streamed.radius == reference.radius
        np.testing.assert_array_equal(
            streamed.outlier_indices, reference.outlier_indices
        )
        # The coordinator never held more than one chunk plus the union.
        assert streamed.stats.coordinator_peak_items <= max(
            chunk_size, streamed.coreset_size
        )
        assert streamed.stats.coordinator_peak_items < points.shape[0]

    def test_generous_budget_stays_in_memory(self, dataset):
        points = dataset.points
        streamed = _kcenter("serial").fit_stream(
            ArrayStream(points),
            chunk_size=251,
            storage="auto",
            memory_budget_bytes=10 * points.nbytes,
        )
        assert streamed.stats.storage_tier == "memory"
        assert streamed.stats.spilled_bytes == 0
