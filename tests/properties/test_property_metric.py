"""Property-based tests for the distance functions (metric axioms)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.metricspace import get_metric

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


def point_arrays(n_points: int, max_dim: int = 5):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.just(n_points), st.integers(1, max_dim)),
        elements=finite_floats,
    )


@pytest.mark.parametrize("metric_name", ["euclidean", "manhattan", "chebyshev"])
class TestMetricAxioms:
    @given(points=point_arrays(3))
    @settings(max_examples=40, deadline=None)
    def test_non_negativity_and_symmetry(self, metric_name, points):
        metric = get_metric(metric_name)
        matrix = metric.pairwise(points)
        assert np.all(matrix >= 0)
        np.testing.assert_allclose(matrix, matrix.T, atol=1e-8)

    @given(points=point_arrays(3))
    @settings(max_examples=40, deadline=None)
    def test_identity(self, metric_name, points):
        metric = get_metric(metric_name)
        matrix = metric.pairwise(points)
        scale = max(1.0, np.abs(points).max())
        assert np.all(np.diag(matrix) <= 1e-7 * scale)

    @given(points=point_arrays(3))
    @settings(max_examples=60, deadline=None)
    def test_triangle_inequality(self, metric_name, points):
        metric = get_metric(metric_name)
        matrix = metric.pairwise(points)
        scale = max(1.0, matrix.max())
        for i in range(3):
            for j in range(3):
                for k in range(3):
                    assert matrix[i, j] <= matrix[i, k] + matrix[k, j] + 1e-7 * scale


class TestCrossConsistency:
    @given(points=point_arrays(4))
    @settings(max_examples=40, deadline=None)
    def test_point_to_points_matches_cdist_row(self, points):
        metric = get_metric("euclidean")
        row = metric.point_to_points(points[0], points)
        matrix = metric.cdist(points[:1], points)[0]
        np.testing.assert_allclose(row, matrix, atol=1e-8)
