"""Tests for the internal validation helpers (repro._validation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._validation import (
    check_epsilon,
    check_k_z,
    check_non_negative_int,
    check_points,
    check_positive_int,
    check_random_state,
    check_weights,
)
from repro.exceptions import DatasetError, InvalidParameterError


class TestCheckPoints:
    def test_list_of_lists(self):
        array = check_points([[1, 2], [3, 4]])
        assert array.dtype == np.float64
        assert array.shape == (2, 2)

    def test_one_dimensional_reshaped(self):
        assert check_points([1.0, 2.0]).shape == (2, 1)

    def test_three_dimensional_rejected(self):
        with pytest.raises(DatasetError):
            check_points(np.zeros((2, 2, 2)))

    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            check_points(np.zeros((0, 3)))

    def test_infinite_rejected(self):
        with pytest.raises(DatasetError):
            check_points([[np.inf]])

    def test_contiguous_output(self):
        array = check_points(np.asfortranarray(np.zeros((4, 3))))
        assert array.flags["C_CONTIGUOUS"]


class TestIntegerChecks:
    def test_positive_int(self):
        assert check_positive_int(np.int64(3), name="k") == 3

    def test_positive_int_rejects_zero(self):
        with pytest.raises(InvalidParameterError):
            check_positive_int(0, name="k")

    def test_positive_int_rejects_bool(self):
        with pytest.raises(InvalidParameterError):
            check_positive_int(True, name="k")

    def test_positive_int_rejects_float(self):
        with pytest.raises(InvalidParameterError):
            check_positive_int(2.5, name="k")

    def test_non_negative_int_accepts_zero(self):
        assert check_non_negative_int(0, name="z") == 0

    def test_non_negative_int_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            check_non_negative_int(-1, name="z")


class TestCheckEpsilon:
    def test_valid(self):
        assert check_epsilon(0.5) == 0.5

    def test_upper_bound_inclusive(self):
        assert check_epsilon(1.0) == 1.0

    def test_rejects_zero(self):
        with pytest.raises(InvalidParameterError):
            check_epsilon(0.0)

    def test_rejects_above_upper(self):
        with pytest.raises(InvalidParameterError):
            check_epsilon(1.5)

    def test_custom_upper(self):
        assert check_epsilon(3.0, upper=5.0) == 3.0

    def test_rejects_non_numeric(self):
        with pytest.raises(InvalidParameterError):
            check_epsilon("a lot")


class TestCheckKZ:
    def test_valid(self):
        assert check_k_z(10, 3, 2) == (3, 2)

    def test_k_larger_than_n(self):
        with pytest.raises(InvalidParameterError):
            check_k_z(5, 6)

    def test_z_equal_to_n(self):
        with pytest.raises(InvalidParameterError):
            check_k_z(5, 1, 5)


class TestCheckWeights:
    def test_valid(self):
        weights = check_weights([1.0, 2.0], 2)
        assert weights.dtype == np.float64

    def test_wrong_length(self):
        with pytest.raises(InvalidParameterError):
            check_weights([1.0], 2)

    def test_non_positive(self):
        with pytest.raises(InvalidParameterError):
            check_weights([1.0, 0.0], 2)


class TestCheckRandomState:
    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_seeds(self):
        a = check_random_state(7).integers(1000)
        b = check_random_state(7).integers(1000)
        assert a == b

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert check_random_state(generator) is generator

    def test_invalid_type(self):
        with pytest.raises(InvalidParameterError):
            check_random_state("seed")
