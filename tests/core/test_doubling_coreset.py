"""Tests for repro.core.doubling_coreset (the streaming coreset invariants)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import StreamingCoreset
from repro.exceptions import InvalidParameterError, NotFittedError


def _feed(coreset: StreamingCoreset, points: np.ndarray) -> StreamingCoreset:
    for point in points:
        coreset.process(point)
    return coreset


class TestInitialisation:
    def test_buffers_first_tau_plus_one_points(self):
        coreset = StreamingCoreset(tau=5)
        for i in range(5):
            coreset.process([float(i), 0.0])
        assert not coreset.is_initialized
        assert coreset.working_memory_size == 5
        coreset.process([5.0, 0.0])
        assert coreset.is_initialized

    def test_coreset_before_initialisation(self):
        coreset = StreamingCoreset(tau=10)
        coreset.process([1.0])
        coreset.process([2.0])
        weighted = coreset.coreset()
        assert len(weighted) == 2
        np.testing.assert_allclose(weighted.weights, 1.0)

    def test_empty_coreset_raises(self):
        with pytest.raises(NotFittedError):
            StreamingCoreset(tau=3).coreset()

    def test_rejects_bad_points(self):
        coreset = StreamingCoreset(tau=3)
        with pytest.raises(InvalidParameterError):
            coreset.process([np.nan])

    def test_rejects_dimension_change(self):
        coreset = StreamingCoreset(tau=2)
        coreset.process([1.0, 2.0])
        with pytest.raises(InvalidParameterError):
            coreset.process([1.0])


class TestInvariants:
    def test_invariant_a_size_bounded(self, medium_blobs):
        tau = 20
        coreset = _feed(StreamingCoreset(tau=tau), medium_blobs)
        assert coreset.size <= tau
        assert coreset.working_memory_size <= tau + 1

    def test_invariant_b_centers_separated(self, medium_blobs):
        coreset = _feed(StreamingCoreset(tau=15), medium_blobs)
        centers = coreset.centers
        if centers.shape[0] > 1:
            from repro.metricspace import pairwise

            distances = pairwise(centers)
            off_diagonal = distances[np.triu_indices(centers.shape[0], k=1)]
            assert off_diagonal.min() > 4.0 * coreset.phi - 1e-9

    def test_invariant_c_every_point_near_a_center(self, medium_blobs):
        coreset = _feed(StreamingCoreset(tau=25), medium_blobs)
        centers = coreset.centers
        distances = np.linalg.norm(
            medium_blobs[:, None, :] - centers[None, :, :], axis=2
        ).min(axis=1)
        # Invariant (c) bounds the distance to the *proxy*, which may itself
        # have been merged into another center; chained merges can at most
        # double the bound each time, but the final guarantee used in the
        # analysis (8 * phi against the final phi) must hold.
        assert distances.max() <= 8.0 * coreset.phi + 1e-9

    def test_invariant_d_weights_sum_to_stream_length(self, medium_blobs):
        coreset = _feed(StreamingCoreset(tau=20), medium_blobs)
        assert coreset.weights.sum() == pytest.approx(medium_blobs.shape[0])

    def test_invariant_e_phi_lower_bounds_optimal_radius(self, small_blobs):
        from repro.core import gmm_select

        tau = 10
        coreset = _feed(StreamingCoreset(tau=tau), small_blobs)
        # GMM gives a 2-approximation of r*_tau, so r*_tau >= gmm_radius / 2;
        # invariant (e) requires phi <= r*_tau.
        gmm_radius = gmm_select(small_blobs, tau).radius
        assert coreset.phi <= gmm_radius + 1e-9

    def test_n_processed_counts_every_point(self, small_blobs):
        coreset = _feed(StreamingCoreset(tau=8), small_blobs)
        assert coreset.n_processed == small_blobs.shape[0]


class TestDegenerateStreams:
    def test_all_identical_points(self):
        points = np.ones((50, 3))
        coreset = _feed(StreamingCoreset(tau=4), points)
        assert coreset.size == 1
        assert coreset.weights.sum() == pytest.approx(50.0)
        assert coreset.phi == 0.0

    def test_two_distinct_values_tau_one(self):
        points = np.array([[0.0], [0.0], [1.0], [1.0], [0.0], [1.0]] * 5)
        coreset = _feed(StreamingCoreset(tau=1), points)
        assert coreset.size == 1
        assert coreset.weights.sum() == pytest.approx(points.shape[0])

    def test_stream_shorter_than_tau(self):
        points = np.arange(3, dtype=float).reshape(-1, 1)
        coreset = _feed(StreamingCoreset(tau=10), points)
        weighted = coreset.coreset()
        assert len(weighted) == 3

    def test_weights_conserved_under_merges(self):
        # A widening spiral forces many merges; total weight must be conserved.
        rng = np.random.default_rng(0)
        angles = np.linspace(0, 12 * np.pi, 400)
        radii = np.linspace(0.1, 100.0, 400)
        points = np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])
        points = points[rng.permutation(points.shape[0])]
        coreset = _feed(StreamingCoreset(tau=12), points)
        assert coreset.weights.sum() == pytest.approx(400.0)
