"""Tests for repro.core.mr_kcenter (2-round MapReduce k-center)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MapReduceKCenter, gmm_select
from repro.evaluation import optimal_kcenter_radius
from repro.exceptions import InvalidParameterError, MemoryBudgetExceededError


class TestMapReduceKCenterConfiguration:
    def test_mutually_exclusive_knobs(self):
        with pytest.raises(InvalidParameterError):
            MapReduceKCenter(5, epsilon=0.5, coreset_multiplier=2)

    def test_default_epsilon_when_unspecified(self):
        solver = MapReduceKCenter(5)
        assert solver.epsilon == 1.0
        assert solver.coreset_multiplier is None

    def test_invalid_partitioning(self):
        with pytest.raises(InvalidParameterError):
            MapReduceKCenter(5, partitioning="zigzag")

    def test_k_too_large(self, small_blobs):
        with pytest.raises(InvalidParameterError):
            MapReduceKCenter(small_blobs.shape[0] + 1).fit(small_blobs)


class TestMapReduceKCenterExecution:
    def test_returns_k_centers(self, medium_blobs):
        result = MapReduceKCenter(6, ell=4, coreset_multiplier=4, random_state=0).fit(medium_blobs)
        assert result.k == 6
        assert result.centers.shape == (6, medium_blobs.shape[1])
        np.testing.assert_allclose(result.centers, medium_blobs[result.center_indices])

    def test_two_rounds_executed(self, medium_blobs):
        result = MapReduceKCenter(6, ell=4, coreset_multiplier=2, random_state=0).fit(medium_blobs)
        assert result.stats.n_rounds == 2

    def test_coreset_size_equals_ell_times_tau(self, medium_blobs):
        k, ell, mu = 6, 4, 2
        result = MapReduceKCenter(k, ell=ell, coreset_multiplier=mu, random_state=0).fit(medium_blobs)
        assert result.coreset_size == ell * mu * k

    def test_local_memory_accounting(self, medium_blobs):
        ell = 4
        result = MapReduceKCenter(6, ell=ell, coreset_multiplier=2, random_state=0).fit(medium_blobs)
        n = medium_blobs.shape[0]
        # Round-1 reducers receive ~n/ell points; round 2 receives the union
        # of the coresets. Peak local memory must be the larger of the two.
        expected = max(int(np.ceil(n / ell)), result.coreset_size)
        assert result.stats.peak_local_memory == expected

    def test_memory_limit_enforced(self, medium_blobs):
        with pytest.raises(MemoryBudgetExceededError):
            MapReduceKCenter(
                6, ell=2, coreset_multiplier=2, local_memory_limit=10, random_state=0
            ).fit(medium_blobs)

    def test_ell_one_huge_coreset_degenerates_to_gmm_quality(self, small_blobs):
        # With a single partition and mu so large the coreset is the whole
        # dataset, the second round runs GMM on all of S (in a different
        # order), so the result carries GMM's guarantee: its radius is at
        # most twice the radius of a direct GMM run (both are
        # 2-approximations of the same optimum).
        result = MapReduceKCenter(5, ell=1, coreset_multiplier=100, random_state=0).fit(small_blobs)
        assert result.coreset_size == small_blobs.shape[0]
        direct = gmm_select(small_blobs, 5)
        assert result.radius <= 2.0 * direct.radius + 1e-9

    def test_ell_capped_at_n(self):
        points = np.arange(6, dtype=float).reshape(-1, 1)
        result = MapReduceKCenter(2, ell=50, coreset_multiplier=1, random_state=0).fit(points)
        assert result.ell <= 6

    def test_partitioning_strategies_all_work(self, medium_blobs):
        for partitioning in ("contiguous", "round_robin", "random"):
            result = MapReduceKCenter(
                5, ell=4, coreset_multiplier=2, partitioning=partitioning, random_state=0
            ).fit(medium_blobs)
            assert result.radius > 0

    def test_reproducible_with_seed(self, medium_blobs):
        a = MapReduceKCenter(5, ell=4, coreset_multiplier=2, random_state=42).fit(medium_blobs)
        b = MapReduceKCenter(5, ell=4, coreset_multiplier=2, random_state=42).fit(medium_blobs)
        assert a.radius == pytest.approx(b.radius)
        np.testing.assert_array_equal(a.center_indices, b.center_indices)


class TestMapReduceKCenterQuality:
    def test_theorem1_bound_small_instance(self, rng):
        # Theorem 1: (2 + eps)-approximation. Verify against brute force.
        points = rng.normal(size=(20, 2)) * 5
        k, epsilon = 3, 1.0
        result = MapReduceKCenter(k, ell=2, epsilon=epsilon, random_state=0).fit(points)
        optimum = optimal_kcenter_radius(points, k)
        assert result.radius <= (2.0 + epsilon) * optimum + 1e-9

    def test_larger_coreset_improves_or_matches(self, medium_blobs):
        k = 8
        radii = []
        for mu in (1, 4, 16):
            result = MapReduceKCenter(k, ell=4, coreset_multiplier=mu, random_state=1).fit(medium_blobs)
            radii.append(result.radius)
        # Not strictly monotone run by run, but mu=16 should not be worse
        # than mu=1 by more than a hair on a well-clustered instance.
        assert radii[-1] <= radii[0] * 1.05 + 1e-9

    def test_epsilon_rule_beats_baseline_coreset(self, medium_blobs):
        k = 8
        baseline = MapReduceKCenter(k, ell=4, coreset_multiplier=1, random_state=2).fit(medium_blobs)
        adaptive = MapReduceKCenter(k, ell=4, epsilon=0.25, random_state=2).fit(medium_blobs)
        assert adaptive.coreset_size >= baseline.coreset_size
        assert adaptive.radius <= baseline.radius * 1.05 + 1e-9
