"""Tests for repro.core.assignment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    assign_to_centers,
    clustering_radius,
    evaluate_solution,
    radius_with_outliers,
)
from repro.core.assignment import radius_from_distances
from repro.exceptions import InvalidParameterError


class TestAssignToCenters:
    def test_basic_assignment(self):
        points = np.array([[0.0], [1.0], [9.0], [10.0]])
        centers = np.array([[0.0], [10.0]])
        clustering = assign_to_centers(points, centers)
        np.testing.assert_array_equal(clustering.assignment, [0, 0, 1, 1])
        assert clustering.radius == pytest.approx(1.0)

    def test_cluster_sizes(self):
        points = np.array([[0.0], [0.1], [0.2], [10.0]])
        centers = np.array([[0.0], [10.0]])
        clustering = assign_to_centers(points, centers)
        np.testing.assert_array_equal(clustering.cluster_sizes(), [3, 1])

    def test_dimension_mismatch_raises(self):
        with pytest.raises(InvalidParameterError):
            assign_to_centers(np.zeros((3, 2)), np.zeros((2, 3)))

    def test_centers_need_not_be_input_points(self):
        points = np.array([[0.0, 0.0], [2.0, 0.0]])
        centers = np.array([[1.0, 0.0]])
        clustering = assign_to_centers(points, centers)
        assert clustering.radius == pytest.approx(1.0)

    def test_radius_excluding(self):
        points = np.array([[0.0], [1.0], [100.0]])
        centers = np.array([[0.0]])
        clustering = assign_to_centers(points, centers)
        assert clustering.radius == pytest.approx(100.0)
        assert clustering.radius_excluding(1) == pytest.approx(1.0)
        assert clustering.radius_excluding(3) == pytest.approx(0.0)

    def test_outlier_indices(self):
        points = np.array([[0.0], [1.0], [100.0], [50.0]])
        centers = np.array([[0.0]])
        clustering = assign_to_centers(points, centers)
        np.testing.assert_array_equal(clustering.outlier_indices(2), [2, 3])
        assert clustering.outlier_indices(0).size == 0


class TestRadiusFromDistances:
    def test_no_outliers(self):
        assert radius_from_distances(np.array([1.0, 5.0, 3.0])) == pytest.approx(5.0)

    def test_with_outliers(self):
        assert radius_from_distances(np.array([1.0, 5.0, 3.0]), 1) == pytest.approx(3.0)

    def test_all_outliers(self):
        assert radius_from_distances(np.array([1.0, 5.0]), 2) == pytest.approx(0.0)

    def test_empty_raises(self):
        with pytest.raises(InvalidParameterError):
            radius_from_distances(np.array([]))


class TestConvenienceFunctions:
    def test_clustering_radius(self, small_blobs):
        radius = clustering_radius(small_blobs, small_blobs[:5])
        assert radius > 0

    def test_radius_with_outliers_smaller(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        centers = data[:10]
        with_out = radius_with_outliers(data, centers, blobs_with_outliers.n_outliers)
        plain = clustering_radius(data, centers)
        assert with_out <= plain

    def test_evaluate_solution_keys(self, small_blobs):
        summary = evaluate_solution(small_blobs, small_blobs[:3], n_outliers=2)
        assert set(summary) == {
            "radius",
            "radius_with_outliers",
            "n_centers",
            "cluster_sizes",
            "outlier_indices",
        }
        assert summary["n_centers"] == 3
        assert summary["outlier_indices"].shape == (2,)
