"""Tests for repro.core.stream_kcenter (CORESETSTREAM)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CoresetStreamKCenter, clustering_radius, gmm_select, streaming_coreset_size
from repro.exceptions import InvalidParameterError
from repro.streaming import ArrayStream, StreamingRunner


class TestStreamingCoresetSize:
    def test_outlier_formula(self):
        size = streaming_coreset_size(5, 10, epsilon=1.0, doubling_dimension=0)
        assert size == 15

    def test_grows_with_dimension(self):
        low = streaming_coreset_size(5, 10, epsilon=0.5, doubling_dimension=1)
        high = streaming_coreset_size(5, 10, epsilon=0.5, doubling_dimension=2)
        assert high > low

    def test_without_outliers(self):
        assert streaming_coreset_size(5, 0, epsilon=1.0, doubling_dimension=0, with_outliers=False) == 5

    def test_invalid_epsilon(self):
        with pytest.raises(InvalidParameterError):
            streaming_coreset_size(5, 0, epsilon=0.0, doubling_dimension=1)


class TestCoresetStreamKCenter:
    def test_configuration_validation(self):
        with pytest.raises(InvalidParameterError):
            CoresetStreamKCenter(5, coreset_multiplier=0.5)
        with pytest.raises(InvalidParameterError):
            CoresetStreamKCenter(5, coreset_size=3)

    def test_explicit_coreset_size(self):
        algorithm = CoresetStreamKCenter(5, coreset_size=17)
        assert algorithm.coreset_size == 17

    def test_returns_k_centers(self, medium_blobs):
        algorithm = CoresetStreamKCenter(6, coreset_multiplier=4)
        report = StreamingRunner().run(algorithm, ArrayStream(medium_blobs))
        assert report.result.centers.shape == (6, medium_blobs.shape[1])
        assert report.result.n_processed == medium_blobs.shape[0]

    def test_memory_bounded_by_coreset_size(self, medium_blobs):
        algorithm = CoresetStreamKCenter(6, coreset_multiplier=4)
        report = StreamingRunner().run(algorithm, ArrayStream(medium_blobs))
        assert report.peak_memory <= algorithm.coreset_size + 1

    def test_short_stream(self):
        points = np.arange(4, dtype=float).reshape(-1, 1)
        algorithm = CoresetStreamKCenter(6, coreset_multiplier=2)
        report = StreamingRunner().run(algorithm, ArrayStream(points))
        assert report.result.centers.shape[0] <= 4

    def test_quality_close_to_offline_gmm(self, medium_blobs):
        # The streaming solution cannot beat offline GMM by much nor be
        # wildly worse on a well-clustered instance with a generous coreset.
        k = 8
        algorithm = CoresetStreamKCenter(k, coreset_multiplier=16, random_state=0)
        report = StreamingRunner().run(
            algorithm, ArrayStream(medium_blobs, shuffle=True, random_state=0)
        )
        streaming_radius = clustering_radius(medium_blobs, report.result.centers)
        offline_radius = gmm_select(medium_blobs, k).radius
        assert streaming_radius <= 4.0 * offline_radius + 1e-9

    def test_larger_coreset_tightens_coverage_bound(self, medium_blobs):
        # A larger coreset budget keeps phi (and hence the 8*phi coverage
        # bound every stream point enjoys) smaller — the space/accuracy
        # trade-off the paper's streaming analysis is built on.
        k = 8
        bounds = {}
        for mu in (1, 16):
            algorithm = CoresetStreamKCenter(k, coreset_multiplier=mu, random_state=0)
            report = StreamingRunner().run(
                algorithm, ArrayStream(medium_blobs, shuffle=True, random_state=3)
            )
            bounds[mu] = report.result.coreset_radius_bound
        assert bounds[16] <= bounds[1] + 1e-9

    def test_coreset_radius_bound_reported(self, medium_blobs):
        algorithm = CoresetStreamKCenter(5, coreset_multiplier=4)
        report = StreamingRunner().run(algorithm, ArrayStream(medium_blobs))
        assert report.result.coreset_radius_bound >= 0
