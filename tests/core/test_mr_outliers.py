"""Tests for repro.core.mr_outliers (2-round MapReduce k-center with z outliers)."""

from __future__ import annotations

import pytest

from repro.core import MapReduceKCenterOutliers
from repro.evaluation import optimal_kcenter_with_outliers_radius
from repro.exceptions import InvalidParameterError


class TestConfiguration:
    def test_mutually_exclusive_knobs(self):
        with pytest.raises(InvalidParameterError):
            MapReduceKCenterOutliers(5, 10, epsilon=0.5, coreset_multiplier=2)

    def test_adversarial_requires_indices(self):
        with pytest.raises(InvalidParameterError):
            MapReduceKCenterOutliers(5, 10, partitioning="adversarial")

    def test_default_eps_hat_follows_epsilon(self):
        solver = MapReduceKCenterOutliers(5, 10, epsilon=0.6)
        assert solver.eps_hat == pytest.approx(0.1)

    def test_invalid_partitioning(self):
        with pytest.raises(InvalidParameterError):
            MapReduceKCenterOutliers(5, 10, partitioning="bogus")

    def test_z_too_large(self, small_blobs):
        with pytest.raises(InvalidParameterError):
            MapReduceKCenterOutliers(3, small_blobs.shape[0]).fit(small_blobs)


class TestDeterministicVariant:
    def test_basic_run(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        result = MapReduceKCenterOutliers(
            5, z, ell=4, coreset_multiplier=4, random_state=0
        ).fit(data)
        assert result.k <= 5
        assert result.stats.n_rounds == 2
        assert not result.randomized
        assert result.radius <= result.radius_all_points

    def test_identifies_planted_outliers(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        result = MapReduceKCenterOutliers(
            5, z, ell=4, coreset_multiplier=8, random_state=0
        ).fit(data)
        assert set(result.outlier_indices) == set(blobs_with_outliers.outlier_indices)

    def test_radius_far_below_all_points_radius(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        result = MapReduceKCenterOutliers(
            5, z, ell=4, coreset_multiplier=4, random_state=0
        ).fit(data)
        assert result.radius < result.radius_all_points / 10.0

    def test_coreset_size_formula(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        k, ell, mu = 5, 4, 2
        result = MapReduceKCenterOutliers(
            k, z, ell=ell, coreset_multiplier=mu, random_state=0
        ).fit(data)
        assert result.coreset_size == ell * mu * (k + z)

    def test_adversarial_partitioning_runs(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        result = MapReduceKCenterOutliers(
            5,
            z,
            ell=4,
            coreset_multiplier=4,
            partitioning="adversarial",
            adversarial_indices=blobs_with_outliers.outlier_indices,
            random_state=0,
        ).fit(data)
        assert result.radius < result.radius_all_points

    def test_theorem2_bound_small_instance(self, rng):
        points = rng.normal(size=(18, 2)) * 3
        points[0] += 60.0
        points[1] -= 60.0
        k, z, epsilon = 3, 2, 1.0
        result = MapReduceKCenterOutliers(k, z, ell=2, epsilon=epsilon, random_state=0).fit(points)
        optimum = optimal_kcenter_with_outliers_radius(points, k, z)
        assert result.radius <= (3.0 + epsilon) * optimum + 1e-9

    def test_estimated_radius_positive(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        result = MapReduceKCenterOutliers(
            5, z, ell=2, coreset_multiplier=2, random_state=0
        ).fit(data)
        assert result.estimated_radius >= 0
        assert result.search_probes >= 1

    def test_zero_outliers(self, small_blobs):
        result = MapReduceKCenterOutliers(4, 0, ell=2, coreset_multiplier=2, random_state=0).fit(small_blobs)
        assert result.radius == pytest.approx(result.radius_all_points)


class TestRandomizedVariant:
    def test_basic_run(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        result = MapReduceKCenterOutliers(
            5, z, ell=4, coreset_multiplier=4, randomized=True,
            include_log_term=False, random_state=0,
        ).fit(data)
        assert result.randomized
        assert result.radius < result.radius_all_points

    def test_z_prime_smaller_than_z_for_large_ell(self):
        solver = MapReduceKCenterOutliers(
            5, 200, ell=16, coreset_multiplier=1, randomized=True, include_log_term=False
        )
        assert solver._z_prime(10_000, 16) < 200

    def test_log_term_increases_z_prime(self):
        with_log = MapReduceKCenterOutliers(5, 40, ell=8, randomized=True, include_log_term=True)
        without = MapReduceKCenterOutliers(5, 40, ell=8, randomized=True, include_log_term=False)
        assert with_log._z_prime(5000, 8) > without._z_prime(5000, 8)

    def test_smaller_coresets_than_deterministic(self, blobs_with_outliers):
        # mu = 1 keeps both targets below the ~27-point partition size on
        # this 215-point instance, so the comparison measures the z vs z'
        # base sizes (the property under test) rather than which random
        # split happens to cap more partitions at their full size.
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        deterministic = MapReduceKCenterOutliers(
            5, z, ell=8, coreset_multiplier=1, random_state=0
        ).fit(data)
        randomized = MapReduceKCenterOutliers(
            5, z, ell=8, coreset_multiplier=1, randomized=True,
            include_log_term=False, random_state=0,
        ).fit(data)
        assert randomized.coreset_size < deterministic.coreset_size

    def test_still_recovers_planted_outliers(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        result = MapReduceKCenterOutliers(
            5, z, ell=4, coreset_multiplier=8, randomized=True,
            include_log_term=False, random_state=1,
        ).fit(data)
        assert set(result.outlier_indices) == set(blobs_with_outliers.outlier_indices)
