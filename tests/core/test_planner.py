"""Tests for repro.core.planner (resource planning from the paper's bounds)."""

from __future__ import annotations

import math

import pytest

from repro.core import plan_mapreduce, plan_streaming
from repro.datasets import points_on_manifold


class TestPlanMapReduce:
    def test_kcenter_variant_ell_scaling(self):
        plan = plan_mapreduce(1_000_000, 100, doubling_dimension=2)
        assert plan.variant == "kcenter"
        assert plan.ell == pytest.approx(math.sqrt(1_000_000 / 100), rel=0.2)
        assert plan.per_partition_points * plan.ell >= 1_000_000

    def test_outliers_variant(self):
        plan = plan_mapreduce(1_000_000, 20, z=200, doubling_dimension=2)
        assert plan.variant == "outliers"
        assert plan.coreset_size_practical <= plan.per_partition_points

    def test_randomized_variant_smaller_base_when_z_large(self):
        deterministic = plan_mapreduce(10_000_000, 20, z=100_000, doubling_dimension=1)
        randomized = plan_mapreduce(
            10_000_000, 20, z=100_000, randomized=True, doubling_dimension=1
        )
        assert randomized.variant == "outliers-randomized"
        assert randomized.coreset_size_practical < deterministic.coreset_size_practical

    def test_streamed_plan_bounds_coordinator(self):
        in_memory = plan_mapreduce(1_000_000, 20, z=200, doubling_dimension=2)
        streamed = plan_mapreduce(
            1_000_000, 20, z=200, doubling_dimension=2, streamed=True, chunk_size=8192
        )
        assert not in_memory.streamed
        assert in_memory.coordinator_memory == 1_000_000
        assert streamed.streamed
        assert streamed.coordinator_memory == 8192 + streamed.union_coreset_size
        assert streamed.coordinator_memory < in_memory.coordinator_memory
        # Reducer-side predictions are drive-path independent.
        assert streamed.local_memory == in_memory.local_memory

    def test_streamed_plan_rejects_bad_chunk_size(self):
        with pytest.raises(Exception):
            plan_mapreduce(1000, 10, streamed=True, chunk_size=0)

    def test_theoretical_size_grows_with_dimension(self):
        low = plan_mapreduce(100_000, 10, doubling_dimension=1)
        high = plan_mapreduce(100_000, 10, doubling_dimension=4)
        assert high.coreset_size_theoretical > low.coreset_size_theoretical

    def test_theoretical_size_grows_with_precision(self):
        loose = plan_mapreduce(100_000, 10, epsilon=1.0, doubling_dimension=2)
        tight = plan_mapreduce(100_000, 10, epsilon=0.25, doubling_dimension=2)
        assert tight.coreset_size_theoretical > loose.coreset_size_theoretical

    def test_local_memory_covers_both_rounds(self):
        plan = plan_mapreduce(100_000, 50, doubling_dimension=2)
        assert plan.local_memory >= plan.per_partition_points
        assert plan.local_memory >= plan.union_coreset_size

    def test_dimension_estimated_from_sample(self):
        sample = points_on_manifold(400, 2, 6, random_state=0)
        plan = plan_mapreduce(100_000, 10, sample=sample, random_state=0)
        assert plan.doubling_dimension >= 0.0

    def test_default_dimension_without_sample(self):
        plan = plan_mapreduce(1000, 5)
        assert plan.doubling_dimension == 2.0

    def test_invalid_multiplier(self):
        with pytest.raises(ValueError):
            plan_mapreduce(1000, 5, practical_multiplier=0.5)

    def test_backend_recorded_with_matching_workers(self):
        plan = plan_mapreduce(1_000_000, 100, doubling_dimension=2, backend="processes")
        assert plan.backend == "processes"
        assert 1 <= plan.suggested_workers <= plan.ell

    def test_serial_backend_plans_one_worker(self):
        plan = plan_mapreduce(1_000_000, 100, doubling_dimension=2, backend="serial")
        assert plan.backend == "serial"
        assert plan.suggested_workers == 1

    def test_default_backend_is_valid(self):
        from repro.mapreduce import available_backends

        plan = plan_mapreduce(1000, 5)
        assert plan.backend in available_backends()

    def test_unknown_backend_rejected(self):
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            plan_mapreduce(1000, 5, backend="spark")

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            plan_mapreduce(1000, 5, doubling_dimension=-1)


class TestPlanStorageTier:
    def test_explicit_storage_passes_through(self):
        plan = plan_mapreduce(
            100_000, 10, doubling_dimension=2, streamed=True, storage="disk",
            point_dimension=3,
        )
        assert plan.storage == "disk"
        assert plan.predicted_spill_bytes == plan.partition_tier_bytes > 0

    def test_auto_selects_backend_natural_tier(self):
        shared = plan_mapreduce(
            100_000, 10, doubling_dimension=2, backend="processes", streamed=True
        )
        assert shared.storage == "shared"
        memory = plan_mapreduce(
            100_000, 10, doubling_dimension=2, backend="serial", streamed=True
        )
        assert memory.storage == "memory"

    def test_auto_spills_above_budget(self):
        n, d = 100_000, 3
        footprint = n * (d * 8 + 8)
        plan = plan_mapreduce(
            n, 10, doubling_dimension=2, streamed=True, point_dimension=d,
            memory_budget_bytes=footprint // 2,
        )
        assert plan.partition_tier_bytes == footprint
        assert plan.storage == "disk"
        assert plan.predicted_spill_bytes == footprint

    def test_auto_stays_in_memory_under_budget(self):
        n, d = 100_000, 3
        plan = plan_mapreduce(
            n, 10, doubling_dimension=2, backend="serial", streamed=True,
            point_dimension=d, memory_budget_bytes=10 * n * (d * 8 + 8),
        )
        assert plan.storage == "memory"
        assert plan.predicted_spill_bytes == 0

    def test_unknown_dimension_under_budget_spills_conservatively(self):
        plan = plan_mapreduce(
            100_000, 10, doubling_dimension=2, streamed=True,
            memory_budget_bytes=1_000_000,
        )
        assert plan.partition_tier_bytes == 0
        assert plan.storage == "disk"

    def test_in_memory_path_has_no_index_column(self):
        streamed = plan_mapreduce(
            1000, 10, doubling_dimension=2, streamed=True, point_dimension=2
        )
        in_memory = plan_mapreduce(
            1000, 10, doubling_dimension=2, streamed=False, point_dimension=2
        )
        assert streamed.partition_tier_bytes == 1000 * (2 * 8 + 8)
        assert in_memory.partition_tier_bytes == 1000 * 2 * 8

    def test_unknown_storage_rejected(self):
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            plan_mapreduce(1000, 5, storage="tape")


class TestPlanDistributed:
    def test_workers_select_distributed_backend(self):
        plan = plan_mapreduce(100_000, 10, doubling_dimension=2, workers=4)
        assert plan.backend == "distributed"
        assert plan.suggested_workers == min(4, plan.ell)
        assert plan.partitions_per_worker == -(-plan.ell // plan.suggested_workers)

    def test_worker_addresses_counted(self):
        plan = plan_mapreduce(
            100_000, 10, doubling_dimension=2,
            workers=["h1:7071", "h2:7071", "h3:7071"],
        )
        assert plan.backend == "distributed"
        assert plan.suggested_workers == min(3, plan.ell)

    def test_distributed_auto_storage_is_memory_tier(self):
        # Distributed workers cannot attach the coordinator's /dev/shm:
        # the auto tier must be by-value memory, not shared.
        plan = plan_mapreduce(
            100_000, 10, doubling_dimension=2, workers=2, streamed=True,
            point_dimension=4,
        )
        assert plan.storage == "memory"

    def test_explicit_backend_kept_alongside_workers(self):
        plan = plan_mapreduce(
            100_000, 10, doubling_dimension=2, backend="distributed", workers=8
        )
        assert plan.backend == "distributed"

    def test_empty_worker_list_rejected(self):
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            plan_mapreduce(1000, 5, workers=[])

    def test_distributed_backend_requires_workers(self):
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError, match="workers="):
            plan_mapreduce(1000, 5, backend="distributed")

    def test_non_positive_worker_count_rejected(self):
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            plan_mapreduce(1000, 5, workers=0)


class TestPlanStreaming:
    def test_theorem3_formula(self):
        plan = plan_streaming(20, 200, epsilon=1.0, doubling_dimension=0)
        assert plan.coreset_size_theoretical == 220
        assert plan.coreset_size_practical == 8 * 220
        assert plan.working_memory == plan.coreset_size_practical + 1

    def test_dimension_blowup(self):
        plan = plan_streaming(20, 200, epsilon=1.0, doubling_dimension=1)
        assert plan.coreset_size_theoretical == 220 * 96

    def test_invalid_multiplier(self):
        with pytest.raises(ValueError):
            plan_streaming(5, 5, practical_multiplier=0.0)
