"""Tests for repro.core.coreset (composable coreset construction)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CoresetSpec, build_coreset, build_weighted_coreset, gmm_select
from repro.exceptions import InvalidParameterError


class TestCoresetSpec:
    def test_requires_exactly_one_rule(self):
        with pytest.raises(InvalidParameterError):
            CoresetSpec(base_size=5)
        with pytest.raises(InvalidParameterError):
            CoresetSpec(base_size=5, epsilon=0.5, size_multiplier=2.0)

    def test_from_epsilon(self):
        spec = CoresetSpec.from_epsilon(10, 0.5)
        assert spec.epsilon == 0.5
        assert spec.target_size() is None

    def test_from_multiplier_target_size(self):
        spec = CoresetSpec.from_multiplier(10, 4)
        assert spec.target_size() == 40

    def test_multiplier_below_one_rejected(self):
        with pytest.raises(InvalidParameterError):
            CoresetSpec.from_multiplier(10, 0.5)

    def test_max_size_caps_target(self):
        spec = CoresetSpec.from_multiplier(10, 8, max_size=50)
        assert spec.target_size() == 50

    def test_max_size_below_base_rejected(self):
        with pytest.raises(InvalidParameterError):
            CoresetSpec.from_multiplier(10, 2, max_size=5)


class TestBuildCoresetSizeRule:
    def test_exact_size(self, small_blobs):
        spec = CoresetSpec.from_multiplier(5, 4)
        result = build_coreset(small_blobs, spec)
        assert result.size == 20

    def test_size_capped_at_partition(self):
        points = np.arange(10, dtype=float).reshape(-1, 1)
        spec = CoresetSpec.from_multiplier(4, 8)
        result = build_coreset(points, spec)
        assert result.size == 10

    def test_weights_sum_to_partition_size(self, small_blobs):
        spec = CoresetSpec.from_multiplier(5, 2)
        result = build_coreset(small_blobs, spec, weighted=True)
        assert result.coreset.total_weight == pytest.approx(small_blobs.shape[0])

    def test_unweighted_has_unit_weights(self, small_blobs):
        spec = CoresetSpec.from_multiplier(5, 2)
        result = build_coreset(small_blobs, spec, weighted=False)
        np.testing.assert_allclose(result.coreset.weights, 1.0)

    def test_proxy_distance_bounded_by_coreset_radius(self, small_blobs):
        spec = CoresetSpec.from_multiplier(5, 4)
        result = build_coreset(small_blobs, spec)
        # Every point's proxy is its closest coreset point, so the max proxy
        # distance equals the GMM radius of the traversal.
        coreset_points = small_blobs[result.center_indices]
        distances = np.linalg.norm(
            small_blobs[:, None, :] - coreset_points[None, :, :], axis=2
        ).min(axis=1)
        assert result.max_proxy_distance == pytest.approx(distances.max())

    def test_origin_offset(self, small_blobs):
        spec = CoresetSpec.from_multiplier(3, 2)
        result = build_coreset(small_blobs, spec, origin_offset=1000)
        assert result.coreset.origin_indices.min() >= 1000

    def test_larger_multiplier_smaller_proxy_distance(self, medium_blobs):
        small = build_coreset(medium_blobs, CoresetSpec.from_multiplier(5, 1))
        large = build_coreset(medium_blobs, CoresetSpec.from_multiplier(5, 8))
        assert large.max_proxy_distance <= small.max_proxy_distance + 1e-9


class TestBuildCoresetEpsilonRule:
    def test_stopping_condition_met(self, small_blobs):
        k, epsilon = 5, 0.5
        spec = CoresetSpec.from_epsilon(k, epsilon)
        result = build_coreset(small_blobs, spec)
        assert result.max_proxy_distance <= (epsilon / 2.0) * result.gmm_radius_at_base + 1e-9
        assert result.size >= k

    def test_lemma2_proxy_bound(self, small_blobs):
        # Lemma 2: d(s, p(s)) <= eps * r*_k(S); we use the GMM radius as an
        # upper bound proxy for 2 r*_k, so the proxy distance must be at most
        # eps/2 * r_{T^k} <= eps * r*_k.
        k, epsilon = 4, 0.5
        spec = CoresetSpec.from_epsilon(k, epsilon)
        result = build_coreset(small_blobs, spec)
        gmm_radius_k = gmm_select(small_blobs, k).radius
        assert result.max_proxy_distance <= epsilon * gmm_radius_k + 1e-9

    def test_max_size_respected(self, small_blobs):
        spec = CoresetSpec.from_epsilon(5, 0.01, max_size=15)
        result = build_coreset(small_blobs, spec)
        assert result.size <= 15


class TestBuildWeightedCoreset:
    def test_shorthand_returns_weighted_points(self, small_blobs):
        spec = CoresetSpec.from_multiplier(5, 2)
        coreset = build_weighted_coreset(small_blobs, spec)
        assert coreset.total_weight == pytest.approx(small_blobs.shape[0])
        assert len(coreset) == 10
