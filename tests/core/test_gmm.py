"""Tests for repro.core.gmm (Gonzalez's farthest-first traversal)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GMM, gmm_adaptive, gmm_select, gmm_until_radius
from repro.evaluation import optimal_kcenter_radius
from repro.exceptions import InvalidParameterError


class TestGMMClass:
    def test_initial_state(self, small_blobs):
        traversal = GMM(small_blobs)
        assert traversal.n_centers == 1
        assert traversal.centers[0] == 0
        assert traversal.radius > 0

    def test_random_first_center(self, small_blobs):
        traversal = GMM(small_blobs, random_state=3)
        assert 0 <= traversal.centers[0] < small_blobs.shape[0]

    def test_explicit_first_center(self, small_blobs):
        traversal = GMM(small_blobs, first_center=17)
        assert traversal.centers[0] == 17

    def test_invalid_first_center(self, small_blobs):
        with pytest.raises(InvalidParameterError):
            GMM(small_blobs, first_center=10_000)

    def test_radius_history_non_increasing(self, small_blobs):
        traversal = GMM(small_blobs)
        traversal.extend_to(20)
        history = traversal.radius_history
        assert np.all(np.diff(history) <= 1e-9)

    def test_extend_to_saturation(self):
        points = np.array([[0.0], [1.0], [2.0]])
        traversal = GMM(points)
        traversal.extend_to(10)
        assert traversal.n_centers == 3
        assert traversal.radius == pytest.approx(0.0)

    def test_extend_stops_on_duplicates(self):
        points = np.array([[1.0, 1.0]] * 5)
        traversal = GMM(points)
        assert traversal.extend_by_one() is False
        assert traversal.n_centers == 1

    def test_centers_are_distinct(self, small_blobs):
        traversal = GMM(small_blobs)
        traversal.extend_to(15)
        assert len(set(traversal.centers.tolist())) == 15

    def test_extend_until_radius(self, small_blobs):
        traversal = GMM(small_blobs)
        target = traversal.radius / 4.0
        traversal.extend_until_radius(target)
        assert traversal.radius <= target

    def test_radius_at(self, small_blobs):
        traversal = GMM(small_blobs)
        traversal.extend_to(10)
        assert traversal.radius_at(5) >= traversal.radius_at(10)
        with pytest.raises(InvalidParameterError):
            traversal.radius_at(11)

    def test_assignment_points_to_closest_center(self, small_blobs):
        traversal = GMM(small_blobs)
        traversal.extend_to(8)
        centers = small_blobs[traversal.centers]
        expected = np.argmin(
            np.linalg.norm(small_blobs[:, None, :] - centers[None, :, :], axis=2), axis=1
        )
        distances_via_assignment = np.linalg.norm(
            small_blobs - centers[traversal.assignment], axis=1
        )
        distances_expected = np.linalg.norm(small_blobs - centers[expected], axis=1)
        np.testing.assert_allclose(distances_via_assignment, distances_expected, atol=1e-9)


class TestReadOnlyViews:
    """The state accessors return aliasing views, not per-access copies.

    Regression tests for the O(n)/O(tau)-copy-per-access bug: callers
    polling ``assignment``/``distances_to_centers``/``centers``/
    ``radius_history`` once per extension step used to pay quadratic
    copying over a traversal.
    """

    def test_accessors_alias_instead_of_copying(self, small_blobs):
        traversal = GMM(small_blobs)
        traversal.extend_to(5)
        for name in ("assignment", "distances_to_centers", "centers", "radius_history"):
            first = getattr(traversal, name)
            second = getattr(traversal, name)
            assert np.shares_memory(first, second), f"{name} copies on access"

    def test_views_reject_writes(self, small_blobs):
        traversal = GMM(small_blobs)
        traversal.extend_to(5)
        for name in ("assignment", "distances_to_centers", "centers", "radius_history"):
            view = getattr(traversal, name)
            assert not view.flags.writeable
            with pytest.raises(ValueError):
                view[0] = -1

    def test_in_place_extension_keeps_aliases_live(self, small_blobs):
        traversal = GMM(small_blobs)
        assignment = traversal.assignment
        distances = traversal.distances_to_centers
        traversal.extend_to(4)
        # The handles observe the in-place updates of later extensions.
        np.testing.assert_array_equal(assignment, traversal.assignment)
        np.testing.assert_array_equal(distances, traversal.distances_to_centers)
        assert assignment.max() == 3

    def test_result_snapshot_is_stable(self, small_blobs):
        traversal = GMM(small_blobs)
        traversal.extend_to(3)
        snapshot = traversal.result()
        before = snapshot.assignment.copy()
        traversal.extend_to(10)
        np.testing.assert_array_equal(snapshot.assignment, before)
        assert snapshot.n_centers == 3


class TestGMMSelect:
    def test_returns_k_centers(self, small_blobs):
        result = gmm_select(small_blobs, 7)
        assert result.n_centers == 7
        assert result.radius > 0

    def test_k_capped_at_n(self):
        points = np.array([[0.0], [5.0]])
        result = gmm_select(points, 10)
        assert result.n_centers == 2

    def test_radius_matches_evaluation(self, small_blobs):
        result = gmm_select(small_blobs, 5)
        centers = small_blobs[result.centers]
        distances = np.linalg.norm(small_blobs[:, None, :] - centers[None, :, :], axis=2)
        assert result.radius == pytest.approx(distances.min(axis=1).max())

    def test_two_approximation_against_brute_force(self, rng):
        points = rng.normal(size=(18, 2))
        for k in (2, 3, 4):
            result = gmm_select(points, k)
            optimum = optimal_kcenter_radius(points, k)
            assert result.radius <= 2.0 * optimum + 1e-9

    def test_well_separated_clusters_recovered(self):
        # Three clusters far apart: with k=3, GMM must place one center per
        # cluster, so the radius equals the intra-cluster spread.
        rng = np.random.default_rng(0)
        clusters = [rng.normal(loc=center, scale=0.1, size=(30, 2))
                    for center in ([0, 0], [100, 0], [0, 100])]
        points = np.vstack(clusters)
        result = gmm_select(points, 3)
        assert result.radius < 1.0


class TestGMMUntilRadius:
    def test_reaches_target(self, small_blobs):
        start = gmm_select(small_blobs, 1).radius
        result = gmm_until_radius(small_blobs, start / 3.0)
        assert result.radius <= start / 3.0

    def test_max_centers_cap(self, small_blobs):
        result = gmm_until_radius(small_blobs, 0.0, max_centers=5)
        assert result.n_centers == 5

    def test_negative_target_raises(self, small_blobs):
        traversal = GMM(small_blobs)
        with pytest.raises(InvalidParameterError):
            traversal.extend_until_radius(-1.0)


class TestGMMAdaptive:
    def test_stopping_condition(self, small_blobs):
        k, epsilon = 5, 0.5
        result = gmm_adaptive(small_blobs, k, epsilon)
        radius_at_k = result.radius_history[k - 1]
        assert result.radius <= (epsilon / 2.0) * radius_at_k + 1e-12
        assert result.n_centers >= k

    def test_smaller_epsilon_larger_coreset(self, medium_blobs):
        loose = gmm_adaptive(medium_blobs, 5, 1.0)
        tight = gmm_adaptive(medium_blobs, 5, 0.25)
        assert tight.n_centers >= loose.n_centers

    def test_max_centers_respected(self, small_blobs):
        result = gmm_adaptive(small_blobs, 5, 0.01, max_centers=12)
        assert result.n_centers <= 12

    def test_invalid_epsilon(self, small_blobs):
        with pytest.raises(InvalidParameterError):
            gmm_adaptive(small_blobs, 5, 0.0)
