"""Tests for repro.core.stream_outliers (CORESETOUTLIERS and the 2-pass variant)."""

from __future__ import annotations

import pytest

from repro.core import CoresetStreamOutliers, TwoPassStreamOutliers, radius_with_outliers
from repro.exceptions import InvalidParameterError, StreamingProtocolError
from repro.streaming import ArrayStream, GeneratorStream, StreamingRunner


class TestCoresetStreamOutliers:
    def test_configuration_validation(self):
        with pytest.raises(InvalidParameterError):
            CoresetStreamOutliers(5, 10, coreset_size=10)  # below k + z
        with pytest.raises(InvalidParameterError):
            CoresetStreamOutliers(5, 10, coreset_multiplier=0.5)
        with pytest.raises(InvalidParameterError):
            CoresetStreamOutliers(5, 10, eps_hat=-1.0)

    def test_basic_run(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        algorithm = CoresetStreamOutliers(5, z, coreset_multiplier=4)
        report = StreamingRunner().run(algorithm, ArrayStream(data, shuffle=True, random_state=0))
        assert report.result.centers.shape[0] <= 5
        assert report.result.coreset_size <= algorithm.coreset_size
        assert report.peak_memory <= algorithm.coreset_size + 1

    def test_excludes_planted_outliers(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        algorithm = CoresetStreamOutliers(5, z, coreset_multiplier=8)
        report = StreamingRunner().run(algorithm, ArrayStream(data, shuffle=True, random_state=1))
        radius_excl = radius_with_outliers(data, report.result.centers, z)
        radius_all = radius_with_outliers(data, report.result.centers, 0)
        assert radius_excl < radius_all / 10.0

    def test_search_metadata_reported(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        algorithm = CoresetStreamOutliers(4, z, coreset_multiplier=2)
        report = StreamingRunner().run(algorithm, ArrayStream(data))
        assert report.result.search_probes >= 1
        assert report.result.estimated_radius >= 0

    def test_works_from_generator_stream(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        algorithm = CoresetStreamOutliers(4, z, coreset_multiplier=2)
        batches = (data[i : i + 32] for i in range(0, data.shape[0], 32))
        report = StreamingRunner().run(algorithm, GeneratorStream(batches))
        assert report.result.n_processed == data.shape[0]

    def test_zero_outliers(self, small_blobs):
        algorithm = CoresetStreamOutliers(4, 0, coreset_multiplier=4)
        report = StreamingRunner().run(algorithm, ArrayStream(small_blobs))
        assert report.result.centers.shape[0] <= 4


class TestTwoPassStreamOutliers:
    def test_needs_two_passes(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        algorithm = TwoPassStreamOutliers(4, blobs_with_outliers.n_outliers)
        assert algorithm.n_passes == 2
        with pytest.raises(StreamingProtocolError):
            StreamingRunner().run(algorithm, ArrayStream(data, max_passes=1))

    def test_basic_run(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        algorithm = TwoPassStreamOutliers(5, z, epsilon=1.0)
        report = StreamingRunner().run(algorithm, ArrayStream(data, shuffle=True, random_state=0))
        assert report.n_passes == 2
        radius_excl = radius_with_outliers(data, report.result.centers, z)
        radius_all = radius_with_outliers(data, report.result.centers, 0)
        assert radius_excl < radius_all / 10.0

    def test_max_coreset_size_cap(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        algorithm = TwoPassStreamOutliers(5, z, epsilon=1.0, max_coreset_size=50)
        report = StreamingRunner().run(algorithm, ArrayStream(data))
        assert report.result.coreset_size <= 50

    def test_invalid_epsilon(self):
        with pytest.raises(InvalidParameterError):
            TwoPassStreamOutliers(3, 5, epsilon=2.0)
