"""Tests for repro.core.model (the fit/predict facade)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    KCenterModel,
    MapReduceKCenter,
    MapReduceKCenterOutliers,
    SequentialKCenter,
    SequentialKCenterOutliers,
)
from repro.exceptions import InvalidParameterError, NotFittedError


class TestConstruction:
    def test_accepts_all_solver_types(self, small_blobs):
        for solver in (
            SequentialKCenter(3),
            SequentialKCenterOutliers(3, 5, coreset_multiplier=2),
            MapReduceKCenter(3, ell=2, coreset_multiplier=2),
            MapReduceKCenterOutliers(3, 5, ell=2, coreset_multiplier=2),
        ):
            model = KCenterModel(solver)
            assert model.fit(small_blobs).centers.shape[0] <= 3

    def test_rejects_arbitrary_objects(self):
        with pytest.raises(InvalidParameterError):
            KCenterModel(object())

    def test_not_fitted_errors(self):
        model = KCenterModel(SequentialKCenter(2))
        with pytest.raises(NotFittedError):
            _ = model.centers
        with pytest.raises(NotFittedError):
            model.predict([[0.0, 0.0]])


class TestPrediction:
    @pytest.fixture
    def two_cluster_model(self):
        points = np.vstack(
            [np.random.default_rng(0).normal(0.0, 0.3, size=(30, 2)),
             np.random.default_rng(1).normal(20.0, 0.3, size=(30, 2))]
        )
        return KCenterModel(SequentialKCenter(2)).fit(points), points

    def test_predict_assigns_to_nearest_center(self, two_cluster_model):
        model, _ = two_cluster_model
        labels = model.predict([[0.0, 0.0], [20.0, 20.0]])
        assert labels.shape == (2,)
        assert labels[0] != labels[1]

    def test_transform_shape(self, two_cluster_model):
        model, points = two_cluster_model
        distances = model.transform(points[:5])
        assert distances.shape == (5, 2)

    def test_predict_distance_matches_transform(self, two_cluster_model):
        model, points = two_cluster_model
        np.testing.assert_allclose(
            model.predict_distance(points[:7]), model.transform(points[:7]).min(axis=1)
        )

    def test_outlier_mask_flags_far_points(self, two_cluster_model):
        model, points = two_cluster_model
        query = np.vstack([points[:3], [[1000.0, 1000.0]]])
        mask = model.outlier_mask(query)
        assert mask.tolist() == [False, False, False, True]

    def test_outlier_mask_custom_threshold(self, two_cluster_model):
        model, points = two_cluster_model
        mask = model.outlier_mask(points, threshold=0.0)
        # With a zero threshold only the centers themselves are inliers.
        assert mask.sum() >= points.shape[0] - 2

    def test_outlier_mask_negative_threshold_rejected(self, two_cluster_model):
        model, points = two_cluster_model
        with pytest.raises(InvalidParameterError):
            model.outlier_mask(points, threshold=-1.0)

    def test_evaluate(self, two_cluster_model):
        model, points = two_cluster_model
        summary = model.evaluate(points)
        assert summary["radius"] == pytest.approx(model.radius, rel=1e-9)
        assert summary["cluster_sizes"].sum() == points.shape[0]


class TestOutlierSolverIntegration:
    def test_training_outliers_recorded(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        model = KCenterModel(
            SequentialKCenterOutliers(5, z, coreset_multiplier=8, random_state=0)
        ).fit(data)
        assert set(model.fitted.training_outlier_indices) == set(
            blobs_with_outliers.outlier_indices
        )
        # The fitted radius excludes outliers, so the planted ones are flagged.
        mask = model.outlier_mask(data)
        assert set(np.flatnonzero(mask)) >= set(blobs_with_outliers.outlier_indices)

    def test_metric_defaults_to_solver_metric(self):
        solver = SequentialKCenter(2, metric="manhattan")
        model = KCenterModel(solver)
        assert model.metric.name == "manhattan"
