"""Tests for repro.core.radius_search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import OutliersClusterSolver, search_radius
from repro.core.radius_search import delta_for
from repro.evaluation import optimal_kcenter_with_outliers_radius
from repro.exceptions import InvalidParameterError
from repro.metricspace import WeightedPoints


def _unit_coreset(points: np.ndarray) -> WeightedPoints:
    return WeightedPoints(points=points, weights=np.ones(points.shape[0]))


class TestDeltaFor:
    def test_zero_eps_hat(self):
        assert delta_for(0.0) == 0.0

    def test_formula(self):
        eps_hat = 0.3
        assert delta_for(eps_hat) == pytest.approx(eps_hat / (3 + 4 * eps_hat))

    def test_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            delta_for(-0.1)


class TestSearchRadius:
    def test_found_radius_is_feasible(self, small_blobs):
        solver = OutliersClusterSolver(_unit_coreset(small_blobs), k=4, eps_hat=0.1)
        result = search_radius(solver, z=5)
        assert result.solution.uncovered_weight <= 5

    def test_probes_counted(self, small_blobs):
        solver = OutliersClusterSolver(_unit_coreset(small_blobs[:50]), k=3, eps_hat=0.1)
        result = search_radius(solver, z=2)
        assert result.probes >= 1

    def test_zero_radius_for_duplicate_points(self):
        points = np.zeros((10, 2))
        solver = OutliersClusterSolver(_unit_coreset(points), k=1, eps_hat=0.0)
        result = search_radius(solver, z=0)
        assert result.radius == pytest.approx(0.0)
        assert result.solution.uncovered_weight == pytest.approx(0.0)

    def test_radius_close_to_optimum_unit_weights(self, rng):
        # With unit weights and eps_hat = 0, the search reproduces Charikar
        # et al.: the accepted radius is at most the optimal r*_{k,z} (the
        # optimum itself is feasible because of the 3r coverage balls), and
        # the final clustering radius is at most 3x that.
        points = rng.normal(size=(15, 2))
        points[:2] += 40.0
        k, z = 3, 2
        solver = OutliersClusterSolver(_unit_coreset(points), k=k, eps_hat=0.0)
        result = search_radius(solver, z=z)
        optimum = optimal_kcenter_with_outliers_radius(points, k, z)
        assert result.radius <= optimum + 1e-9

    def test_smaller_z_larger_radius(self, small_blobs):
        solver = OutliersClusterSolver(_unit_coreset(small_blobs), k=2, eps_hat=0.1)
        tight = search_radius(solver, z=0)
        loose = search_radius(solver, z=30)
        assert loose.radius <= tight.radius + 1e-9

    def test_geometric_refinement_does_not_break_feasibility(self, small_blobs):
        solver = OutliersClusterSolver(_unit_coreset(small_blobs), k=3, eps_hat=0.5)
        result = search_radius(solver, z=4)
        check = solver.run(result.radius)
        assert check.uncovered_weight <= 4

    def test_negative_z_rejected(self, small_blobs):
        solver = OutliersClusterSolver(_unit_coreset(small_blobs), k=3)
        with pytest.raises(InvalidParameterError):
            search_radius(solver, z=-1)

    def test_all_identical_points_converge_to_zero(self):
        # Fully degenerate coreset: every pairwise distance is zero, so the
        # zero-radius probe must decide immediately (no geometric loop).
        points = np.full((8, 3), 2.5)
        solver = OutliersClusterSolver(_unit_coreset(points), k=2, eps_hat=0.25)
        result = search_radius(solver, z=3)
        assert result.radius == 0.0
        assert result.solution.uncovered_weight == 0.0

    def test_two_distinct_distances_converge(self):
        # Two tight clusters: the candidate set collapses to ~two distinct
        # values (intra ~0, inter ~100). The search must terminate with a
        # feasible radius and bounded probes even with a small delta.
        points = np.vstack([np.zeros((5, 2)), np.full((5, 2), 100.0)])
        solver = OutliersClusterSolver(_unit_coreset(points), k=1, eps_hat=0.05)
        result = search_radius(solver, z=5)
        assert solver.run(result.radius).uncovered_weight <= 5
        assert result.probes <= 200

    def test_refinement_exhaustion_raises_instead_of_silent_radius(self):
        # Regression: a feasibility landscape whose feasible region extends
        # far below the smallest candidate distance used to burn all
        # max_geometric_steps and silently return the last radius probed,
        # voiding the documented (1 + delta) tolerance. It must now raise.
        from repro.exceptions import RadiusSearchError

        class BottomlessSolver:
            """Feasible at every positive radius, infeasible at zero."""

            eps_hat = 0.1

            def candidate_radii(self):
                return np.array([1.0, 2.0])

            def run(self, radius):
                class Result:
                    uncovered_weight = 1.0 if radius <= 0.0 else 0.0
                    center_indices = np.array([0])

                return Result()

        with pytest.raises(RadiusSearchError, match="did not converge"):
            search_radius(BottomlessSolver(), z=0, max_geometric_steps=16)

    def test_refinement_converging_on_last_step_does_not_raise(self):
        # Boundary case: the walk establishes the (1 + delta) invariant on
        # its final allowed shrink (the *next* candidate would cross the
        # infeasible floor); that is convergence, not exhaustion.
        delta = 0.5

        class NarrowGapSolver:
            eps_hat = 0.0  # delta passed explicitly

            def candidate_radii(self):
                return np.array([1.0, 9.0])

            def run(self, radius):
                class Result:
                    # Feasible strictly above 1.0; 1.0 itself and below
                    # (including 0) infeasible.
                    uncovered_weight = 0.0 if radius > 1.0 else 10.0
                    center_indices = np.array([0])

                return Result()

        # From 9.0, two /1.5 shrinks reach 4.0; the third would hit
        # 4.0/1.5 = 2.67 > floor... use max steps such that the next
        # candidate crosses the floor exactly after the budget.
        # floor = 1.0; 9 / 1.5^5 = 1.185 (feasible, > floor); next
        # candidate 0.79 <= floor -> converged on the last step.
        result = search_radius(
            NarrowGapSolver(), z=0, delta=delta, max_geometric_steps=5
        )
        assert result.radius == pytest.approx(9.0 / 1.5**5)

    def test_doubling_exhaustion_raises_clear_error(self):
        from repro.exceptions import RadiusSearchError

        class NeverFeasibleSolver:
            """No radius is ever feasible (pathological weights)."""

            eps_hat = 0.0

            def candidate_radii(self):
                return np.array([1.0])

            def run(self, radius):
                class Result:
                    uncovered_weight = np.inf
                    center_indices = np.array([0])

                return Result()

        with pytest.raises(RadiusSearchError, match="no feasible radius"):
            search_radius(NeverFeasibleSolver(), z=0, max_geometric_steps=8)

    def test_weighted_coreset_budget_respected(self):
        # Heavy far-away point cannot be declared an outlier if z is smaller
        # than its weight, so the radius must stretch to cover it.
        points = np.array([[0.0], [1.0], [100.0]])
        light = WeightedPoints(points=points, weights=np.array([1.0, 1.0, 1.0]))
        heavy = WeightedPoints(points=points, weights=np.array([1.0, 1.0, 10.0]))
        light_result = search_radius(OutliersClusterSolver(light, k=1, eps_hat=0.0), z=1)
        heavy_result = search_radius(OutliersClusterSolver(heavy, k=1, eps_hat=0.0), z=1)
        assert heavy_result.radius > light_result.radius
