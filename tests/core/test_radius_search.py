"""Tests for repro.core.radius_search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import OutliersClusterSolver, search_radius
from repro.core.radius_search import delta_for
from repro.evaluation import optimal_kcenter_with_outliers_radius
from repro.exceptions import InvalidParameterError
from repro.metricspace import WeightedPoints


def _unit_coreset(points: np.ndarray) -> WeightedPoints:
    return WeightedPoints(points=points, weights=np.ones(points.shape[0]))


class TestDeltaFor:
    def test_zero_eps_hat(self):
        assert delta_for(0.0) == 0.0

    def test_formula(self):
        eps_hat = 0.3
        assert delta_for(eps_hat) == pytest.approx(eps_hat / (3 + 4 * eps_hat))

    def test_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            delta_for(-0.1)


class TestSearchRadius:
    def test_found_radius_is_feasible(self, small_blobs):
        solver = OutliersClusterSolver(_unit_coreset(small_blobs), k=4, eps_hat=0.1)
        result = search_radius(solver, z=5)
        assert result.solution.uncovered_weight <= 5

    def test_probes_counted(self, small_blobs):
        solver = OutliersClusterSolver(_unit_coreset(small_blobs[:50]), k=3, eps_hat=0.1)
        result = search_radius(solver, z=2)
        assert result.probes >= 1

    def test_zero_radius_for_duplicate_points(self):
        points = np.zeros((10, 2))
        solver = OutliersClusterSolver(_unit_coreset(points), k=1, eps_hat=0.0)
        result = search_radius(solver, z=0)
        assert result.radius == pytest.approx(0.0)
        assert result.solution.uncovered_weight == pytest.approx(0.0)

    def test_radius_close_to_optimum_unit_weights(self, rng):
        # With unit weights and eps_hat = 0, the search reproduces Charikar
        # et al.: the accepted radius is at most the optimal r*_{k,z} (the
        # optimum itself is feasible because of the 3r coverage balls), and
        # the final clustering radius is at most 3x that.
        points = rng.normal(size=(15, 2))
        points[:2] += 40.0
        k, z = 3, 2
        solver = OutliersClusterSolver(_unit_coreset(points), k=k, eps_hat=0.0)
        result = search_radius(solver, z=z)
        optimum = optimal_kcenter_with_outliers_radius(points, k, z)
        assert result.radius <= optimum + 1e-9

    def test_smaller_z_larger_radius(self, small_blobs):
        solver = OutliersClusterSolver(_unit_coreset(small_blobs), k=2, eps_hat=0.1)
        tight = search_radius(solver, z=0)
        loose = search_radius(solver, z=30)
        assert loose.radius <= tight.radius + 1e-9

    def test_geometric_refinement_does_not_break_feasibility(self, small_blobs):
        solver = OutliersClusterSolver(_unit_coreset(small_blobs), k=3, eps_hat=0.5)
        result = search_radius(solver, z=4)
        check = solver.run(result.radius)
        assert check.uncovered_weight <= 4

    def test_negative_z_rejected(self, small_blobs):
        solver = OutliersClusterSolver(_unit_coreset(small_blobs), k=3)
        with pytest.raises(InvalidParameterError):
            search_radius(solver, z=-1)

    def test_weighted_coreset_budget_respected(self):
        # Heavy far-away point cannot be declared an outlier if z is smaller
        # than its weight, so the radius must stretch to cover it.
        points = np.array([[0.0], [1.0], [100.0]])
        light = WeightedPoints(points=points, weights=np.array([1.0, 1.0, 1.0]))
        heavy = WeightedPoints(points=points, weights=np.array([1.0, 1.0, 10.0]))
        light_result = search_radius(OutliersClusterSolver(light, k=1, eps_hat=0.0), z=1)
        heavy_result = search_radius(OutliersClusterSolver(heavy, k=1, eps_hat=0.0), z=1)
        assert heavy_result.radius > light_result.radius
