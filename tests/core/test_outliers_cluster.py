"""Tests for repro.core.outliers_cluster (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import OutliersClusterSolver, outliers_cluster
from repro.evaluation import optimal_kcenter_with_outliers_radius
from repro.exceptions import InvalidParameterError
from repro.metricspace import WeightedPoints


def _unit_coreset(points: np.ndarray) -> WeightedPoints:
    return WeightedPoints(points=points, weights=np.ones(points.shape[0]))


class TestOutliersClusterSolver:
    def test_selects_at_most_k_centers(self, small_blobs):
        solver = OutliersClusterSolver(_unit_coreset(small_blobs), k=3)
        result = solver.run(radius=5.0)
        assert result.n_centers <= 3

    def test_all_covered_with_huge_radius(self, small_blobs):
        solver = OutliersClusterSolver(_unit_coreset(small_blobs), k=3)
        diameter = float(solver.pairwise_distances.max())
        result = solver.run(radius=diameter)
        assert result.uncovered_weight == pytest.approx(0.0)

    def test_zero_radius_covers_only_duplicates(self):
        points = np.array([[0.0], [0.0], [1.0], [2.0], [3.0]])
        solver = OutliersClusterSolver(_unit_coreset(points), k=1)
        result = solver.run(radius=0.0)
        # One center covers only the duplicate pair, leaving three uncovered.
        assert result.uncovered_weight == pytest.approx(3.0)

    def test_first_center_maximizes_covered_weight(self):
        # A heavy point far from a dense cluster: with weights, the heavy
        # point's ball must be picked first.
        points = np.array([[0.0], [0.5], [100.0]])
        weights = np.array([1.0, 1.0, 50.0])
        coreset = WeightedPoints(points=points, weights=weights)
        solver = OutliersClusterSolver(coreset, k=1)
        result = solver.run(radius=1.0)
        assert result.center_indices[0] == 2

    def test_covered_points_within_coverage_radius(self, small_blobs):
        eps_hat = 0.25
        solver = OutliersClusterSolver(_unit_coreset(small_blobs), k=4, eps_hat=eps_hat)
        radius = 3.0
        result = solver.run(radius=radius)
        covered = ~result.uncovered_mask
        if covered.any():
            distances = solver.pairwise_distances[np.ix_(covered, result.center_indices)]
            assert distances.min(axis=1).max() <= (3 + 4 * eps_hat) * radius + 1e-9

    def test_uncovered_points_outside_coverage_radius(self, small_blobs):
        eps_hat = 0.1
        solver = OutliersClusterSolver(_unit_coreset(small_blobs), k=2, eps_hat=eps_hat)
        radius = 2.0
        result = solver.run(radius=radius)
        if result.uncovered_mask.any() and result.n_centers:
            distances = solver.pairwise_distances[
                np.ix_(result.uncovered_mask, result.center_indices)
            ]
            assert distances.min(axis=1).min() > (3 + 4 * eps_hat) * radius - 1e-9

    def test_stops_early_when_everything_covered(self):
        points = np.array([[0.0], [0.1], [0.2]])
        solver = OutliersClusterSolver(_unit_coreset(points), k=3)
        result = solver.run(radius=1.0)
        assert result.n_centers == 1

    def test_lemma5_uncovered_weight_at_most_z_at_optimal_radius(self, rng):
        # Lemma 5 (unit weights, eps_hat=0 is the Charikar setting): at any
        # radius >= r*_{k,z}, the uncovered weight is at most z.
        points = rng.normal(size=(16, 2))
        points[0] += 50.0  # one clear outlier
        k, z = 3, 1
        optimum = optimal_kcenter_with_outliers_radius(points, k, z)
        solver = OutliersClusterSolver(_unit_coreset(points), k=k, eps_hat=0.0)
        result = solver.run(radius=optimum)
        assert result.uncovered_weight <= z + 1e-9

    def test_weighted_uncovered_weight(self):
        points = np.array([[0.0], [10.0], [20.0]])
        weights = np.array([5.0, 7.0, 11.0])
        solver = OutliersClusterSolver(WeightedPoints(points=points, weights=weights), k=1)
        result = solver.run(radius=0.5)
        # One center grabs the heaviest point; the other two stay uncovered.
        assert result.uncovered_weight == pytest.approx(12.0)

    def test_negative_radius_rejected(self, small_blobs):
        solver = OutliersClusterSolver(_unit_coreset(small_blobs), k=2)
        with pytest.raises(InvalidParameterError):
            solver.run(radius=-1.0)

    def test_negative_eps_hat_rejected(self, small_blobs):
        with pytest.raises(InvalidParameterError):
            OutliersClusterSolver(_unit_coreset(small_blobs), k=2, eps_hat=-0.1)

    def test_requires_weighted_points(self, small_blobs):
        with pytest.raises(InvalidParameterError):
            OutliersClusterSolver(small_blobs, k=2)

    def test_candidate_radii_sorted_unique(self, small_blobs):
        solver = OutliersClusterSolver(_unit_coreset(small_blobs[:20]), k=2)
        candidates = solver.candidate_radii()
        assert np.all(np.diff(candidates) > 0)

    def test_uncovered_weight_helper(self, small_blobs):
        solver = OutliersClusterSolver(_unit_coreset(small_blobs), k=3)
        assert solver.uncovered_weight(1e9) == pytest.approx(0.0)


class TestIncrementalBallWeights:
    """The incremental ball-weight maintenance must match Algorithm 1 literally."""

    @staticmethod
    def _naive_run(solver: OutliersClusterSolver, radius: float):
        selection_radius = (1.0 + 2.0 * solver.eps_hat) * radius
        coverage_radius = (3.0 + 4.0 * solver.eps_hat) * radius
        pairwise = solver.pairwise_distances
        weights = solver.coreset.weights
        uncovered = np.ones(len(solver.coreset), dtype=bool)
        centers = []
        while len(centers) < solver.k and uncovered.any():
            uncovered_weight = np.where(uncovered, weights, 0.0)
            ball_weights = (pairwise <= selection_radius) @ uncovered_weight
            center = int(np.argmax(ball_weights))
            centers.append(center)
            uncovered &= ~(pairwise[center] <= coverage_radius)
        return centers, uncovered

    @pytest.mark.parametrize("quantile", (0.02, 0.1, 0.3, 0.6))
    def test_matches_naive_reference(self, small_blobs, quantile):
        weights = np.asarray(
            np.random.default_rng(4).integers(1, 9, size=small_blobs.shape[0]),
            dtype=np.float64,
        )
        coreset = WeightedPoints(points=small_blobs, weights=weights)
        solver = OutliersClusterSolver(coreset, k=4, eps_hat=1 / 6)
        radius = float(np.quantile(solver.candidate_radii(), quantile))
        result = solver.run(radius)
        expected_centers, expected_uncovered = self._naive_run(solver, radius)
        assert list(result.center_indices) == expected_centers
        assert np.array_equal(result.uncovered_mask, expected_uncovered)

    def test_repeated_probes_are_independent(self, small_blobs):
        solver = OutliersClusterSolver(_unit_coreset(small_blobs), k=3, eps_hat=1 / 6)
        radius = float(np.median(solver.candidate_radii()))
        first = solver.run(radius)
        second = solver.run(radius)
        assert np.array_equal(first.center_indices, second.center_indices)
        assert first.uncovered_weight == second.uncovered_weight


class TestOutliersClusterFunction:
    def test_one_shot_wrapper(self, small_blobs):
        result = outliers_cluster(_unit_coreset(small_blobs), k=3, radius=5.0)
        assert result.n_centers <= 3
        assert result.radius == pytest.approx(5.0)
