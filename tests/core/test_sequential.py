"""Tests for repro.core.sequential."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SequentialKCenter, SequentialKCenterOutliers
from repro.evaluation import (
    optimal_kcenter_radius,
    optimal_kcenter_with_outliers_radius,
)
from repro.exceptions import InvalidParameterError


class TestSequentialKCenter:
    def test_basic_run(self, small_blobs):
        result = SequentialKCenter(5).fit(small_blobs)
        assert result.k == 5
        assert result.radius > 0
        assert result.coreset_size == 5
        assert result.outlier_indices.size == 0

    def test_two_approximation(self, rng):
        points = rng.normal(size=(16, 2))
        result = SequentialKCenter(3).fit(points)
        assert result.radius <= 2.0 * optimal_kcenter_radius(points, 3) + 1e-9

    def test_k_too_large(self, small_blobs):
        with pytest.raises(InvalidParameterError):
            SequentialKCenter(small_blobs.shape[0] + 1).fit(small_blobs)

    def test_centers_are_input_points(self, small_blobs):
        result = SequentialKCenter(4).fit(small_blobs)
        np.testing.assert_allclose(result.centers, small_blobs[result.center_indices])


class TestSequentialKCenterOutliers:
    def test_basic_run(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        result = SequentialKCenterOutliers(5, z, coreset_multiplier=4, random_state=0).fit(data)
        assert result.k <= 5
        assert result.radius <= result.radius_all_points
        assert result.outlier_indices.shape == (z,)

    def test_identifies_planted_outliers(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        result = SequentialKCenterOutliers(5, z, coreset_multiplier=8, random_state=0).fit(data)
        # The z points the solution discards should be exactly the planted ones.
        assert set(result.outlier_indices) == set(blobs_with_outliers.outlier_indices)

    def test_radius_excludes_planted_outliers(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        result = SequentialKCenterOutliers(5, z, coreset_multiplier=4, random_state=0).fit(data)
        # The planted outliers are ~100 MEB radii away; excluding them the
        # radius must be comparable to the clean data's spread, i.e. far
        # smaller than the all-points radius.
        assert result.radius < result.radius_all_points / 10.0

    def test_approximation_on_tiny_instance(self, rng):
        points = rng.normal(size=(14, 2))
        points[0] += 30.0
        k, z = 3, 1
        result = SequentialKCenterOutliers(k, z, epsilon=0.5, random_state=0).fit(points)
        optimum = optimal_kcenter_with_outliers_radius(points, k, z)
        # Theorem 2 gives 3 + eps; allow a small numerical slack.
        assert result.radius <= (3.0 + 0.5) * optimum + 1e-9

    def test_zero_outliers_allowed(self, small_blobs):
        result = SequentialKCenterOutliers(4, 0, coreset_multiplier=2).fit(small_blobs)
        assert result.radius == pytest.approx(result.radius_all_points)

    def test_mutually_exclusive_knobs(self):
        with pytest.raises(InvalidParameterError):
            SequentialKCenterOutliers(3, 2, epsilon=0.5, coreset_multiplier=2)

    def test_z_too_large(self, small_blobs):
        with pytest.raises(InvalidParameterError):
            SequentialKCenterOutliers(3, small_blobs.shape[0]).fit(small_blobs)

    def test_larger_coreset_not_worse(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        small = SequentialKCenterOutliers(5, z, coreset_multiplier=1, random_state=0).fit(data)
        large = SequentialKCenterOutliers(5, z, coreset_multiplier=8, random_state=0).fit(data)
        assert large.radius <= small.radius * 1.5 + 1e-9
