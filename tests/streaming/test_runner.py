"""Tests for repro.streaming.runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import MemoryBudgetExceededError, StreamingProtocolError
from repro.streaming import ArrayStream, StreamingAlgorithm, StreamingRunner


class CollectEverything(StreamingAlgorithm):
    """A trivial algorithm that stores every point (for harness testing)."""

    def __init__(self) -> None:
        self.points: list[np.ndarray] = []

    def process(self, point: np.ndarray) -> None:
        self.points.append(np.array(point))

    def finalize(self):
        return np.vstack(self.points)

    @property
    def working_memory_size(self) -> int:
        return len(self.points)


class TwoPassCounter(StreamingAlgorithm):
    """Counts points per pass (for multi-pass harness testing)."""

    n_passes = 2

    def __init__(self) -> None:
        self.counts = [0, 0]
        self._current = 0

    def start_pass(self, pass_index: int) -> None:
        self._current = pass_index

    def process(self, point: np.ndarray) -> None:
        self.counts[self._current] += 1

    def finalize(self):
        return tuple(self.counts)

    @property
    def working_memory_size(self) -> int:
        return 2


class TestStreamingRunner:
    def test_runs_and_reports(self, small_blobs):
        report = StreamingRunner().run(CollectEverything(), ArrayStream(small_blobs))
        assert report.n_points == small_blobs.shape[0]
        assert report.n_passes == 1
        assert report.peak_memory == small_blobs.shape[0]
        assert report.result.shape == small_blobs.shape
        assert report.throughput > 0

    def test_memory_limit(self, small_blobs):
        runner = StreamingRunner(memory_limit=10)
        with pytest.raises(MemoryBudgetExceededError):
            runner.run(CollectEverything(), ArrayStream(small_blobs))

    def test_multi_pass(self, small_blobs):
        report = StreamingRunner().run(TwoPassCounter(), ArrayStream(small_blobs))
        assert report.n_passes == 2
        assert report.result == (small_blobs.shape[0], small_blobs.shape[0])

    def test_pass_budget_mismatch(self, small_blobs):
        with pytest.raises(StreamingProtocolError):
            StreamingRunner().run(TwoPassCounter(), ArrayStream(small_blobs, max_passes=1))

    def test_invalid_check_interval(self):
        with pytest.raises(StreamingProtocolError):
            StreamingRunner(memory_check_interval=0)

    def test_sparse_memory_checks_still_catch_peak(self, small_blobs):
        runner = StreamingRunner(memory_check_interval=1000)
        report = runner.run(CollectEverything(), ArrayStream(small_blobs))
        assert report.peak_memory == small_blobs.shape[0]


class SpikyBatchCompressor(StreamingAlgorithm):
    """Buffers a whole chunk, then compresses to one point at chunk end.

    Models solvers whose working set peaks *inside* ``process_batch``
    (e.g. while holding a chunk plus the coreset before a merge): the
    post-chunk ``working_memory_size`` is tiny, so only the tracked
    ``peak_working_memory_size`` reveals the excursion.
    """

    def __init__(self) -> None:
        self._pending: list[np.ndarray] = []
        self._summary: np.ndarray | None = None
        self._peak = 1

    def process(self, point: np.ndarray) -> None:
        self._pending.append(np.asarray(point))
        self._peak = max(self._peak, self.working_memory_size)

    def process_batch(self, batch: np.ndarray) -> None:
        for point in np.atleast_2d(np.asarray(batch, dtype=np.float64)):
            self.process(point)
        # Compress: the mid-chunk peak disappears from the current size.
        self._summary = np.mean(np.vstack(self._pending), axis=0)
        self._pending = []

    def finalize(self):
        return self._summary

    @property
    def working_memory_size(self) -> int:
        return len(self._pending) + (0 if self._summary is None else 1)

    @property
    def peak_working_memory_size(self) -> int:
        return self._peak


class TestBatchedMemoryEnforcement:
    def test_mid_chunk_peak_trips_the_limit_on_the_batched_path(self, small_blobs):
        # The peak (one full 50-point chunk) lives strictly inside
        # process_batch; after each chunk the working set is 1 point.
        runner = StreamingRunner(memory_limit=10, batch_size=50)
        with pytest.raises(MemoryBudgetExceededError):
            runner.run(SpikyBatchCompressor(), ArrayStream(small_blobs))

    def test_mid_chunk_peak_matches_per_point_enforcement(self, small_blobs):
        # The per-point path already caught this; batched must agree.
        with pytest.raises(MemoryBudgetExceededError):
            StreamingRunner(memory_limit=10).run(
                SpikyBatchCompressor(), ArrayStream(small_blobs)
            )

    def test_batched_run_within_limit_reports_true_peak(self, small_blobs):
        report = StreamingRunner(batch_size=50).run(
            SpikyBatchCompressor(), ArrayStream(small_blobs)
        )
        # Chunks after the first hold 50 pending points plus the summary.
        assert report.peak_memory == 51


class TestEmptyStreams:
    def test_empty_generator_stream_raises_deterministically(self):
        from repro.exceptions import EmptyStreamError
        from repro.streaming import GeneratorStream

        with pytest.raises(EmptyStreamError):
            StreamingRunner().run(CollectEverything(), GeneratorStream(iter(())))

    def test_empty_stream_with_zero_length_hint_batched(self):
        from repro.exceptions import EmptyStreamError
        from repro.streaming import GeneratorStream

        with pytest.raises(EmptyStreamError):
            StreamingRunner(batch_size=32).run(
                CollectEverything(), GeneratorStream(iter(()), length_hint=0)
            )
