"""Tests for repro.streaming.runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import MemoryBudgetExceededError, StreamingProtocolError
from repro.streaming import ArrayStream, StreamingAlgorithm, StreamingRunner


class CollectEverything(StreamingAlgorithm):
    """A trivial algorithm that stores every point (for harness testing)."""

    def __init__(self) -> None:
        self.points: list[np.ndarray] = []

    def process(self, point: np.ndarray) -> None:
        self.points.append(np.array(point))

    def finalize(self):
        return np.vstack(self.points)

    @property
    def working_memory_size(self) -> int:
        return len(self.points)


class TwoPassCounter(StreamingAlgorithm):
    """Counts points per pass (for multi-pass harness testing)."""

    n_passes = 2

    def __init__(self) -> None:
        self.counts = [0, 0]
        self._current = 0

    def start_pass(self, pass_index: int) -> None:
        self._current = pass_index

    def process(self, point: np.ndarray) -> None:
        self.counts[self._current] += 1

    def finalize(self):
        return tuple(self.counts)

    @property
    def working_memory_size(self) -> int:
        return 2


class TestStreamingRunner:
    def test_runs_and_reports(self, small_blobs):
        report = StreamingRunner().run(CollectEverything(), ArrayStream(small_blobs))
        assert report.n_points == small_blobs.shape[0]
        assert report.n_passes == 1
        assert report.peak_memory == small_blobs.shape[0]
        assert report.result.shape == small_blobs.shape
        assert report.throughput > 0

    def test_memory_limit(self, small_blobs):
        runner = StreamingRunner(memory_limit=10)
        with pytest.raises(MemoryBudgetExceededError):
            runner.run(CollectEverything(), ArrayStream(small_blobs))

    def test_multi_pass(self, small_blobs):
        report = StreamingRunner().run(TwoPassCounter(), ArrayStream(small_blobs))
        assert report.n_passes == 2
        assert report.result == (small_blobs.shape[0], small_blobs.shape[0])

    def test_pass_budget_mismatch(self, small_blobs):
        with pytest.raises(StreamingProtocolError):
            StreamingRunner().run(TwoPassCounter(), ArrayStream(small_blobs, max_passes=1))

    def test_invalid_check_interval(self):
        with pytest.raises(StreamingProtocolError):
            StreamingRunner(memory_check_interval=0)

    def test_sparse_memory_checks_still_catch_peak(self, small_blobs):
        runner = StreamingRunner(memory_check_interval=1000)
        report = runner.run(CollectEverything(), ArrayStream(small_blobs))
        assert report.peak_memory == small_blobs.shape[0]
