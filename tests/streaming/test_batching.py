"""Batch delivery semantics of streams and the batched runner path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import StreamingCoreset
from repro.exceptions import MemoryBudgetExceededError, StreamingProtocolError
from repro.streaming import (
    ArrayStream,
    GeneratorStream,
    StreamingAlgorithm,
    StreamingRunner,
)


class CollectBatches(StreamingAlgorithm):
    """Records every chunk it receives; stores nothing else."""

    def __init__(self) -> None:
        self.chunks: list[np.ndarray] = []
        self.points: list[np.ndarray] = []

    def process(self, point: np.ndarray) -> None:
        self.points.append(np.array(point))

    def process_batch(self, batch: np.ndarray) -> None:
        self.chunks.append(np.array(batch))
        super().process_batch(batch)

    def finalize(self):
        return np.vstack(self.points) if self.points else np.empty((0, 0))

    @property
    def working_memory_size(self) -> int:
        return len(self.points)


class TestArrayStreamBatches:
    def test_chunks_cover_the_stream_in_order(self, small_blobs):
        stream = ArrayStream(small_blobs)
        chunks = list(stream.iterate_batches(17))
        assert all(chunk.shape[0] <= 17 for chunk in chunks)
        assert np.array_equal(np.vstack(chunks), small_blobs)
        assert stream.points_delivered == small_blobs.shape[0]

    def test_batch_larger_than_stream_is_one_chunk(self, small_blobs):
        chunks = list(ArrayStream(small_blobs).iterate_batches(10**6))
        assert len(chunks) == 1
        assert chunks[0].shape == small_blobs.shape

    def test_consumes_pass_budget(self, small_blobs):
        stream = ArrayStream(small_blobs, max_passes=1)
        list(stream.iterate_batches(32))
        with pytest.raises(StreamingProtocolError):
            next(stream.iterate_batches(32))

    def test_invalid_batch_size_raises(self, small_blobs):
        with pytest.raises(StreamingProtocolError):
            next(ArrayStream(small_blobs).iterate_batches(0))

    def test_matches_per_point_iteration_order(self, small_blobs):
        batched = np.vstack(list(ArrayStream(small_blobs).iterate_batches(7)))
        per_point = np.vstack(list(ArrayStream(small_blobs).iterate_pass()))
        assert np.array_equal(batched, per_point)


class TestGeneratorStreamBatches:
    def test_native_batches_pass_through_unsplit(self):
        batches = [np.zeros((40, 2)), np.ones((3, 2)), np.full((90, 2), 2.0)]
        stream = GeneratorStream(iter(batches))
        chunks = list(stream.iterate_batches(8))
        assert [chunk.shape[0] for chunk in chunks] == [40, 3, 90]
        assert stream.points_delivered == 133

    def test_single_points_are_grouped(self):
        points = [np.array([float(i), 0.0]) for i in range(10)]
        chunks = list(GeneratorStream(iter(points)).iterate_batches(4))
        assert [chunk.shape[0] for chunk in chunks] == [4, 4, 2]
        assert np.array_equal(np.vstack(chunks), np.vstack(points))

    def test_mixed_items_preserve_order(self):
        rng = np.random.default_rng(3)
        singles = [rng.normal(size=2) for _ in range(5)]
        native = rng.normal(size=(6, 2))
        source = [singles[0], singles[1], native, singles[2], singles[3], singles[4]]
        chunks = list(GeneratorStream(iter(source)).iterate_batches(3))
        expected = np.vstack([singles[0], singles[1], native, *singles[2:]])
        assert np.array_equal(np.vstack(chunks), expected)
        # The pending singles were flushed before the native batch.
        assert [chunk.shape[0] for chunk in chunks] == [2, 6, 3]

    def test_single_use(self):
        stream = GeneratorStream(iter([np.zeros((4, 2))]))
        list(stream.iterate_batches(2))
        with pytest.raises(StreamingProtocolError):
            next(stream.iterate_batches(2))


class TestBatchedRunner:
    def test_reports_match_per_point_path(self, small_blobs):
        reference = StreamingRunner().run(CollectBatches(), ArrayStream(small_blobs))
        batched = StreamingRunner(batch_size=16).run(
            CollectBatches(), ArrayStream(small_blobs)
        )
        assert batched.n_points == reference.n_points
        assert batched.peak_memory == reference.peak_memory
        assert np.array_equal(batched.result, reference.result)

    def test_algorithm_receives_chunks(self, small_blobs):
        algorithm = CollectBatches()
        StreamingRunner(batch_size=16).run(algorithm, ArrayStream(small_blobs))
        assert all(chunk.shape[0] <= 16 for chunk in algorithm.chunks)
        assert sum(chunk.shape[0] for chunk in algorithm.chunks) == small_blobs.shape[0]

    def test_memory_limit_enforced_on_batched_path(self, small_blobs):
        runner = StreamingRunner(memory_limit=10, batch_size=16)
        with pytest.raises(MemoryBudgetExceededError):
            runner.run(CollectBatches(), ArrayStream(small_blobs))

    def test_invalid_batch_size_raises(self):
        with pytest.raises(StreamingProtocolError):
            StreamingRunner(batch_size=0)

    def test_batch_size_property(self):
        assert StreamingRunner().batch_size is None
        assert StreamingRunner(batch_size=64).batch_size == 64

    def test_default_process_batch_loops_over_process(self):
        algorithm = CollectBatches()
        algorithm.process_batch(np.arange(8.0).reshape(4, 2))
        assert len(algorithm.points) == 4


class TestReadOnlyCoresetViews:
    def test_centers_and_weights_are_read_only(self, small_blobs):
        coreset = StreamingCoreset(tau=10)
        coreset.process_batch(small_blobs)
        with pytest.raises(ValueError):
            coreset.centers[0] = 0.0
        with pytest.raises(ValueError):
            coreset.weights[0] = 0.0

    def test_read_only_during_buffering_too(self):
        coreset = StreamingCoreset(tau=10)
        coreset.process(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            coreset.centers[0] = 0.0
        with pytest.raises(ValueError):
            coreset.weights[0] = 0.0

    def test_coreset_snapshot_stays_mutable(self, small_blobs):
        coreset = StreamingCoreset(tau=10)
        coreset.process_batch(small_blobs)
        snapshot = coreset.coreset()
        snapshot.points[0] = 0.0  # stable copy, detached from the coreset
        assert not np.array_equal(snapshot.points[0], coreset.centers[0])
