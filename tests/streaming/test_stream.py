"""Tests for repro.streaming.stream."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import StreamingProtocolError
from repro.streaming import ArrayStream, GeneratorStream


class TestArrayStream:
    def test_iterates_all_points(self, small_blobs):
        stream = ArrayStream(small_blobs)
        points = list(stream.iterate_pass())
        assert len(points) == small_blobs.shape[0]
        np.testing.assert_allclose(points[0], small_blobs[0])

    def test_multiple_passes_same_order(self, small_blobs):
        stream = ArrayStream(small_blobs, shuffle=True, random_state=0)
        first = np.vstack(list(stream.iterate_pass()))
        second = np.vstack(list(stream.iterate_pass()))
        np.testing.assert_allclose(first, second)

    def test_shuffle_changes_order(self, small_blobs):
        stream = ArrayStream(small_blobs, shuffle=True, random_state=0)
        shuffled = np.vstack(list(stream.iterate_pass()))
        assert not np.allclose(shuffled, small_blobs)
        # ... but it is the same multiset of points.
        np.testing.assert_allclose(
            np.sort(shuffled, axis=0), np.sort(small_blobs, axis=0)
        )

    def test_pass_budget_enforced(self, small_blobs):
        stream = ArrayStream(small_blobs, max_passes=1)
        list(stream.iterate_pass())
        with pytest.raises(StreamingProtocolError):
            list(stream.iterate_pass())

    def test_counters(self, small_blobs):
        stream = ArrayStream(small_blobs)
        list(stream.iterate_pass())
        assert stream.passes_started == 1
        assert stream.points_delivered == small_blobs.shape[0]

    def test_len_and_dimension(self, small_blobs):
        stream = ArrayStream(small_blobs)
        assert len(stream) == small_blobs.shape[0]
        assert stream.dimension == small_blobs.shape[1]

    def test_iter_protocol(self, small_blobs):
        count = sum(1 for _ in ArrayStream(small_blobs))
        assert count == small_blobs.shape[0]


class TestGeneratorStream:
    def test_single_points(self):
        stream = GeneratorStream(iter([[1.0, 2.0], [3.0, 4.0]]))
        points = list(stream.iterate_pass())
        assert len(points) == 2

    def test_batches_unrolled(self, small_blobs):
        batches = (small_blobs[i : i + 16] for i in range(0, small_blobs.shape[0], 16))
        stream = GeneratorStream(batches)
        points = list(stream.iterate_pass())
        assert len(points) == small_blobs.shape[0]

    def test_single_pass_only(self):
        stream = GeneratorStream(iter([[1.0]]))
        list(stream.iterate_pass())
        with pytest.raises(StreamingProtocolError):
            list(stream.iterate_pass())

    def test_rejects_higher_dimensional_items(self):
        stream = GeneratorStream(iter([np.zeros((2, 2, 2))]))
        with pytest.raises(StreamingProtocolError):
            list(stream.iterate_pass())

    def test_length_hint_reported_via_len(self):
        stream = GeneratorStream(iter([[1.0], [2.0]]), length_hint=2)
        assert len(stream) == 2

    def test_no_length_hint_raises_type_error(self):
        stream = GeneratorStream(iter([[1.0]]))
        with pytest.raises(TypeError):
            len(stream)

    def test_negative_length_hint_rejected(self):
        with pytest.raises(StreamingProtocolError):
            GeneratorStream(iter([[1.0]]), length_hint=-1)

    def test_zero_length_hint_is_a_legitimate_empty_stream(self):
        stream = GeneratorStream(iter(()), length_hint=0)
        assert len(stream) == 0
        assert list(stream.iterate_pass()) == []
