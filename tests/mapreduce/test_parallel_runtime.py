"""Tests for thread-parallel execution of the simulated MapReduce runtime."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MapReduceKCenter, MapReduceKCenterOutliers
from repro.exceptions import InvalidParameterError
from repro.mapreduce import MapReduceRuntime


def splitter_mapper(_key, values):
    for value in values:
        yield (value % 4, value)


def summing_reducer(key, values):
    yield (key, sum(values))


class TestParallelRuntime:
    def test_invalid_max_workers(self):
        with pytest.raises(InvalidParameterError):
            MapReduceRuntime(max_workers=0)

    def test_same_output_as_sequential(self):
        pairs = [(None, list(range(40)))]
        sequential = MapReduceRuntime(max_workers=1).execute_round(
            pairs, splitter_mapper, summing_reducer
        )
        parallel = MapReduceRuntime(max_workers=4).execute_round(
            pairs, splitter_mapper, summing_reducer
        )
        assert sequential == parallel

    def test_stats_recorded_for_every_reducer(self):
        runtime = MapReduceRuntime(max_workers=3)
        runtime.execute_round([(None, list(range(20)))], splitter_mapper, summing_reducer)
        round_stats = runtime.stats.rounds[0]
        assert round_stats.n_reducers == 4
        assert len(round_stats.reducer_times) == 4

    def test_memory_limit_still_enforced(self):
        from repro.exceptions import MemoryBudgetExceededError

        runtime = MapReduceRuntime(max_workers=2, local_memory_limit=2)
        with pytest.raises(MemoryBudgetExceededError):
            runtime.execute_round([(None, list(range(20)))], splitter_mapper, summing_reducer)


class TestParallelSolvers:
    def test_mr_kcenter_parallel_matches_sequential(self, medium_blobs):
        kwargs = dict(ell=4, coreset_multiplier=2, random_state=42)
        sequential = MapReduceKCenter(6, max_workers=1, **kwargs).fit(medium_blobs)
        parallel = MapReduceKCenter(6, max_workers=4, **kwargs).fit(medium_blobs)
        assert sequential.radius == pytest.approx(parallel.radius)
        np.testing.assert_array_equal(sequential.center_indices, parallel.center_indices)

    def test_mr_outliers_parallel_matches_sequential(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        kwargs = dict(ell=4, coreset_multiplier=2, random_state=42)
        sequential = MapReduceKCenterOutliers(5, z, max_workers=1, **kwargs).fit(data)
        parallel = MapReduceKCenterOutliers(5, z, max_workers=4, **kwargs).fit(data)
        assert sequential.radius == pytest.approx(parallel.radius)
        np.testing.assert_array_equal(sequential.center_indices, parallel.center_indices)

    def test_randomized_variant_parallel_matches_sequential(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        kwargs = dict(
            ell=4, coreset_multiplier=2, randomized=True,
            include_log_term=False, random_state=7,
        )
        sequential = MapReduceKCenterOutliers(5, z, max_workers=1, **kwargs).fit(data)
        parallel = MapReduceKCenterOutliers(5, z, max_workers=3, **kwargs).fit(data)
        assert sequential.radius == pytest.approx(parallel.radius)
