"""Unit tests for the out-of-core map/shuffle substrate.

Covers the growable :class:`~repro.mapreduce.backends.PartitionBuffer`
(on every storage tier), the
:meth:`~repro.mapreduce.runtime.MapReduceRuntime.shuffle_stream` entry
point on all three backends x all three tiers, the coordinator-side
memory accounting that the streamed path is designed to bound, and the
no-orphans guarantee on mid-stream failures (no stranded ``/dev/shm``
segments, no stranded spill files).
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.exceptions import EmptyStreamError, InvalidParameterError
from repro.mapreduce import (
    ChunkRouter,
    MapReduceRuntime,
    PartitionBuffer,
    ProcessBackend,
)

BACKENDS = ("serial", "threads", "processes")
STORAGE_TIERS = ("memory", "shared", "disk")


def _shm_entries() -> set:
    """Names currently present in /dev/shm (POSIX shared-memory segments)."""
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def _forward_mapper(key, value):
    yield (key, value)


def _worker_cache_probe(key, values):
    """Reducer reporting how many segment attachments the worker still caches."""
    from repro.mapreduce.backends import _ATTACHED_SEGMENTS, _evict_released_segments

    del values
    _evict_released_segments()
    yield (key, len(_ATTACHED_SEGMENTS))


def _chunks(points, size):
    for start in range(0, points.shape[0], size):
        yield points[start : start + size]


class TestPartitionBuffer:
    @pytest.mark.parametrize("shared", [False, True])
    def test_append_and_finalize_roundtrip(self, shared):
        rows = np.arange(24.0).reshape(8, 3)
        buffer = PartitionBuffer(3, shared=shared, initial_capacity=2)
        buffer.append(rows[:5])
        buffer.append(rows[5:])
        sealed = buffer.finalize()
        try:
            np.testing.assert_array_equal(sealed.array, rows)
            assert not sealed.array.flags.writeable
        finally:
            sealed.close()

    @pytest.mark.parametrize("shared", [False, True])
    def test_growth_preserves_prefix(self, shared):
        buffer = PartitionBuffer(2, shared=shared, initial_capacity=1)
        expected = []
        for block in range(10):
            rows = np.full((3, 2), float(block))
            buffer.append(rows)
            expected.append(rows)
        sealed = buffer.finalize()
        try:
            np.testing.assert_array_equal(sealed.array, np.vstack(expected))
        finally:
            sealed.close()

    def test_one_dimensional_rows(self):
        buffer = PartitionBuffer(None, dtype=np.intp, initial_capacity=4)
        buffer.append(np.arange(10))
        sealed = buffer.finalize()
        np.testing.assert_array_equal(sealed.array, np.arange(10))

    def test_shared_buffer_pickles_by_name(self):
        buffer = PartitionBuffer(2, shared=True, initial_capacity=4)
        buffer.append(np.ones((3, 2)))
        sealed = buffer.finalize()
        try:
            attached = pickle.loads(pickle.dumps(sealed))
            np.testing.assert_array_equal(attached.array, np.ones((3, 2)))
        finally:
            sealed.close()

    def test_append_after_finalize_rejected(self):
        buffer = PartitionBuffer(2)
        buffer.append(np.zeros((1, 2)))
        buffer.finalize()
        with pytest.raises(InvalidParameterError):
            buffer.append(np.zeros((1, 2)))

    def test_wrong_shape_rejected(self):
        buffer = PartitionBuffer(3)
        with pytest.raises(InvalidParameterError):
            buffer.append(np.zeros((2, 2)))

    def test_close_without_finalize_releases_segment(self):
        buffer = PartitionBuffer(2, shared=True)
        buffer.append(np.zeros((2, 2)))
        buffer.close()
        buffer.close()  # idempotent


class TestShuffleStream:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_partitions_reconstruct_input(self, backend, medium_blobs):
        with MapReduceRuntime(backend=backend, max_workers=2) as runtime:
            router = ChunkRouter(5, "round_robin")
            result = runtime.shuffle_stream(_chunks(medium_blobs, 97), router)
            assert result.n_points == medium_blobs.shape[0]
            assert result.dimension == medium_blobs.shape[1]
            reconstructed = np.empty_like(medium_blobs)
            for part, indices in zip(result.parts, result.index_parts):
                reconstructed[indices.array] = part.array
            np.testing.assert_array_equal(reconstructed, medium_blobs)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_in_memory_split(self, backend, medium_blobs):
        from repro.mapreduce import split_contiguous

        parts = split_contiguous(medium_blobs.shape[0], 4)
        with MapReduceRuntime(backend=backend, max_workers=2) as runtime:
            router = ChunkRouter(4, "contiguous", n_total=medium_blobs.shape[0])
            result = runtime.shuffle_stream(_chunks(medium_blobs, 128), router)
            for part, indices, expected in zip(result.parts, result.index_parts, parts):
                np.testing.assert_array_equal(indices.array, expected)
                np.testing.assert_array_equal(part.array, medium_blobs[expected])

    def test_oversized_native_batches_resplit(self, medium_blobs):
        # A source may deliver one giant native batch; max_chunk_rows must
        # keep the coordinator's in-flight working set bounded anyway.
        with MapReduceRuntime() as runtime:
            router = ChunkRouter(4, "round_robin")
            result = runtime.shuffle_stream(
                iter([medium_blobs]), router, max_chunk_rows=64
            )
            assert result.n_points == medium_blobs.shape[0]
            assert result.chunk_peak == 64
            assert runtime.stats.coordinator_peak_items == 64

    def test_fit_stream_bounds_native_batches(self, medium_blobs):
        from repro.core import MapReduceKCenter
        from repro.streaming import ArrayStream, GeneratorStream

        solver = MapReduceKCenter(5, ell=4, coreset_multiplier=2, random_state=0)
        # One giant native batch vs properly chunked delivery: identical
        # results, and the coordinator is charged chunk_size either way.
        chunked = solver.fit_stream(ArrayStream(medium_blobs), chunk_size=100)
        giant = solver.fit_stream(
            GeneratorStream(iter([medium_blobs]), length_hint=medium_blobs.shape[0]),
            chunk_size=100,
        )
        np.testing.assert_array_equal(giant.center_indices, chunked.center_indices)
        assert giant.radius == chunked.radius
        assert (
            giant.stats.coordinator_peak_items
            == chunked.stats.coordinator_peak_items
            < medium_blobs.shape[0]
        )

    def test_coordinator_charged_one_chunk(self, medium_blobs):
        with MapReduceRuntime() as runtime:
            router = ChunkRouter(4, "round_robin")
            result = runtime.shuffle_stream(_chunks(medium_blobs, 50), router)
            assert result.chunk_peak == 50
            assert runtime.stats.coordinator_peak_items == 50
            # Far below the full materialisation the in-memory path pays.
            assert runtime.stats.coordinator_peak_items < medium_blobs.shape[0]

    def test_share_array_charges_full_matrix(self, medium_blobs):
        with MapReduceRuntime() as runtime:
            runtime.share_array(medium_blobs)
            assert runtime.stats.coordinator_peak_items == medium_blobs.shape[0]

    def test_empty_stream_rejected(self):
        with MapReduceRuntime() as runtime:
            with pytest.raises(EmptyStreamError, match="no points"):
                runtime.shuffle_stream(iter(()), ChunkRouter(2, "round_robin"))

    def test_underdelivery_rejected(self):
        with MapReduceRuntime() as runtime:
            router = ChunkRouter(2, "contiguous", n_total=100)
            with pytest.raises(InvalidParameterError, match="declared"):
                runtime.shuffle_stream(_chunks(np.zeros((60, 2)), 30), router)

    def test_dimension_mismatch_rejected(self):
        def chunks():
            yield np.zeros((5, 3))
            yield np.zeros((5, 2))

        with MapReduceRuntime() as runtime:
            with pytest.raises(InvalidParameterError, match="dimension"):
                runtime.shuffle_stream(chunks(), ChunkRouter(2, "round_robin"))

    def test_reused_process_pool_does_not_accumulate_attachments(self, medium_blobs):
        # Regression: a long-lived caller-owned process pool reused across
        # many fit_stream runs used to pin every run's partition segments
        # in the workers forever (the attachment cache had no eviction).
        from repro.core import MapReduceKCenter
        from repro.streaming import ArrayStream

        backend = ProcessBackend(max_workers=1)
        try:
            for seed in range(3):
                MapReduceKCenter(
                    4, ell=4, coreset_multiplier=2, random_state=seed, backend=backend
                ).fit_stream(ArrayStream(medium_blobs), chunk_size=128)
            with MapReduceRuntime(backend=backend) as runtime:
                output = runtime.execute_round(
                    [(0, [None])], _forward_mapper, _worker_cache_probe
                )
            # Every prior run's segments were unlinked by its runtime close;
            # nothing references them in the worker, so all are evicted.
            assert output[0][1] == 0
        finally:
            backend.close()

    def test_close_releases_shared_partitions(self, medium_blobs):
        runtime = MapReduceRuntime(backend="processes", max_workers=2)
        router = ChunkRouter(3, "round_robin")
        result = runtime.shuffle_stream(_chunks(medium_blobs, 100), router)
        segment_names = [part._meta[0] for part in result.parts]
        runtime.close()
        from multiprocessing import shared_memory

        for name in segment_names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


class TestStorageTiers:
    @pytest.mark.parametrize("storage", STORAGE_TIERS)
    def test_partitions_reconstruct_input_on_every_tier(
        self, storage, medium_blobs, tmp_path
    ):
        with MapReduceRuntime(spill_dir=str(tmp_path)) as runtime:
            router = ChunkRouter(5, "round_robin")
            result = runtime.shuffle_stream(
                _chunks(medium_blobs, 97), router, storage=storage
            )
            assert result.storage_tier == storage
            reconstructed = np.empty_like(medium_blobs)
            for part, indices in zip(result.parts, result.index_parts):
                reconstructed[indices.array] = part.array
            np.testing.assert_array_equal(reconstructed, medium_blobs)

    def test_disk_tier_spills_and_accounts_bytes(self, medium_blobs, tmp_path):
        with MapReduceRuntime(spill_dir=str(tmp_path)) as runtime:
            router = ChunkRouter(4, "round_robin")
            result = runtime.shuffle_stream(
                _chunks(medium_blobs, 128), router, storage="disk"
            )
            expected = medium_blobs.nbytes + medium_blobs.shape[0] * np.dtype(np.intp).itemsize
            assert result.spilled_bytes == expected
            assert runtime.stats.storage_tier == "disk"
            assert runtime.stats.spilled_bytes == expected
            # One .npy spill file per partition per column family.
            assert len(list(tmp_path.glob("*.npy"))) == 2 * 4
        # Runtime close deletes the spill files (the caller's dir survives).
        assert list(tmp_path.glob("*.npy")) == []
        assert tmp_path.exists()

    def test_memory_tiers_record_zero_spill(self, medium_blobs):
        with MapReduceRuntime() as runtime:
            result = runtime.shuffle_stream(
                _chunks(medium_blobs, 128), ChunkRouter(4, "round_robin"),
                storage="memory",
            )
            assert result.spilled_bytes == 0
            assert runtime.stats.storage_tier == "memory"
            assert runtime.stats.spilled_bytes == 0

    def test_disk_partitions_pickle_by_path(self, medium_blobs, tmp_path):
        with MapReduceRuntime(spill_dir=str(tmp_path)) as runtime:
            router = ChunkRouter(3, "round_robin")
            result = runtime.shuffle_stream(
                _chunks(medium_blobs, 100), router, storage="disk"
            )
            part = result.parts[0]
            payload = pickle.dumps(part)
            # The handle is a path, not the rows.
            assert len(payload) < part.array.nbytes
            attached = pickle.loads(payload)
            np.testing.assert_array_equal(attached.array, part.array)
            assert not attached.array.flags.writeable

    def test_auto_spills_above_memory_budget(self, medium_blobs, tmp_path):
        n = medium_blobs.shape[0]
        with MapReduceRuntime(
            spill_dir=str(tmp_path), memory_budget_bytes=medium_blobs.nbytes // 2
        ) as runtime:
            router = ChunkRouter(4, "contiguous", n_total=n)
            result = runtime.shuffle_stream(_chunks(medium_blobs, 100), router)
            assert result.storage_tier == "disk"
            assert result.spilled_bytes > 0

    def test_auto_without_budget_keeps_backend_pairing(self, medium_blobs):
        with MapReduceRuntime(backend="serial") as runtime:
            result = runtime.shuffle_stream(
                _chunks(medium_blobs, 100), ChunkRouter(4, "round_robin")
            )
            assert result.storage_tier == "memory"
        with MapReduceRuntime(backend="processes", max_workers=1) as runtime:
            result = runtime.shuffle_stream(
                _chunks(medium_blobs, 100), ChunkRouter(4, "round_robin")
            )
            assert result.storage_tier == "shared"

    def test_auto_spills_for_unsized_stream_under_budget(self, medium_blobs, tmp_path):
        # No length declared -> the footprint cannot be estimated -> spill.
        with MapReduceRuntime(
            spill_dir=str(tmp_path), memory_budget_bytes=10**9
        ) as runtime:
            result = runtime.shuffle_stream(
                _chunks(medium_blobs, 100), ChunkRouter(4, "round_robin")
            )
            assert result.storage_tier == "disk"

    def test_per_call_spill_dir_created_if_missing(self, medium_blobs, tmp_path):
        target = tmp_path / "nested" / "spills"
        with MapReduceRuntime() as runtime:
            result = runtime.shuffle_stream(
                _chunks(medium_blobs, 100), ChunkRouter(3, "round_robin"),
                storage="disk", spill_dir=str(target),
            )
            assert result.storage_tier == "disk"
            assert len(list(target.glob("*.npy"))) == 2 * 3
        assert list(target.glob("*.npy")) == []

    def test_unknown_tier_rejected(self):
        with pytest.raises(InvalidParameterError, match="storage tier"):
            MapReduceRuntime(storage="tape")
        with MapReduceRuntime() as runtime:
            with pytest.raises(InvalidParameterError, match="storage tier"):
                runtime.shuffle_stream(
                    _chunks(np.zeros((4, 2)), 2), ChunkRouter(2, "round_robin"),
                    storage="tape",
                )

    def test_unknown_tier_rejected_before_consuming_the_stream(self):
        # A typo'd tier must not cost a single-pass source its first chunk.
        chunks = iter([np.ones((4, 2))])
        with MapReduceRuntime() as runtime:
            with pytest.raises(InvalidParameterError, match="storage tier"):
                runtime.shuffle_stream(
                    chunks, ChunkRouter(2, "round_robin"), storage="dsik"
                )
        assert next(chunks).shape == (4, 2)


class TestShuffleEdgeCases:
    """Routing edge cases must behave identically on every storage tier."""

    @pytest.mark.parametrize("storage", STORAGE_TIERS)
    def test_final_chunk_smaller_than_batch(self, storage, medium_blobs, tmp_path):
        # 600 points in chunks of 97: the last chunk has 18 rows.
        assert medium_blobs.shape[0] % 97 != 0
        with MapReduceRuntime(spill_dir=str(tmp_path)) as runtime:
            result = runtime.shuffle_stream(
                _chunks(medium_blobs, 97), ChunkRouter(4, "contiguous",
                n_total=medium_blobs.shape[0]), storage=storage,
            )
            assert result.n_points == medium_blobs.shape[0]
            np.testing.assert_array_equal(
                np.concatenate([p.array for p in result.parts]), medium_blobs
            )

    @pytest.mark.parametrize("storage", STORAGE_TIERS)
    def test_chunk_larger_than_initial_capacity_grows(
        self, storage, medium_blobs, tmp_path
    ):
        # A tiny size hint forces every tier through its growth path on the
        # very first append.
        with MapReduceRuntime(spill_dir=str(tmp_path)) as runtime:
            result = runtime.shuffle_stream(
                _chunks(medium_blobs, 500), ChunkRouter(2, "round_robin"),
                storage=storage, partition_size_hint=4,
            )
            reconstructed = np.empty_like(medium_blobs)
            for part, indices in zip(result.parts, result.index_parts):
                reconstructed[indices.array] = part.array
            np.testing.assert_array_equal(reconstructed, medium_blobs)

    @pytest.mark.parametrize("storage", STORAGE_TIERS)
    def test_single_partition_ell_1(self, storage, medium_blobs, tmp_path):
        with MapReduceRuntime(spill_dir=str(tmp_path)) as runtime:
            result = runtime.shuffle_stream(
                _chunks(medium_blobs, 128), ChunkRouter(1, "round_robin"),
                storage=storage,
            )
            assert len(result.parts) == 1
            np.testing.assert_array_equal(result.parts[0].array, medium_blobs)
            np.testing.assert_array_equal(
                result.index_parts[0].array, np.arange(medium_blobs.shape[0])
            )

    @pytest.mark.parametrize("storage", STORAGE_TIERS)
    def test_dimension_mismatch_clear_error(self, storage, tmp_path):
        def chunks():
            yield np.zeros((5, 3))
            yield np.zeros((5, 2))

        with MapReduceRuntime(spill_dir=str(tmp_path)) as runtime:
            with pytest.raises(InvalidParameterError, match="dimension 2, expected 3"):
                runtime.shuffle_stream(
                    chunks(), ChunkRouter(2, "round_robin"), storage=storage
                )
        # The failure released every partial buffer: no spill files remain.
        assert list(tmp_path.glob("*.npy")) == []


class TestNoOrphansOnFailure:
    """Mid-stream failures must not strand segments or spill files."""

    @staticmethod
    def _failing_chunks(points, fail_after=2):
        def chunks():
            for index, start in enumerate(range(0, points.shape[0], 100)):
                if index == fail_after:
                    yield np.zeros((5, points.shape[1] + 1))  # dimension mismatch
                yield points[start : start + 100]

        return chunks()

    def test_shared_tier_failure_leaves_no_shm_orphans(self, medium_blobs):
        before = _shm_entries()
        with MapReduceRuntime() as runtime:
            with pytest.raises(InvalidParameterError):
                runtime.shuffle_stream(
                    self._failing_chunks(medium_blobs),
                    ChunkRouter(3, "round_robin"),
                    storage="shared",
                )
        assert _shm_entries() - before == set()

    def test_disk_tier_failure_leaves_no_spill_files(self, medium_blobs, tmp_path):
        with MapReduceRuntime(spill_dir=str(tmp_path)) as runtime:
            with pytest.raises(InvalidParameterError):
                runtime.shuffle_stream(
                    self._failing_chunks(medium_blobs),
                    ChunkRouter(3, "round_robin"),
                    storage="disk",
                )
            # Released immediately on failure, before the runtime closes.
            assert list(tmp_path.glob("*.npy")) == []

    def test_overdelivery_failure_leaves_no_orphans(self, medium_blobs, tmp_path):
        before = _shm_entries()
        router = ChunkRouter(2, "contiguous", n_total=medium_blobs.shape[0] - 50)
        with MapReduceRuntime(spill_dir=str(tmp_path)) as runtime:
            with pytest.raises(InvalidParameterError, match="more than the declared"):
                runtime.shuffle_stream(
                    _chunks(medium_blobs, 100), router, storage="shared"
                )
        assert _shm_entries() - before == set()

    def test_underdelivery_failure_leaves_no_spill_files(self, tmp_path):
        router = ChunkRouter(2, "contiguous", n_total=100)
        with MapReduceRuntime(spill_dir=str(tmp_path)) as runtime:
            with pytest.raises(InvalidParameterError, match="declared"):
                runtime.shuffle_stream(
                    _chunks(np.zeros((60, 2)), 30), router, storage="disk"
                )
            assert list(tmp_path.glob("*.npy")) == []

    def test_driver_fit_stream_failure_leaves_no_orphans(self, medium_blobs, tmp_path):
        from repro.core import MapReduceKCenter
        from repro.streaming import GeneratorStream

        before = _shm_entries()
        solver = MapReduceKCenter(
            4, ell=4, coreset_multiplier=2, partitioning="round_robin", random_state=0
        )
        for storage in ("shared", "disk"):
            with pytest.raises(InvalidParameterError):
                solver.fit_stream(
                    GeneratorStream(self._failing_chunks(medium_blobs)),
                    chunk_size=100,
                    storage=storage,
                    spill_dir=str(tmp_path),
                )
        assert _shm_entries() - before == set()
        assert list(tmp_path.glob("*.npy")) == []


class TestEmptyStreams:
    def test_zero_length_hint_fit_stream_raises_empty(self):
        from repro.core import MapReduceKCenter
        from repro.streaming import GeneratorStream

        solver = MapReduceKCenter(3, ell=2, coreset_multiplier=2, random_state=0)
        with pytest.raises(EmptyStreamError):
            solver.fit_stream(GeneratorStream(iter(()), length_hint=0))

    def test_unsized_empty_stream_fit_stream_raises_empty(self):
        from repro.core import MapReduceKCenterOutliers
        from repro.streaming import GeneratorStream

        solver = MapReduceKCenterOutliers(
            3, 2, ell=2, coreset_multiplier=2, partitioning="round_robin",
            random_state=0,
        )
        with pytest.raises(EmptyStreamError):
            solver.fit_stream(GeneratorStream(iter(())))
