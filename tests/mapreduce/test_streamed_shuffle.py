"""Unit tests for the out-of-core map/shuffle substrate.

Covers the growable :class:`~repro.mapreduce.backends.PartitionBuffer`
(heap and shared-memory flavours), the
:meth:`~repro.mapreduce.runtime.MapReduceRuntime.shuffle_stream` entry
point on all three backends, and the coordinator-side memory accounting
that the streamed path is designed to bound.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.mapreduce import (
    ChunkRouter,
    MapReduceRuntime,
    PartitionBuffer,
    ProcessBackend,
)

BACKENDS = ("serial", "threads", "processes")


def _forward_mapper(key, value):
    yield (key, value)


def _worker_cache_probe(key, values):
    """Reducer reporting how many segment attachments the worker still caches."""
    from repro.mapreduce.backends import _ATTACHED_SEGMENTS, _evict_released_segments

    del values
    _evict_released_segments()
    yield (key, len(_ATTACHED_SEGMENTS))


def _chunks(points, size):
    for start in range(0, points.shape[0], size):
        yield points[start : start + size]


class TestPartitionBuffer:
    @pytest.mark.parametrize("shared", [False, True])
    def test_append_and_finalize_roundtrip(self, shared):
        rows = np.arange(24.0).reshape(8, 3)
        buffer = PartitionBuffer(3, shared=shared, initial_capacity=2)
        buffer.append(rows[:5])
        buffer.append(rows[5:])
        sealed = buffer.finalize()
        try:
            np.testing.assert_array_equal(sealed.array, rows)
            assert not sealed.array.flags.writeable
        finally:
            sealed.close()

    @pytest.mark.parametrize("shared", [False, True])
    def test_growth_preserves_prefix(self, shared):
        buffer = PartitionBuffer(2, shared=shared, initial_capacity=1)
        expected = []
        for block in range(10):
            rows = np.full((3, 2), float(block))
            buffer.append(rows)
            expected.append(rows)
        sealed = buffer.finalize()
        try:
            np.testing.assert_array_equal(sealed.array, np.vstack(expected))
        finally:
            sealed.close()

    def test_one_dimensional_rows(self):
        buffer = PartitionBuffer(None, dtype=np.intp, initial_capacity=4)
        buffer.append(np.arange(10))
        sealed = buffer.finalize()
        np.testing.assert_array_equal(sealed.array, np.arange(10))

    def test_shared_buffer_pickles_by_name(self):
        buffer = PartitionBuffer(2, shared=True, initial_capacity=4)
        buffer.append(np.ones((3, 2)))
        sealed = buffer.finalize()
        try:
            attached = pickle.loads(pickle.dumps(sealed))
            np.testing.assert_array_equal(attached.array, np.ones((3, 2)))
        finally:
            sealed.close()

    def test_append_after_finalize_rejected(self):
        buffer = PartitionBuffer(2)
        buffer.append(np.zeros((1, 2)))
        buffer.finalize()
        with pytest.raises(InvalidParameterError):
            buffer.append(np.zeros((1, 2)))

    def test_wrong_shape_rejected(self):
        buffer = PartitionBuffer(3)
        with pytest.raises(InvalidParameterError):
            buffer.append(np.zeros((2, 2)))

    def test_close_without_finalize_releases_segment(self):
        buffer = PartitionBuffer(2, shared=True)
        buffer.append(np.zeros((2, 2)))
        buffer.close()
        buffer.close()  # idempotent


class TestShuffleStream:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_partitions_reconstruct_input(self, backend, medium_blobs):
        with MapReduceRuntime(backend=backend, max_workers=2) as runtime:
            router = ChunkRouter(5, "round_robin")
            result = runtime.shuffle_stream(_chunks(medium_blobs, 97), router)
            assert result.n_points == medium_blobs.shape[0]
            assert result.dimension == medium_blobs.shape[1]
            reconstructed = np.empty_like(medium_blobs)
            for part, indices in zip(result.parts, result.index_parts):
                reconstructed[indices.array] = part.array
            np.testing.assert_array_equal(reconstructed, medium_blobs)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_in_memory_split(self, backend, medium_blobs):
        from repro.mapreduce import split_contiguous

        parts = split_contiguous(medium_blobs.shape[0], 4)
        with MapReduceRuntime(backend=backend, max_workers=2) as runtime:
            router = ChunkRouter(4, "contiguous", n_total=medium_blobs.shape[0])
            result = runtime.shuffle_stream(_chunks(medium_blobs, 128), router)
            for part, indices, expected in zip(result.parts, result.index_parts, parts):
                np.testing.assert_array_equal(indices.array, expected)
                np.testing.assert_array_equal(part.array, medium_blobs[expected])

    def test_oversized_native_batches_resplit(self, medium_blobs):
        # A source may deliver one giant native batch; max_chunk_rows must
        # keep the coordinator's in-flight working set bounded anyway.
        with MapReduceRuntime() as runtime:
            router = ChunkRouter(4, "round_robin")
            result = runtime.shuffle_stream(
                iter([medium_blobs]), router, max_chunk_rows=64
            )
            assert result.n_points == medium_blobs.shape[0]
            assert result.chunk_peak == 64
            assert runtime.stats.coordinator_peak_items == 64

    def test_fit_stream_bounds_native_batches(self, medium_blobs):
        from repro.core import MapReduceKCenter
        from repro.streaming import ArrayStream, GeneratorStream

        solver = MapReduceKCenter(5, ell=4, coreset_multiplier=2, random_state=0)
        # One giant native batch vs properly chunked delivery: identical
        # results, and the coordinator is charged chunk_size either way.
        chunked = solver.fit_stream(ArrayStream(medium_blobs), chunk_size=100)
        giant = solver.fit_stream(
            GeneratorStream(iter([medium_blobs]), length_hint=medium_blobs.shape[0]),
            chunk_size=100,
        )
        np.testing.assert_array_equal(giant.center_indices, chunked.center_indices)
        assert giant.radius == chunked.radius
        assert (
            giant.stats.coordinator_peak_items
            == chunked.stats.coordinator_peak_items
            < medium_blobs.shape[0]
        )

    def test_coordinator_charged_one_chunk(self, medium_blobs):
        with MapReduceRuntime() as runtime:
            router = ChunkRouter(4, "round_robin")
            result = runtime.shuffle_stream(_chunks(medium_blobs, 50), router)
            assert result.chunk_peak == 50
            assert runtime.stats.coordinator_peak_items == 50
            # Far below the full materialisation the in-memory path pays.
            assert runtime.stats.coordinator_peak_items < medium_blobs.shape[0]

    def test_share_array_charges_full_matrix(self, medium_blobs):
        with MapReduceRuntime() as runtime:
            runtime.share_array(medium_blobs)
            assert runtime.stats.coordinator_peak_items == medium_blobs.shape[0]

    def test_empty_stream_rejected(self):
        with MapReduceRuntime() as runtime:
            with pytest.raises(InvalidParameterError, match="no points"):
                runtime.shuffle_stream(iter(()), ChunkRouter(2, "round_robin"))

    def test_underdelivery_rejected(self):
        with MapReduceRuntime() as runtime:
            router = ChunkRouter(2, "contiguous", n_total=100)
            with pytest.raises(InvalidParameterError, match="declared"):
                runtime.shuffle_stream(_chunks(np.zeros((60, 2)), 30), router)

    def test_dimension_mismatch_rejected(self):
        def chunks():
            yield np.zeros((5, 3))
            yield np.zeros((5, 2))

        with MapReduceRuntime() as runtime:
            with pytest.raises(InvalidParameterError, match="dimension"):
                runtime.shuffle_stream(chunks(), ChunkRouter(2, "round_robin"))

    def test_reused_process_pool_does_not_accumulate_attachments(self, medium_blobs):
        # Regression: a long-lived caller-owned process pool reused across
        # many fit_stream runs used to pin every run's partition segments
        # in the workers forever (the attachment cache had no eviction).
        from repro.core import MapReduceKCenter
        from repro.streaming import ArrayStream

        backend = ProcessBackend(max_workers=1)
        try:
            for seed in range(3):
                MapReduceKCenter(
                    4, ell=4, coreset_multiplier=2, random_state=seed, backend=backend
                ).fit_stream(ArrayStream(medium_blobs), chunk_size=128)
            with MapReduceRuntime(backend=backend) as runtime:
                output = runtime.execute_round(
                    [(0, [None])], _forward_mapper, _worker_cache_probe
                )
            # Every prior run's segments were unlinked by its runtime close;
            # nothing references them in the worker, so all are evicted.
            assert output[0][1] == 0
        finally:
            backend.close()

    def test_close_releases_shared_partitions(self, medium_blobs):
        runtime = MapReduceRuntime(backend="processes", max_workers=2)
        router = ChunkRouter(3, "round_robin")
        result = runtime.shuffle_stream(_chunks(medium_blobs, 100), router)
        segment_names = [part._meta[0] for part in result.parts]
        runtime.close()
        from multiprocessing import shared_memory

        for name in segment_names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
