"""Tests for repro.mapreduce.runtime (the simulated MapReduce engine)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, MemoryBudgetExceededError
from repro.mapreduce import MapReduceRuntime, default_sizeof


def word_count_mapper(_key, text):
    for word in text.split():
        yield (word, 1)


def word_count_reducer(word, counts):
    yield (word, sum(counts))


class TestDefaultSizeof:
    def test_numpy_rows(self):
        assert default_sizeof(np.zeros((7, 3))) == 7

    def test_scalar_array(self):
        assert default_sizeof(np.float64(3.0)) == 1

    def test_sized_object(self):
        assert default_sizeof([1, 2, 3]) == 3

    def test_unsized_object(self):
        assert default_sizeof(42) == 1


class TestExecuteRound:
    def test_word_count(self):
        runtime = MapReduceRuntime()
        output = runtime.execute_round(
            [(None, "a b a"), (None, "b b c")], word_count_mapper, word_count_reducer
        )
        assert dict(output) == {"a": 2, "b": 3, "c": 1}

    def test_round_stats_recorded(self):
        runtime = MapReduceRuntime()
        runtime.execute_round([(None, "a b a b")], word_count_mapper, word_count_reducer)
        stats = runtime.stats
        assert stats.n_rounds == 1
        round_stats = stats.rounds[0]
        assert round_stats.n_reducers == 2
        assert round_stats.max_local_memory == 2
        assert round_stats.total_memory == 4

    def test_memory_limit_enforced(self):
        runtime = MapReduceRuntime(local_memory_limit=1)
        with pytest.raises(MemoryBudgetExceededError):
            runtime.execute_round([(None, "a a a")], word_count_mapper, word_count_reducer)

    def test_invalid_memory_limit(self):
        with pytest.raises(InvalidParameterError):
            MapReduceRuntime(local_memory_limit=0)

    def test_deterministic_group_order(self):
        runtime = MapReduceRuntime()

        def mapper(_key, value):
            yield (value % 3, value)

        def reducer(key, values):
            yield (key, list(values))

        output = runtime.execute_round([(None, v) for v in range(9)], mapper, reducer)
        as_dict = dict(output)
        assert as_dict[0] == [0, 3, 6]
        assert as_dict[1] == [1, 4, 7]

    def test_empty_input(self):
        runtime = MapReduceRuntime()
        output = runtime.execute_round([], word_count_mapper, word_count_reducer)
        assert output == []
        assert runtime.stats.rounds[0].n_reducers == 0


class TestExecuteJob:
    def test_two_round_pipeline(self):
        runtime = MapReduceRuntime()

        def round1_mapper(_key, value):
            yield (value % 2, value)

        def round1_reducer(key, values):
            yield (0, sum(values))

        def round2_mapper(key, value):
            yield (key, value)

        def round2_reducer(_key, values):
            yield ("total", sum(values))

        output = runtime.execute_job(
            [(None, v) for v in range(10)],
            [(round1_mapper, round1_reducer), (round2_mapper, round2_reducer)],
        )
        assert output == [("total", 45)]
        assert runtime.stats.n_rounds == 2

    def test_job_stats_aggregation(self):
        runtime = MapReduceRuntime()

        def identity_mapper(key, value):
            yield (0, value)

        def identity_reducer(key, values):
            for value in values:
                yield (key, value)

        runtime.execute_job(
            [(None, np.zeros((10, 2)))],
            [(identity_mapper, identity_reducer), (identity_mapper, identity_reducer)],
        )
        assert runtime.stats.peak_local_memory == 10
        assert runtime.stats.aggregate_memory == 10
        assert runtime.stats.parallel_time >= 0
        assert runtime.stats.sequential_time >= runtime.stats.parallel_time - 1e-9

    def test_reset(self):
        runtime = MapReduceRuntime()
        runtime.execute_round([(None, "x")], word_count_mapper, word_count_reducer)
        runtime.reset()
        assert runtime.stats.n_rounds == 0
