"""Tests for repro.mapreduce.partitioner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.mapreduce import (
    ChunkRouter,
    draw_partition_seeds,
    hashed_assignment,
    split_adversarial,
    split_contiguous,
    split_random,
    split_round_robin,
    validate_partition,
)


class TestSplitContiguous:
    def test_covers_all_indices(self):
        parts = split_contiguous(100, 7)
        validate_partition(parts, 100)

    def test_balanced_sizes(self):
        parts = split_contiguous(100, 8)
        sizes = [p.size for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_more_parts_than_points_raises(self):
        with pytest.raises(InvalidParameterError):
            split_contiguous(3, 5)

    def test_blocks_are_contiguous(self):
        parts = split_contiguous(10, 2)
        np.testing.assert_array_equal(parts[0], np.arange(5))
        np.testing.assert_array_equal(parts[1], np.arange(5, 10))


class TestSplitRoundRobin:
    def test_covers_all_indices(self):
        parts = split_round_robin(53, 6)
        validate_partition(parts, 53)

    def test_interleaving(self):
        parts = split_round_robin(9, 3)
        np.testing.assert_array_equal(parts[0], [0, 3, 6])
        np.testing.assert_array_equal(parts[2], [2, 5, 8])


class TestSplitRandom:
    def test_covers_all_indices(self):
        parts = split_random(200, 5, random_state=0)
        validate_partition(parts, 200)

    def test_roughly_balanced(self):
        parts = split_random(4000, 4, random_state=0)
        sizes = np.array([p.size for p in parts])
        assert sizes.min() > 800  # expected 1000 each; generous tolerance

    def test_reproducible(self):
        a = split_random(50, 3, random_state=7)
        b = split_random(50, 3, random_state=7)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)


class TestSplitAdversarial:
    def test_adversarial_indices_in_target_partition(self):
        adversarial = [3, 8, 15]
        parts = split_adversarial(30, 4, adversarial, target_partition=2)
        validate_partition(parts, 30)
        assert set(adversarial).issubset(set(parts[2].tolist()))

    def test_sizes_stay_balanced(self):
        parts = split_adversarial(100, 4, list(range(10)), target_partition=0)
        sizes = [p.size for p in parts]
        assert max(sizes) - min(sizes) <= 2

    def test_invalid_target_partition(self):
        with pytest.raises(InvalidParameterError):
            split_adversarial(10, 2, [0], target_partition=5)

    def test_out_of_range_indices(self):
        with pytest.raises(InvalidParameterError):
            split_adversarial(10, 2, [100])

    def test_with_shuffle(self):
        parts = split_adversarial(40, 4, [0, 1], random_state=3)
        validate_partition(parts, 40)


class TestHashedAssignment:
    def test_chunking_independent(self):
        seed = 987654321
        full = hashed_assignment(np.arange(500), 6, seed)
        chunked = np.concatenate(
            [hashed_assignment(np.arange(lo, hi), 6, seed)
             for lo, hi in ((0, 123), (123, 200), (200, 500))]
        )
        np.testing.assert_array_equal(full, chunked)

    def test_roughly_uniform(self):
        assignment = hashed_assignment(np.arange(60_000), 5, 42)
        counts = np.bincount(assignment, minlength=5)
        assert counts.min() > 10_000  # expected 12000 each

    def test_different_seeds_differ(self):
        a = hashed_assignment(np.arange(100), 4, 1)
        b = hashed_assignment(np.arange(100), 4, 2)
        assert not np.array_equal(a, b)


class TestDrawPartitionSeeds:
    def test_pinned_seed_stream(self):
        # Pins the exact variates so the two MapReduce drivers (which both
        # draw through this helper) can never drift apart again.
        seeds = draw_partition_seeds(np.random.default_rng(123), 5)
        assert seeds == (33158374, 1465339467, 1273345680, 115579757, 1952249162)

    def test_one_variate_per_partition(self):
        rng_a = np.random.default_rng(9)
        rng_b = np.random.default_rng(9)
        seeds = draw_partition_seeds(rng_a, 3)
        expected = tuple(int(rng_b.integers(2**31 - 1)) for _ in range(3))
        assert seeds == expected

    def test_invalid_count(self):
        with pytest.raises(InvalidParameterError):
            draw_partition_seeds(np.random.default_rng(0), 0)


class TestChunkRouter:
    @pytest.mark.parametrize("chunking", [(500,), (1, 499), (100, 250, 150), (7,) * 71 + (3,)])
    def test_matches_contiguous_split(self, chunking):
        parts = split_contiguous(500, 7)
        router = ChunkRouter(7, "contiguous", n_total=500)
        assignment = np.concatenate([router.route(m) for m in chunking])
        for i, part in enumerate(parts):
            np.testing.assert_array_equal(part, np.flatnonzero(assignment == i))

    def test_matches_round_robin_split(self):
        parts = split_round_robin(101, 4)
        router = ChunkRouter(4, "round_robin")
        assignment = np.concatenate([router.route(m) for m in (32, 32, 32, 5)])
        for i, part in enumerate(parts):
            np.testing.assert_array_equal(part, np.flatnonzero(assignment == i))

    def test_matches_random_split_from_same_rng(self):
        rng_a = np.random.default_rng(55)
        parts = split_random(300, 5, random_state=rng_a)
        rng_b = np.random.default_rng(55)
        router = ChunkRouter(5, "random", seed=int(rng_b.integers(2**63 - 1)))
        assignment = np.concatenate([router.route(m) for m in (64, 64, 64, 64, 44)])
        for i, part in enumerate(parts):
            np.testing.assert_array_equal(part, np.flatnonzero(assignment == i))

    def test_contiguous_requires_length(self):
        with pytest.raises(InvalidParameterError, match="length"):
            ChunkRouter(4, "contiguous")

    def test_random_requires_seed(self):
        with pytest.raises(InvalidParameterError, match="seed"):
            ChunkRouter(4, "random")

    def test_adversarial_rejected(self):
        with pytest.raises(InvalidParameterError):
            ChunkRouter(4, "adversarial")

    def test_overdelivery_rejected(self):
        router = ChunkRouter(2, "contiguous", n_total=10)
        router.route(10)
        with pytest.raises(InvalidParameterError, match="more than"):
            router.route(1)


class TestValidatePartition:
    def test_rejects_missing_index(self):
        with pytest.raises(InvalidParameterError):
            validate_partition([np.array([0, 1]), np.array([3])], 4)

    def test_rejects_duplicates(self):
        with pytest.raises(InvalidParameterError):
            validate_partition([np.array([0, 1]), np.array([1, 2])], 3)
