"""Tests for repro.mapreduce.partitioner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.mapreduce import (
    split_adversarial,
    split_contiguous,
    split_random,
    split_round_robin,
    validate_partition,
)


class TestSplitContiguous:
    def test_covers_all_indices(self):
        parts = split_contiguous(100, 7)
        validate_partition(parts, 100)

    def test_balanced_sizes(self):
        parts = split_contiguous(100, 8)
        sizes = [p.size for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_more_parts_than_points_raises(self):
        with pytest.raises(InvalidParameterError):
            split_contiguous(3, 5)

    def test_blocks_are_contiguous(self):
        parts = split_contiguous(10, 2)
        np.testing.assert_array_equal(parts[0], np.arange(5))
        np.testing.assert_array_equal(parts[1], np.arange(5, 10))


class TestSplitRoundRobin:
    def test_covers_all_indices(self):
        parts = split_round_robin(53, 6)
        validate_partition(parts, 53)

    def test_interleaving(self):
        parts = split_round_robin(9, 3)
        np.testing.assert_array_equal(parts[0], [0, 3, 6])
        np.testing.assert_array_equal(parts[2], [2, 5, 8])


class TestSplitRandom:
    def test_covers_all_indices(self):
        parts = split_random(200, 5, random_state=0)
        validate_partition(parts, 200)

    def test_roughly_balanced(self):
        parts = split_random(4000, 4, random_state=0)
        sizes = np.array([p.size for p in parts])
        assert sizes.min() > 800  # expected 1000 each; generous tolerance

    def test_reproducible(self):
        a = split_random(50, 3, random_state=7)
        b = split_random(50, 3, random_state=7)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)


class TestSplitAdversarial:
    def test_adversarial_indices_in_target_partition(self):
        adversarial = [3, 8, 15]
        parts = split_adversarial(30, 4, adversarial, target_partition=2)
        validate_partition(parts, 30)
        assert set(adversarial).issubset(set(parts[2].tolist()))

    def test_sizes_stay_balanced(self):
        parts = split_adversarial(100, 4, list(range(10)), target_partition=0)
        sizes = [p.size for p in parts]
        assert max(sizes) - min(sizes) <= 2

    def test_invalid_target_partition(self):
        with pytest.raises(InvalidParameterError):
            split_adversarial(10, 2, [0], target_partition=5)

    def test_out_of_range_indices(self):
        with pytest.raises(InvalidParameterError):
            split_adversarial(10, 2, [100])

    def test_with_shuffle(self):
        parts = split_adversarial(40, 4, [0, 1], random_state=3)
        validate_partition(parts, 40)


class TestValidatePartition:
    def test_rejects_missing_index(self):
        with pytest.raises(InvalidParameterError):
            validate_partition([np.array([0, 1]), np.array([3])], 4)

    def test_rejects_duplicates(self):
        with pytest.raises(InvalidParameterError):
            validate_partition([np.array([0, 1]), np.array([1, 2])], 3)
