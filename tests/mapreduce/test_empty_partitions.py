"""Unified empty-partition behavior of the two MapReduce drivers.

Decision under test (see the ``_partition`` docstrings): when a split
leaves a partition empty — possible under random partitioning on tiny
inputs, or in principle under any custom split — both drivers *drop* the
empty part (the round-1 mappers skip it). Dropping only lowers the
effective parallelism; re-drawing would silently change the random
partitioning the randomized algorithm's analysis (Lemma 7) relies on,
and raising would make small seeded runs flaky.

Before this suite existed the two solvers demonstrably diverged:
``MapReduceKCenter``'s mapper forwarded empty index arrays (crashing in
``build_coreset``) while ``MapReduceKCenterOutliers`` silently skipped
them.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.mr_kcenter as mr_kcenter_module
import repro.core.mr_outliers as mr_outliers_module
from repro.core import MapReduceKCenter, MapReduceKCenterOutliers
from repro.exceptions import InvalidParameterError


def _split_with_empty_part(n, ell, *, random_state=None):
    """A partition of range(n) whose last part is empty (stress stand-in)."""
    parts = [np.array(p, dtype=np.intp) for p in np.array_split(np.arange(n), ell - 1)]
    parts.append(np.empty(0, dtype=np.intp))
    return parts


class TestEmptyPartitionsDropped:
    def test_kcenter_drops_empty_partition(self, medium_blobs, monkeypatch):
        monkeypatch.setattr(mr_kcenter_module, "split_random", _split_with_empty_part)
        result = MapReduceKCenter(
            5, ell=4, coreset_multiplier=2, partitioning="random", random_state=0
        ).fit(medium_blobs)
        assert result.k == 5
        assert result.radius > 0
        # Only the three non-empty parts became reducers.
        assert result.ell == 3
        assert result.stats.rounds[0].n_reducers == 3

    def test_outliers_drops_empty_partition(self, blobs_with_outliers, monkeypatch):
        monkeypatch.setattr(mr_outliers_module, "split_random", _split_with_empty_part)
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        result = MapReduceKCenterOutliers(
            5, z, ell=4, coreset_multiplier=2, partitioning="random", random_state=0
        ).fit(data)
        assert result.k <= 5
        assert result.ell == 3
        assert result.stats.rounds[0].n_reducers == 3

    def test_both_solvers_report_same_reducer_count(self, blobs_with_outliers, monkeypatch):
        monkeypatch.setattr(mr_kcenter_module, "split_random", _split_with_empty_part)
        monkeypatch.setattr(mr_outliers_module, "split_random", _split_with_empty_part)
        data = blobs_with_outliers.points
        kcenter = MapReduceKCenter(
            5, ell=6, coreset_multiplier=2, partitioning="random", random_state=1
        ).fit(data)
        outliers = MapReduceKCenterOutliers(
            5, blobs_with_outliers.n_outliers, ell=6, coreset_multiplier=2,
            partitioning="random", random_state=1,
        ).fit(data)
        assert kcenter.ell == outliers.ell == 5
        assert (
            kcenter.stats.rounds[0].n_reducers
            == outliers.stats.rounds[0].n_reducers
            == 5
        )


class TestEllLargerThanN:
    def test_kcenter_caps_ell_at_n(self):
        points = np.arange(6, dtype=float).reshape(-1, 1)
        result = MapReduceKCenter(2, ell=50, coreset_multiplier=1, random_state=0).fit(points)
        assert result.ell <= 6

    def test_outliers_caps_ell_at_n(self):
        points = np.arange(8, dtype=float).reshape(-1, 1)
        result = MapReduceKCenterOutliers(
            2, 1, ell=50, coreset_multiplier=1, random_state=0
        ).fit(points)
        assert result.ell <= 8

    def test_contiguous_split_still_rejects_ell_above_n(self):
        from repro.mapreduce import split_contiguous

        with pytest.raises(InvalidParameterError):
            split_contiguous(3, 5)
