"""Cross-backend equivalence suite for the executor backends.

The contract under test: every backend (serial, threads, processes)
produces byte-identical round outputs, identical memory accounting, and —
through the MapReduce k-center drivers — identical centers and radii.
Only the recorded timings may differ. This is what lets the parallel
backends inherit the paper-faithfulness arguments of the serial
reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MapReduceKCenter, MapReduceKCenterOutliers
from repro.exceptions import InvalidParameterError, MemoryBudgetExceededError
from repro.mapreduce import (
    MapReduceRuntime,
    ProcessBackend,
    SerialBackend,
    SharedArray,
    ThreadBackend,
    available_backends,
    default_sizeof,
    resolve_backend,
)
from repro.metricspace.points import WeightedPoints

BACKENDS = ("serial", "threads", "processes")


# Module-level so the rounds are picklable for the process backend.
def modulo_mapper(_key, values):
    for value in values:
        yield (value % 4, value)


def summing_reducer(key, values):
    yield (key, sum(values))


def regroup_mapper(_key, value):
    yield (0, value)


def shared_lookup_reducer(key, values, points=None):
    # Exercises SharedArray access from inside a reducer.
    yield (key, float(points.array[np.asarray(values)].sum()))


class TestResolveBackend:
    def test_available_backends(self):
        assert available_backends() == ("distributed", "processes", "serial", "threads")

    def test_default_is_serial(self):
        assert resolve_backend(None).name == "serial"
        assert resolve_backend(None, max_workers=1).name == "serial"

    def test_default_with_workers_is_threads(self):
        backend = resolve_backend(None, max_workers=3)
        assert backend.name == "threads"
        assert backend.max_workers == 3

    def test_names_resolve(self):
        for name in BACKENDS:
            backend = resolve_backend(name, max_workers=2)
            assert backend.name == name
            backend.close()

    def test_instance_passthrough(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown backend"):
            resolve_backend("spark")

    def test_non_backend_object_rejected(self):
        with pytest.raises(InvalidParameterError):
            resolve_backend(42)

    def test_invalid_workers_rejected(self):
        for name in ("threads", "processes", "serial"):
            with pytest.raises(InvalidParameterError):
                resolve_backend(name, max_workers=0)


class TestRoundEquivalence:
    @pytest.fixture()
    def pairs(self):
        return [(None, list(range(40)))]

    def test_outputs_identical_across_backends(self, pairs):
        reference = None
        for name in BACKENDS:
            with MapReduceRuntime(backend=name, max_workers=2) as runtime:
                output = runtime.execute_round(pairs, modulo_mapper, summing_reducer)
            if reference is None:
                reference = output
            else:
                assert output == reference

    def test_stats_identical_modulo_timings(self, pairs):
        recorded = {}
        for name in BACKENDS:
            with MapReduceRuntime(backend=name, max_workers=2) as runtime:
                runtime.execute_round(pairs, modulo_mapper, summing_reducer)
                stats = runtime.stats.rounds[0]
                recorded[name] = (
                    stats.n_reducers,
                    dict(stats.reducer_input_sizes),
                    sorted(stats.reducer_times),
                )
        assert recorded["threads"] == recorded["serial"]
        assert recorded["processes"] == recorded["serial"]

    def test_memory_limit_enforced_on_every_backend(self, pairs):
        for name in BACKENDS:
            with MapReduceRuntime(backend=name, local_memory_limit=2) as runtime:
                with pytest.raises(MemoryBudgetExceededError):
                    runtime.execute_round(pairs, modulo_mapper, summing_reducer)

    def test_shared_array_reducer(self):
        from functools import partial

        data = np.arange(20.0).reshape(10, 2)
        pairs = [(None, list(range(10)))]
        reference = None
        for name in BACKENDS:
            with MapReduceRuntime(backend=name, max_workers=2) as runtime:
                shared = runtime.share_array(data)
                reducer = partial(shared_lookup_reducer, points=shared)
                output = runtime.execute_round(pairs, modulo_mapper, reducer)
            if reference is None:
                reference = output
            else:
                assert output == reference


class TestSharedArray:
    def test_wrap_is_zero_copy(self):
        data = np.arange(6.0).reshape(3, 2)
        shared = SharedArray.wrap(data)
        assert shared.array is data
        assert shared.shape == (3, 2)
        assert len(shared) == 3
        np.testing.assert_array_equal(shared[1], data[1])

    def test_wrap_refuses_pickling(self):
        import pickle

        with pytest.raises(TypeError, match="cannot be sent"):
            pickle.dumps(SharedArray.wrap(np.zeros(3)))

    def test_shared_memory_roundtrip(self):
        import pickle

        data = np.arange(12.0).reshape(4, 3)
        shared = SharedArray.copy_to_shared_memory(data)
        try:
            np.testing.assert_array_equal(shared.array, data)
            assert not shared.array.flags.writeable
            attached = pickle.loads(pickle.dumps(shared))
            np.testing.assert_array_equal(attached.array, data)
        finally:
            shared.close()

    def test_close_is_idempotent(self):
        shared = SharedArray.copy_to_shared_memory(np.zeros((2, 2)))
        shared.close()
        shared.close()


class TestBackendLifecycle:
    def test_runtime_close_idempotent(self):
        runtime = MapReduceRuntime(backend="processes", max_workers=2)
        runtime.execute_round([(None, [1, 2, 3])], modulo_mapper, summing_reducer)
        runtime.close()
        runtime.close()

    def test_process_backend_releases_shared_segments(self):
        backend = ProcessBackend(max_workers=2)
        shared = backend.share_array(np.ones((4, 2)))
        backend.close()
        assert backend._shared == []
        # The segment is gone; closing the handle again must not raise.
        shared.close()

    def test_thread_backend_pool_reuse(self):
        backend = ThreadBackend(max_workers=2)
        with MapReduceRuntime(backend=backend) as runtime:
            first = runtime.execute_round([(None, list(range(8)))], modulo_mapper, summing_reducer)
            second = runtime.execute_round(first, regroup_mapper, summing_reducer)
        assert second == [(0, sum(range(8)))]
        backend.close()

    def test_caller_owned_backend_survives_runtime_close(self):
        backend = ProcessBackend(max_workers=2)
        try:
            with MapReduceRuntime(backend=backend) as runtime:
                runtime.execute_round([(None, [1, 2, 3])], modulo_mapper, summing_reducer)
            # The pool must still be usable after the runtime closed.
            assert backend._pool is not None
            with MapReduceRuntime(backend=backend) as runtime:
                output = runtime.execute_round([(None, [4, 5, 6])], modulo_mapper, summing_reducer)
            assert dict(output) == {0: 4, 1: 5, 2: 6}
        finally:
            backend.close()
        assert backend._pool is None

    def test_runtime_releases_arrays_shared_on_caller_owned_backend(self):
        backend = ProcessBackend(max_workers=2)
        try:
            mine = backend.share_array(np.ones((3, 2)))
            with MapReduceRuntime(backend=backend) as runtime:
                runtime.share_array(np.zeros((5, 2)))
            # The runtime released its own array but not the caller's.
            np.testing.assert_array_equal(mine.array, np.ones((3, 2)))
        finally:
            backend.close()


class TestSolverEquivalence:
    """MapReduce drivers must give identical solutions on every backend."""

    def test_mr_kcenter(self, medium_blobs):
        kwargs = dict(ell=4, coreset_multiplier=2, random_state=42)
        results = {
            name: MapReduceKCenter(6, backend=name, max_workers=2, **kwargs).fit(medium_blobs)
            for name in BACKENDS
        }
        reference = results["serial"]
        for result in results.values():
            assert result.radius == pytest.approx(reference.radius)
            np.testing.assert_array_equal(result.center_indices, reference.center_indices)
            assert result.coreset_size == reference.coreset_size
            assert result.stats.peak_local_memory == reference.stats.peak_local_memory
            assert result.stats.aggregate_memory == reference.stats.aggregate_memory

    def test_mr_outliers_deterministic(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        kwargs = dict(ell=4, coreset_multiplier=2, random_state=42)
        results = {
            name: MapReduceKCenterOutliers(5, z, backend=name, max_workers=2, **kwargs).fit(data)
            for name in BACKENDS
        }
        reference = results["serial"]
        for result in results.values():
            assert result.radius == pytest.approx(reference.radius)
            np.testing.assert_array_equal(result.center_indices, reference.center_indices)
            assert result.search_probes == reference.search_probes
            assert result.stats.peak_local_memory == reference.stats.peak_local_memory

    def test_mr_outliers_randomized(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        kwargs = dict(
            ell=4, coreset_multiplier=2, randomized=True,
            include_log_term=False, random_state=7,
        )
        results = {
            name: MapReduceKCenterOutliers(5, z, backend=name, max_workers=2, **kwargs).fit(data)
            for name in BACKENDS
        }
        reference = results["serial"]
        for result in results.values():
            assert result.radius == pytest.approx(reference.radius)
            assert result.coreset_size == reference.coreset_size

    def test_processes_with_memory_limit(self, medium_blobs):
        solver = MapReduceKCenter(
            6, ell=4, coreset_multiplier=2, random_state=42,
            backend="processes", max_workers=2, local_memory_limit=10,
        )
        with pytest.raises(MemoryBudgetExceededError):
            solver.fit(medium_blobs)


class TestDefaultSizeofEdgeCases:
    def test_zero_d_array(self):
        assert default_sizeof(np.array(3.5)) == 1

    def test_zero_row_array(self):
        assert default_sizeof(np.empty((0, 4))) == 0

    def test_generator_counts_as_one(self):
        # Generators have no len(); they must not be consumed by accounting.
        gen = (i for i in range(100))
        assert default_sizeof(gen) == 1
        assert next(gen) == 0  # untouched

    def test_weighted_points_payload(self):
        payload = WeightedPoints(
            points=np.zeros((7, 2)), weights=np.ones(7), origin_indices=np.arange(7)
        )
        assert default_sizeof(payload) == 7

    def test_string_counts_characters(self):
        assert default_sizeof("abcd") == 4
