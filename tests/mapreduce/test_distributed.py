"""Unit and failure-injection tests for the distributed executor backend.

Covers the wire protocol (framing, truncation), the worker daemon
(in-process and as a real ``python -m repro.mapreduce.worker``
subprocess), backend resolution, the coordinator's retry-onto-survivors
logic for every failure mode the ISSUE names — worker death mid-job,
unreachable address at connect, truncated frame mid-result — and the
no-orphan guarantees: sockets closed and pushed spill files removed on
both success and error paths. The bit-identical equivalence matrix
lives in ``tests/properties/test_property_distributed_equivalence.py``.
"""

from __future__ import annotations

import os
import pickle
import socket
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.exceptions import (
    InvalidParameterError,
    WorkerTaskError,
    WorkerUnavailableError,
)
from repro.mapreduce import (
    DistributedBackend,
    LocalCluster,
    MapReduceRuntime,
    WorkerServer,
    available_backends,
    parse_worker_address,
    resolve_backend,
)
from repro.mapreduce.worker import (
    OP_HELLO,
    OP_OK,
    ProtocolError,
    recv_frame,
    send_frame,
)


# Module-level so every payload is picklable for the wire.
def summing_reducer(key, values):
    yield (key, sum(values))


def failing_reducer(key, values):
    raise RuntimeError(f"deterministic failure for key {key}")


def shared_lookup_reducer(key, values, points=None):
    yield (key, float(points.array[np.asarray(values)].sum()))


def modulo_mapper(_key, values):
    for value in values:
        yield (value % 3, value)


def _dead_address() -> str:
    """An address that refuses connections (a port that was bound, then freed)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"127.0.0.1:{port}"


class TestParseWorkerAddress:
    def test_host_port_string(self):
        assert parse_worker_address("example.org:7071") == ("example.org", 7071)

    def test_tuple_passthrough(self):
        assert parse_worker_address(("10.0.0.1", "8000")) == ("10.0.0.1", 8000)

    @pytest.mark.parametrize("bad", ["localhost", ":7071", "host:", "host:abc", "host:0"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(InvalidParameterError):
            parse_worker_address(bad)


class TestWireProtocol:
    def test_frame_roundtrip(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, OP_HELLO, b"payload")
            opcode, payload = recv_frame(right)
            assert opcode == OP_HELLO
            assert payload == b"payload"
        finally:
            left.close()
            right.close()

    def test_empty_payload_roundtrip(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, OP_OK)
            assert recv_frame(right) == (OP_OK, b"")
        finally:
            left.close()
            right.close()

    def test_truncated_frame_raises_protocol_error(self):
        left, right = socket.socketpair()
        try:
            # A header announcing 100 bytes, followed by 4 and EOF.
            import struct

            left.sendall(struct.pack("!cQ", OP_OK, 100) + b"dead")
            left.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_frame(right)
        finally:
            right.close()

    def test_protocol_error_is_a_connection_error(self):
        # The coordinator funnels transport failures through OSError.
        assert issubclass(ProtocolError, ConnectionError)


class TestWorkerServer:
    def test_hello_reports_metadata(self):
        with WorkerServer() as server:
            server.serve_in_background()
            with socket.create_connection((server.host, server.port)) as sock:
                send_frame(sock, OP_HELLO)
                opcode, payload = recv_frame(sock)
                assert opcode == OP_OK
                info = pickle.loads(payload)
                assert info["pid"] == os.getpid()
                assert info["address"] == server.address

    def test_shutdown_closes_listener(self):
        server = WorkerServer()
        server.serve_in_background()
        address = (server.host, server.port)
        server.shutdown()
        with pytest.raises(OSError):
            socket.create_connection(address, timeout=0.5)

    def test_shutdown_removes_owned_spill_dir(self):
        server = WorkerServer()
        spill_dir = server.spill_dir
        assert os.path.isdir(spill_dir)
        server.shutdown()
        assert not os.path.exists(spill_dir)

    def test_invalid_fail_mode_rejected(self):
        with pytest.raises(InvalidParameterError):
            WorkerServer(fail_mode="explode")


class TestWorkerDaemonSubprocess:
    def test_module_entry_point_serves_tasks(self, tmp_path):
        import repro

        # Put the *same* repro package on the daemon's path, wherever the
        # test is run from (src layout or installed).
        package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.mapreduce.worker",
             "--listen", "127.0.0.1:0", "--spill-dir", str(tmp_path)],
            stdout=subprocess.PIPE, text=True, env=env,
        )
        try:
            line = process.stdout.readline()
            assert "listening on" in line
            address = line.strip().rsplit(" ", 1)[-1]
            backend = DistributedBackend([address])
            try:
                # The daemon process can only unpickle importable callables,
                # exactly like a remote host: use a library-level reducer.
                from repro.mapreduce.runtime import identity_mapper

                results = backend.run_reducers(
                    identity_mapper, {0: [1, 2, 3], 1: [10, 20]}
                )
                assert results[0][0] == [(0, [1, 2, 3])]
                assert results[1][0] == [(1, [10, 20])]
            finally:
                backend.close()
        finally:
            process.terminate()
            process.wait(timeout=10)

    def test_unpicklable_reducer_surfaces_as_task_error_not_retry(self, tmp_path):
        # A reducer whose module exists only coordinator-side (here: this
        # test module, unimportable inside the bare daemon) must come back
        # as a deterministic WorkerTaskError — not be replayed onto every
        # worker until none survives.
        import repro

        package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
        daemons, addresses = [], []
        try:
            for _ in range(2):
                process = subprocess.Popen(
                    [sys.executable, "-m", "repro.mapreduce.worker",
                     "--listen", "127.0.0.1:0", "--spill-dir", str(tmp_path)],
                    stdout=subprocess.PIPE, text=True, env=env,
                )
                daemons.append(process)
                addresses.append(process.stdout.readline().strip().rsplit(" ", 1)[-1])
            with DistributedBackend(addresses) as backend:
                with pytest.raises(WorkerTaskError, match="unpickling the reducer"):
                    backend.run_reducers(summing_reducer, {0: [1, 2]})
                assignments, _ = backend.take_round_accounting()
                assert all(len(attempts) == 1 for attempts in assignments.values())
        finally:
            for process in daemons:
                process.terminate()
            for process in daemons:
                process.wait(timeout=10)

    def test_sigterm_cleans_owned_spill_dir(self):
        import repro

        package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.mapreduce.worker", "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE, text=True, env=env,
        )
        try:
            line = process.stdout.readline()
            address = line.strip().rsplit(" ", 1)[-1]
            backend = DistributedBackend([address])
            try:
                send_frame_sock = socket.create_connection(
                    tuple([address.rsplit(":", 1)[0], int(address.rsplit(":", 1)[1])])
                )
                send_frame(send_frame_sock, OP_HELLO)
                opcode, payload = recv_frame(send_frame_sock)
                spill_dir = pickle.loads(payload)["spill_dir"]
                send_frame_sock.close()
            finally:
                backend.close()
            assert os.path.isdir(spill_dir)
        finally:
            process.terminate()
            exit_code = process.wait(timeout=10)
        # SIGTERM must run the shutdown path: owned spill dir removed,
        # clean exit status (not -SIGTERM).
        assert exit_code == 0
        deadline = time.monotonic() + 5.0
        while os.path.exists(spill_dir) and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not os.path.exists(spill_dir)


class TestResolveDistributed:
    def test_listed_in_available_backends(self):
        assert "distributed" in available_backends()

    def test_name_requires_workers(self):
        with pytest.raises(InvalidParameterError, match="worker addresses"):
            resolve_backend("distributed")

    def test_workers_imply_distributed(self):
        backend = resolve_backend(None, workers=["127.0.0.1:7071"])
        assert backend.name == "distributed"
        assert backend.worker_addresses == ("127.0.0.1:7071",)
        backend.close()

    def test_workers_rejected_for_other_backends(self):
        with pytest.raises(InvalidParameterError, match="workers="):
            resolve_backend("threads", workers=["127.0.0.1:7071"])

    def test_empty_worker_list_rejected(self):
        with pytest.raises(InvalidParameterError, match="at least one"):
            DistributedBackend([])


class TestRunReducers:
    def test_matches_serial_and_keys_order(self):
        groups = {key: list(range(key, key + 5)) for key in (3, 1, 2)}
        serial = {key: [(key, sum(values))] for key, values in groups.items()}
        with LocalCluster(2) as cluster:
            with cluster.backend() as backend:
                results = backend.run_reducers(summing_reducer, groups)
        assert list(results) == [3, 1, 2]
        for key in groups:
            outputs, elapsed = results[key]
            assert outputs == serial[key]
            assert elapsed >= 0.0

    def test_round_robin_placement_is_pure_function_of_index(self):
        groups = {key: [key] for key in range(6)}
        with LocalCluster(3) as cluster:
            with cluster.backend() as backend:
                backend.run_reducers(summing_reducer, groups)
                assignments, _ = backend.take_round_accounting()
        addresses = cluster.addresses
        for index in range(6):
            assert assignments[index] == [addresses[index % 3]]

    def test_share_array_travels_by_value(self):
        points = np.arange(12, dtype=float).reshape(4, 3)
        with LocalCluster(2) as cluster:
            with MapReduceRuntime(workers=cluster.addresses) as runtime:
                shared = runtime.share_array(points)
                from functools import partial

                outputs = runtime.execute_round(
                    [(None, [0, 1, 2, 3])],
                    modulo_mapper,
                    partial(shared_lookup_reducer, points=shared),
                )
        totals = dict(outputs)
        assert totals[0] == float(points[[0, 3]].sum())

    def test_jobstats_records_assignments_and_bytes(self):
        with LocalCluster(2) as cluster:
            with MapReduceRuntime(workers=cluster.addresses) as runtime:
                runtime.execute_round(
                    [(None, list(range(9)))], modulo_mapper, summing_reducer
                )
                stats = runtime.stats
        assert len(stats.worker_assignments) == 1
        assert sorted(stats.worker_assignments[0]) == [0, 1, 2]
        assert stats.bytes_shipped > 0

    def test_backend_reusable_after_close(self):
        with LocalCluster(1) as cluster:
            backend = cluster.backend()
            assert backend.run_reducers(summing_reducer, {0: [1, 2]})[0][0] == [(0, 3)]
            backend.close()
            # Closed connections reconnect lazily.
            assert backend.run_reducers(summing_reducer, {0: [4]})[0][0] == [(0, 4)]
            backend.close()


class TestFailureInjection:
    def test_worker_death_mid_job_retries_on_survivor(self):
        groups = {key: list(range(10)) for key in range(4)}
        expected = {key: [(key, 45)] for key in groups}
        with LocalCluster(2, fail_after_tasks={0: 1}) as cluster:
            with cluster.backend() as backend:
                results = backend.run_reducers(summing_reducer, groups)
                assignments, _ = backend.take_round_accounting()
        assert {key: outputs for key, (outputs, _) in results.items()} == expected
        retried = [key for key, attempts in assignments.items() if len(attempts) > 1]
        assert retried, "the killed worker's task must record a reassignment"
        survivor = cluster.addresses[1]
        for key in retried:
            assert assignments[key][-1] == survivor

    def test_truncated_frame_mid_result_retries_on_survivor(self):
        groups = {key: [key, key + 1] for key in range(4)}
        with LocalCluster(2, fail_after_tasks={0: 1}, fail_mode="truncate") as cluster:
            with cluster.backend() as backend:
                results = backend.run_reducers(summing_reducer, groups)
        assert results[0][0] == [(0, 1)]
        assert results[3][0] == [(3, 7)]

    def test_unreachable_address_at_connect_fails_over(self):
        with LocalCluster(1) as cluster:
            backend = DistributedBackend([_dead_address()] + cluster.addresses)
            with backend:
                results = backend.run_reducers(summing_reducer, {0: [5, 5], 1: [1]})
                assignments, _ = backend.take_round_accounting()
        assert results[0][0] == [(0, 10)]
        assert results[1][0] == [(1, 1)]
        # The group first placed on the dead worker records both attempts.
        assert any(len(attempts) == 2 for attempts in assignments.values())

    def test_all_workers_unreachable_raises(self):
        backend = DistributedBackend([_dead_address(), _dead_address()])
        with backend:
            with pytest.raises(WorkerUnavailableError, match="no surviving worker"):
                backend.run_reducers(summing_reducer, {0: [1]})

    def test_mid_job_kill_via_cluster(self):
        # Kill the worker's sockets cold (listener and live connections)
        # between two rounds: the next round must fail over.
        with LocalCluster(2) as cluster:
            with cluster.backend() as backend:
                first = backend.run_reducers(summing_reducer, {0: [1], 1: [2]})
                assert first[0][0] == [(0, 1)]
                cluster.kill_worker(0)
                second = backend.run_reducers(summing_reducer, {0: [3], 1: [4]})
                assert second[0][0] == [(0, 3)]
                assert second[1][0] == [(1, 4)]

    def test_reducer_exception_is_not_retried(self):
        with LocalCluster(2) as cluster:
            with cluster.backend() as backend:
                with pytest.raises(WorkerTaskError, match="deterministic failure"):
                    backend.run_reducers(failing_reducer, {0: [1], 1: [2]})
                assignments, _ = backend.take_round_accounting()
                # One attempt only: application errors must not fail over.
                assert all(len(attempts) == 1 for attempts in assignments.values())
                # The backend (and its workers) stay usable afterwards.
                results = backend.run_reducers(summing_reducer, {0: [7]})
                assert results[0][0] == [(0, 7)]

    def test_remote_traceback_travels_back(self):
        with LocalCluster(1) as cluster:
            with cluster.backend() as backend:
                with pytest.raises(WorkerTaskError, match="remote traceback"):
                    backend.run_reducers(failing_reducer, {0: [1]})


class TestNoOrphans:
    @staticmethod
    def _fit_stream_disk(workers, points, **kwargs):
        from repro.core import MapReduceKCenter
        from repro.streaming import ArrayStream

        solver = MapReduceKCenter(
            4, ell=3, coreset_multiplier=2, random_state=3, workers=workers, **kwargs
        )
        return solver.fit_stream(ArrayStream(points), chunk_size=64, storage="disk")

    def test_success_path_leaves_no_spill_files_or_sockets(self, medium_blobs):
        with LocalCluster(2) as cluster:
            result = self._fit_stream_disk(cluster.addresses, medium_blobs)
            assert result.stats.spilled_bytes > 0
            assert result.stats.bytes_shipped > 0
            for worker in cluster.workers:
                assert os.listdir(worker.spill_dir) == []
        # Cluster closed: both worker spill dirs are gone entirely.
        for worker in cluster.workers:
            assert not os.path.exists(worker.spill_dir)

    def test_error_path_cleans_worker_copies(self, medium_blobs, tmp_path):
        with LocalCluster(2) as cluster:
            with MapReduceRuntime(
                workers=cluster.addresses, storage="disk", spill_dir=str(tmp_path)
            ) as runtime:
                from repro.mapreduce.partitioner import ChunkRouter
                from repro.mapreduce.runtime import identity_mapper

                router = ChunkRouter(3, "round_robin", n_total=len(medium_blobs))
                shuffled = runtime.shuffle_stream(
                    [medium_blobs[i : i + 100] for i in range(0, len(medium_blobs), 100)],
                    router,
                )
                pairs = [(i, part) for i, part in enumerate(shuffled.parts)]
                with pytest.raises(WorkerTaskError):
                    runtime.execute_round(pairs, identity_mapper, failing_reducer)
            # Runtime closed: the coordinator's spill files are removed ...
            assert list(tmp_path.glob("*.npy")) == []
            # ... and so is every pushed copy on the workers.
            deadline = time.monotonic() + 5.0
            for worker in cluster.workers:
                while os.listdir(worker.spill_dir) and time.monotonic() < deadline:
                    time.sleep(0.01)
                assert os.listdir(worker.spill_dir) == []

    def test_spill_files_pushed_once_per_worker(self, medium_blobs):
        # Rounds 1 and 3 both reference the sealed partitions; the PUT
        # dedupe must ship each file a single time per worker.
        with LocalCluster(2) as cluster:
            result = self._fit_stream_disk(cluster.addresses, medium_blobs)
            spilled = result.stats.spilled_bytes
            shipped = result.stats.bytes_shipped
            # Every byte spilled is pushed at most once per round-1 worker
            # plus once per round-3 worker — bounded by 2x, not 2 rounds x
            # full re-pickles. (Loose sanity bound: < spilled * 4.)
            assert shipped < spilled * 4

    def test_backend_close_shuts_sockets(self):
        with LocalCluster(1) as cluster:
            backend = cluster.backend()
            backend.run_reducers(summing_reducer, {0: [1]})
            links = backend._links
            assert links[0].sock is not None
            backend.close()
            assert all(link.sock is None for link in links)
