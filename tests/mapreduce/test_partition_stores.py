"""Unit tests for the partition storage tiers behind the out-of-core shuffle.

Covers the three :class:`~repro.mapreduce.backends.PartitionStore`
implementations (in-process arrays, POSIX shared memory, on-disk
``.npy`` spill files), the tier-resolution logic of
:func:`~repro.mapreduce.backends.resolve_storage`, and the pickling
contracts of the sealed :class:`~repro.mapreduce.backends.SharedArray`
handles (by name / by path / by value).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.mapreduce import (
    PartitionBuffer,
    ProcessBackend,
    SerialBackend,
    available_storage_tiers,
    resolve_storage,
)

STORAGE_TIERS = ("memory", "shared", "disk")


def _buffer(storage, tmp_path, dimension=3, **kwargs):
    return PartitionBuffer(
        dimension,
        storage=storage,
        spill_dir=str(tmp_path) if storage == "disk" else None,
        **kwargs,
    )


class TestAllTiers:
    @pytest.mark.parametrize("storage", STORAGE_TIERS)
    def test_append_and_finalize_roundtrip(self, storage, tmp_path):
        rows = np.arange(24.0).reshape(8, 3)
        buffer = _buffer(storage, tmp_path, initial_capacity=2)
        assert buffer.storage_tier == storage
        buffer.append(rows[:5])
        buffer.append(rows[5:])
        assert buffer.n_rows == 8
        sealed = buffer.finalize()
        try:
            np.testing.assert_array_equal(sealed.array, rows)
            assert not sealed.array.flags.writeable
        finally:
            sealed.close()

    @pytest.mark.parametrize("storage", STORAGE_TIERS)
    def test_many_small_appends(self, storage, tmp_path):
        buffer = _buffer(storage, tmp_path, dimension=2, initial_capacity=1)
        expected = []
        for block in range(10):
            rows = np.full((3, 2), float(block))
            buffer.append(rows)
            expected.append(rows)
        sealed = buffer.finalize()
        try:
            np.testing.assert_array_equal(sealed.array, np.vstack(expected))
        finally:
            sealed.close()

    @pytest.mark.parametrize("storage", STORAGE_TIERS)
    def test_one_dimensional_rows(self, storage, tmp_path):
        buffer = _buffer(storage, tmp_path, dimension=None, dtype=np.intp)
        buffer.append(np.arange(10))
        sealed = buffer.finalize()
        try:
            np.testing.assert_array_equal(sealed.array, np.arange(10))
        finally:
            sealed.close()

    @pytest.mark.parametrize("storage", STORAGE_TIERS)
    def test_empty_partition_finalizes_to_zero_rows(self, storage, tmp_path):
        buffer = _buffer(storage, tmp_path)
        sealed = buffer.finalize()
        try:
            assert sealed.shape == (0, 3)
            assert len(sealed) == 0
        finally:
            sealed.close()

    @pytest.mark.parametrize("storage", STORAGE_TIERS)
    def test_shape_validation_identical(self, storage, tmp_path):
        buffer = _buffer(storage, tmp_path)
        with pytest.raises(InvalidParameterError, match="shape"):
            buffer.append(np.zeros((2, 2)))
        with pytest.raises(InvalidParameterError, match="shape"):
            buffer.append(np.zeros(4))
        buffer.close()

    @pytest.mark.parametrize("storage", STORAGE_TIERS)
    def test_append_after_finalize_rejected(self, storage, tmp_path):
        buffer = _buffer(storage, tmp_path)
        buffer.append(np.zeros((1, 3)))
        sealed = buffer.finalize()
        try:
            with pytest.raises(InvalidParameterError, match="finalized"):
                buffer.append(np.zeros((1, 3)))
        finally:
            sealed.close()

    @pytest.mark.parametrize("storage", STORAGE_TIERS)
    def test_close_without_finalize_is_idempotent(self, storage, tmp_path):
        buffer = _buffer(storage, tmp_path)
        buffer.append(np.zeros((2, 3)))
        buffer.close()
        buffer.close()
        if storage == "disk":
            assert list(tmp_path.iterdir()) == []


class TestDiskTier:
    def test_spilled_bytes_counts_both_appends(self, tmp_path):
        buffer = _buffer("disk", tmp_path, dimension=4)
        buffer.append(np.zeros((10, 4)))
        buffer.append(np.zeros((6, 4)))
        assert buffer.spilled_bytes == 16 * 4 * 8

    def test_memory_tiers_report_zero_spill(self, tmp_path):
        for storage in ("memory", "shared"):
            buffer = _buffer(storage, tmp_path)
            buffer.append(np.zeros((4, 3)))
            assert buffer.spilled_bytes == 0
            buffer.close()

    def test_finalized_file_is_a_valid_npy(self, tmp_path):
        rows = np.arange(30.0).reshape(10, 3)
        buffer = _buffer("disk", tmp_path)
        buffer.append(rows)
        sealed = buffer.finalize()
        try:
            (path,) = tmp_path.glob("*.npy")
            np.testing.assert_array_equal(np.load(path), rows)
        finally:
            sealed.close()

    def test_sealed_handle_pickles_by_path_not_by_value(self, tmp_path):
        rows = np.arange(3000.0).reshape(1000, 3)
        buffer = _buffer("disk", tmp_path)
        buffer.append(rows)
        sealed = buffer.finalize()
        try:
            payload = pickle.dumps(sealed)
            assert len(payload) < rows.nbytes // 10
            attached = pickle.loads(payload)
            np.testing.assert_array_equal(attached.array, rows)
            # Re-pickling an attached handle keeps working (worker-to-worker).
            again = pickle.loads(pickle.dumps(attached))
            np.testing.assert_array_equal(again.array, rows)
        finally:
            sealed.close()

    def test_owner_close_deletes_the_spill_file(self, tmp_path):
        buffer = _buffer("disk", tmp_path)
        buffer.append(np.ones((5, 3)))
        sealed = buffer.finalize()
        assert len(list(tmp_path.glob("*.npy"))) == 1
        sealed.close()
        sealed.close()  # idempotent
        assert list(tmp_path.glob("*.npy")) == []

    def test_attached_handle_close_does_not_delete(self, tmp_path):
        buffer = _buffer("disk", tmp_path)
        buffer.append(np.ones((5, 3)))
        sealed = buffer.finalize()
        try:
            attached = pickle.loads(pickle.dumps(sealed))
            attached.close()
            assert len(list(tmp_path.glob("*.npy"))) == 1
        finally:
            sealed.close()

    def test_requires_spill_dir(self):
        with pytest.raises(InvalidParameterError, match="spill_dir"):
            PartitionBuffer(3, storage="disk")

    def test_dtype_preserved(self, tmp_path):
        buffer = _buffer("disk", tmp_path, dimension=None, dtype=np.intp)
        buffer.append(np.arange(7))
        sealed = buffer.finalize()
        try:
            assert sealed.dtype == np.dtype(np.intp)
            attached = pickle.loads(pickle.dumps(sealed))
            assert attached.dtype == np.dtype(np.intp)
        finally:
            sealed.close()


class TestMemoryTierPickling:
    def test_memory_tier_pickles_by_value(self):
        buffer = PartitionBuffer(2, storage="memory")
        rows = np.arange(8.0).reshape(4, 2)
        buffer.append(rows)
        sealed = buffer.finalize()
        copied = pickle.loads(pickle.dumps(sealed))
        np.testing.assert_array_equal(copied.array, rows)
        assert not copied.array.flags.writeable


class TestResolveStorage:
    def test_available_tiers(self):
        assert available_storage_tiers() == ("auto", "disk", "memory", "shared")

    def test_explicit_tiers_pass_through(self):
        for tier in STORAGE_TIERS:
            assert resolve_storage(tier) == tier

    def test_auto_follows_backend(self):
        serial, processes = SerialBackend(), ProcessBackend(max_workers=1)
        try:
            assert resolve_storage("auto", backend=serial) == "memory"
            assert resolve_storage(None, backend=serial) == "memory"
            assert resolve_storage("auto", backend=processes) == "shared"
        finally:
            processes.close()

    def test_auto_spills_above_budget(self):
        backend = SerialBackend()
        assert (
            resolve_storage(
                "auto", backend=backend, estimated_bytes=100, memory_budget_bytes=200
            )
            == "memory"
        )
        assert (
            resolve_storage(
                "auto", backend=backend, estimated_bytes=300, memory_budget_bytes=200
            )
            == "disk"
        )

    def test_auto_spills_when_size_unknown_under_budget(self):
        assert (
            resolve_storage(
                "auto", backend=SerialBackend(), estimated_bytes=None,
                memory_budget_bytes=200,
            )
            == "disk"
        )

    def test_unknown_tier_rejected(self):
        with pytest.raises(InvalidParameterError, match="storage tier"):
            resolve_storage("tape")
        with pytest.raises(InvalidParameterError, match="storage tier"):
            PartitionBuffer(2, storage="tape")
