"""Package-level smoke tests (public API surface and exception hierarchy)."""

from __future__ import annotations

import pytest

import repro
from repro.exceptions import (
    DatasetError,
    InvalidParameterError,
    MemoryBudgetExceededError,
    NotFittedError,
    ReproError,
    StreamingProtocolError,
)


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_docstring_example(self):
        from repro import MapReduceKCenter
        from repro.datasets import GaussianMixtureSpec, gaussian_mixture

        points = gaussian_mixture(200, GaussianMixtureSpec(4, 2), random_state=0)
        result = MapReduceKCenter(k=4, ell=2, coreset_multiplier=2, random_state=0).fit(points)
        assert result.radius > 0


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            InvalidParameterError,
            DatasetError,
            MemoryBudgetExceededError,
            StreamingProtocolError,
            NotFittedError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)

    def test_value_error_compatibility(self):
        assert issubclass(InvalidParameterError, ValueError)
        assert issubclass(DatasetError, ValueError)

    def test_runtime_error_compatibility(self):
        assert issubclass(MemoryBudgetExceededError, RuntimeError)
        assert issubclass(StreamingProtocolError, RuntimeError)
        assert issubclass(NotFittedError, RuntimeError)
