"""Tests for repro.baselines.malkomes (the mu = 1 MapReduce baselines)."""

from __future__ import annotations

from repro.baselines import MalkomesKCenter, MalkomesKCenterOutliers
from repro.core import MapReduceKCenter, MapReduceKCenterOutliers


class TestMalkomesKCenter:
    def test_is_the_mu_one_configuration(self):
        baseline = MalkomesKCenter(5, ell=4)
        assert baseline.coreset_multiplier == 1.0
        assert isinstance(baseline, MapReduceKCenter)

    def test_coreset_size_is_ell_times_k(self, medium_blobs):
        k, ell = 6, 4
        result = MalkomesKCenter(k, ell=ell, random_state=0).fit(medium_blobs)
        assert result.coreset_size == ell * k
        assert result.k == k

    def test_never_better_than_large_coreset_on_average(self, medium_blobs):
        # Averaged over seeds, the mu=1 baseline should not beat mu=8 (the
        # paper's central experimental claim for Figure 2).
        k, ell = 8, 4
        baseline_radii, ours_radii = [], []
        for seed in range(4):
            baseline_radii.append(MalkomesKCenter(k, ell=ell, random_state=seed).fit(medium_blobs).radius)
            ours_radii.append(
                MapReduceKCenter(k, ell=ell, coreset_multiplier=8, random_state=seed)
                .fit(medium_blobs)
                .radius
            )
        assert sum(ours_radii) <= sum(baseline_radii) * 1.05


class TestMalkomesKCenterOutliers:
    def test_is_the_mu_one_configuration(self):
        baseline = MalkomesKCenterOutliers(5, 10, ell=4)
        assert baseline.coreset_multiplier == 1.0
        assert baseline.randomized is False
        assert isinstance(baseline, MapReduceKCenterOutliers)

    def test_runs_and_respects_budget(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        k, ell = 5, 4
        result = MalkomesKCenterOutliers(k, z, ell=ell, random_state=0).fit(data)
        assert result.coreset_size == ell * (k + z)
        assert result.radius <= result.radius_all_points

    def test_adversarial_partitioning_supported(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        result = MalkomesKCenterOutliers(
            5,
            z,
            ell=4,
            partitioning="adversarial",
            adversarial_indices=blobs_with_outliers.outlier_indices,
            random_state=0,
        ).fit(data)
        assert result.radius > 0
