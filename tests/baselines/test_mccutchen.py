"""Tests for repro.baselines.mccutchen (BASESTREAM and BASEOUTLIERS)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import BaseStreamKCenter, BaseStreamOutliers
from repro.core import clustering_radius, gmm_select, radius_with_outliers
from repro.exceptions import InvalidParameterError, NotFittedError
from repro.streaming import ArrayStream, StreamingRunner


class TestBaseStreamKCenter:
    def test_basic_run(self, medium_blobs):
        algorithm = BaseStreamKCenter(6, n_instances=4)
        report = StreamingRunner().run(algorithm, ArrayStream(medium_blobs, shuffle=True, random_state=0))
        assert report.result.centers.shape[0] <= 6
        assert report.result.guess > 0
        assert 0 <= report.result.instance_index < 4

    def test_memory_bounded_by_m_times_k(self, medium_blobs):
        k, m = 6, 4
        algorithm = BaseStreamKCenter(k, n_instances=m)
        report = StreamingRunner().run(algorithm, ArrayStream(medium_blobs))
        assert report.peak_memory <= m * k + k + 1

    def test_quality_within_constant_of_gmm(self, medium_blobs):
        k = 8
        algorithm = BaseStreamKCenter(k, n_instances=8)
        report = StreamingRunner().run(
            algorithm, ArrayStream(medium_blobs, shuffle=True, random_state=1)
        )
        streaming_radius = clustering_radius(medium_blobs, report.result.centers)
        offline_radius = gmm_select(medium_blobs, k).radius
        # The guess-based algorithm is a constant-factor approximation; the
        # constant is small in practice, but allow a generous factor.
        assert streaming_radius <= 6.0 * offline_radius + 1e-9

    def test_short_stream_finalize(self):
        points = np.arange(3, dtype=float).reshape(-1, 1)
        algorithm = BaseStreamKCenter(5, n_instances=2)
        report = StreamingRunner().run(algorithm, ArrayStream(points))
        assert report.result.centers.shape[0] == 3

    def test_finalize_before_any_point_raises(self):
        with pytest.raises(NotFittedError):
            BaseStreamKCenter(3).finalize()


class TestBaseStreamOutliers:
    def test_configuration_validation(self):
        with pytest.raises(InvalidParameterError):
            BaseStreamOutliers(3, 10, buffer_capacity=5)

    def test_basic_run(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        algorithm = BaseStreamOutliers(5, z, n_instances=1, buffer_capacity=80)
        report = StreamingRunner().run(algorithm, ArrayStream(data, shuffle=True, random_state=0))
        assert report.result.centers.shape[0] >= 1
        assert report.result.n_uncovered >= 0

    def test_excludes_planted_outliers(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        algorithm = BaseStreamOutliers(5, z, n_instances=2, buffer_capacity=80)
        report = StreamingRunner().run(algorithm, ArrayStream(data, shuffle=True, random_state=2))
        radius_excl = radius_with_outliers(data, report.result.centers, z)
        radius_all = radius_with_outliers(data, report.result.centers, 0)
        assert radius_excl < radius_all

    def test_memory_stays_bounded(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        capacity = 60
        algorithm = BaseStreamOutliers(5, z, n_instances=1, buffer_capacity=capacity)
        report = StreamingRunner().run(algorithm, ArrayStream(data, shuffle=True, random_state=0))
        # centers (<= k) + buffer (<= capacity + 1 transient) per instance,
        # plus the initial buffer of k + z + 1 points before instances start.
        assert report.peak_memory <= max(capacity + 5 + 2, 5 + z + 1)

    def test_finalize_before_any_point_raises(self):
        with pytest.raises(NotFittedError):
            BaseStreamOutliers(3, 5).finalize()
