"""Tests for repro.baselines.charikar (CHARIKARETAL)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import CharikarKCenterOutliers
from repro.evaluation import optimal_kcenter_with_outliers_radius
from repro.exceptions import InvalidParameterError


class TestCharikarKCenterOutliers:
    def test_basic_run(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        result = CharikarKCenterOutliers(5, z).fit(data)
        assert result.k <= 5
        assert result.radius <= result.radius_all_points
        assert result.elapsed_time >= 0

    def test_identifies_planted_outliers(self, blobs_with_outliers):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        result = CharikarKCenterOutliers(5, z).fit(data)
        assert set(result.outlier_indices) == set(blobs_with_outliers.outlier_indices)

    def test_three_approximation_on_tiny_instance(self, rng):
        points = rng.normal(size=(16, 2)) * 4
        points[0] += 70.0
        k, z = 3, 1
        result = CharikarKCenterOutliers(k, z).fit(points)
        optimum = optimal_kcenter_with_outliers_radius(points, k, z)
        assert result.radius <= 3.0 * optimum + 1e-9

    def test_max_points_guard(self, medium_blobs):
        solver = CharikarKCenterOutliers(5, 10, max_points=100)
        with pytest.raises(InvalidParameterError):
            solver.fit(medium_blobs)

    def test_zero_outliers(self, small_blobs):
        result = CharikarKCenterOutliers(4, 0).fit(small_blobs)
        assert result.radius == pytest.approx(result.radius_all_points)

    def test_k_too_large(self):
        points = np.zeros((3, 2))
        with pytest.raises(InvalidParameterError):
            CharikarKCenterOutliers(5, 0).fit(points)

    def test_centers_are_input_points(self, small_blobs):
        result = CharikarKCenterOutliers(4, 3).fit(small_blobs)
        np.testing.assert_allclose(result.centers, small_blobs[result.center_indices])
