"""Tests for repro.baselines.doubling_stream (Charikar et al. [15])."""

from __future__ import annotations

import numpy as np

from repro.baselines import DoublingStreamKCenter
from repro.core import clustering_radius
from repro.evaluation import optimal_kcenter_radius
from repro.streaming import ArrayStream, StreamingRunner


class TestDoublingStreamKCenter:
    def test_memory_bounded_by_k_plus_one(self, medium_blobs):
        k = 10
        algorithm = DoublingStreamKCenter(k)
        report = StreamingRunner().run(algorithm, ArrayStream(medium_blobs))
        assert report.peak_memory <= k + 1
        assert report.result.centers.shape[0] <= k

    def test_radius_bound_is_respected(self, medium_blobs):
        algorithm = DoublingStreamKCenter(12)
        report = StreamingRunner().run(algorithm, ArrayStream(medium_blobs))
        actual_radius = clustering_radius(medium_blobs, report.result.centers)
        assert actual_radius <= report.result.radius_bound + 1e-9

    def test_eight_approximation_on_tiny_instance(self, rng):
        points = rng.normal(size=(20, 2)) * 3
        k = 3
        algorithm = DoublingStreamKCenter(k)
        report = StreamingRunner().run(algorithm, ArrayStream(points))
        radius = clustering_radius(points, report.result.centers)
        optimum = optimal_kcenter_radius(points, k)
        assert radius <= 8.0 * optimum + 1e-9

    def test_lower_bound_below_radius_bound(self, small_blobs):
        algorithm = DoublingStreamKCenter(5)
        report = StreamingRunner().run(algorithm, ArrayStream(small_blobs))
        assert report.result.lower_bound <= report.result.radius_bound

    def test_short_stream(self):
        points = np.arange(4, dtype=float).reshape(-1, 1)
        algorithm = DoublingStreamKCenter(8)
        report = StreamingRunner().run(algorithm, ArrayStream(points))
        assert report.result.centers.shape[0] == 4
