"""Tests for repro.baselines.gonzalez."""

from __future__ import annotations

from repro.baselines import gonzalez_kcenter
from repro.core import gmm_select


class TestGonzalezBaseline:
    def test_matches_gmm_select(self, small_blobs):
        a = gonzalez_kcenter(small_blobs, 5)
        b = gmm_select(small_blobs, 5)
        assert a.radius == b.radius
        assert a.centers.tolist() == b.centers.tolist()

    def test_random_start(self, small_blobs):
        result = gonzalez_kcenter(small_blobs, 5, random_state=3)
        assert result.n_centers == 5
