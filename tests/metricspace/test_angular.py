"""Tests for the angular metric (added for word2vec-style embeddings)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import gmm_select
from repro.metricspace import angular, available_metrics, get_metric


class TestAngularMetric:
    def test_registered(self):
        assert "angular" in available_metrics()

    def test_orthogonal_vectors(self):
        result = angular(np.array([[1.0, 0.0]]), np.array([[0.0, 1.0]]))
        assert result[0, 0] == pytest.approx(np.pi / 2)

    def test_parallel_vectors_zero_distance(self):
        result = angular(np.array([[2.0, 0.0]]), np.array([[5.0, 0.0]]))
        assert result[0, 0] == pytest.approx(0.0, abs=1e-9)

    def test_opposite_vectors(self):
        result = angular(np.array([[1.0, 0.0]]), np.array([[-3.0, 0.0]]))
        assert result[0, 0] == pytest.approx(np.pi)

    def test_scale_invariance(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(5, 4))
        b = rng.normal(size=(6, 4))
        np.testing.assert_allclose(angular(a, b), angular(a * 3.0, b * 0.5), atol=1e-9)

    def test_zero_vector_is_orthogonal_to_everything(self):
        result = angular(np.array([[0.0, 0.0]]), np.array([[1.0, 1.0], [0.0, 0.0]]))
        assert result[0, 0] == pytest.approx(np.pi / 2)
        assert result[0, 1] == pytest.approx(np.pi / 2)

    def test_triangle_inequality(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(6, 5))
        metric = get_metric("angular")
        matrix = metric.pairwise(points)
        n = points.shape[0]
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert matrix[i, j] <= matrix[i, k] + matrix[k, j] + 1e-8

    def test_usable_by_gmm(self, small_blobs):
        result = gmm_select(small_blobs + 1.0, 4, metric="angular")
        assert result.n_centers == 4
        assert 0 <= result.radius <= np.pi
