"""Tests for repro.metricspace.doubling."""

from __future__ import annotations

import numpy as np

from repro.datasets import points_on_manifold, uniform_hypercube
from repro.metricspace import (
    correlation_dimension_estimate,
    doubling_dimension_estimate,
    greedy_cover_size,
)


class TestGreedyCoverSize:
    def test_single_ball_when_radius_large(self):
        points = np.random.default_rng(0).normal(size=(30, 2))
        assert greedy_cover_size(points, radius=1e6) == 1

    def test_every_point_needed_when_radius_zero_and_distinct(self):
        points = np.arange(10, dtype=float).reshape(-1, 1)
        assert greedy_cover_size(points, radius=0.4) == 10

    def test_monotone_in_radius(self):
        points = np.random.default_rng(1).uniform(size=(100, 2))
        small = greedy_cover_size(points, radius=0.05)
        large = greedy_cover_size(points, radius=0.3)
        assert large <= small


class TestDoublingDimensionEstimate:
    def test_low_dimensional_line(self):
        points = np.linspace(0, 1, 300).reshape(-1, 1)
        estimate = doubling_dimension_estimate(points, random_state=0)
        assert 0.0 <= estimate <= 2.5

    def test_higher_for_higher_dimension(self):
        low = uniform_hypercube(400, 1, random_state=0)
        high = uniform_hypercube(400, 5, random_state=0)
        est_low = doubling_dimension_estimate(low, random_state=1)
        est_high = doubling_dimension_estimate(high, random_state=1)
        assert est_high > est_low

    def test_degenerate_identical_points(self):
        points = np.ones((20, 3))
        assert doubling_dimension_estimate(points, random_state=0) == 0.0


class TestCorrelationDimensionEstimate:
    def test_line_has_dimension_about_one(self):
        points = np.linspace(0, 1, 500).reshape(-1, 1)
        estimate = correlation_dimension_estimate(points, random_state=0)
        assert 0.5 <= estimate <= 1.6

    def test_manifold_estimate_tracks_intrinsic_dimension(self):
        # 2-d manifold embedded in 10-d ambient space.
        points = points_on_manifold(800, 2, 10, noise_std=0.0, random_state=0)
        estimate = correlation_dimension_estimate(points, random_state=1)
        assert estimate < 4.0

    def test_degenerate_identical_points(self):
        points = np.zeros((30, 2))
        assert correlation_dimension_estimate(points, random_state=0) == 0.0
