"""Tests for repro.metricspace.points (Dataset and WeightedPoints)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DatasetError, InvalidParameterError
from repro.metricspace import Dataset, WeightedPoints


class TestDataset:
    def test_length_and_dimension(self, small_blobs):
        data = Dataset(small_blobs)
        assert len(data) == small_blobs.shape[0]
        assert data.dimension == small_blobs.shape[1]

    def test_one_dimensional_input_reshaped(self):
        data = Dataset([1.0, 2.0, 3.0])
        assert len(data) == 3
        assert data.dimension == 1

    def test_rejects_empty(self):
        with pytest.raises(DatasetError):
            Dataset(np.empty((0, 2)))

    def test_rejects_nan(self):
        with pytest.raises(DatasetError):
            Dataset([[0.0, np.nan]])

    def test_points_are_read_only(self, small_blobs):
        data = Dataset(small_blobs)
        with pytest.raises(ValueError):
            data.points[0, 0] = 1.0

    def test_distance(self):
        data = Dataset([[0.0, 0.0], [3.0, 4.0]])
        assert data.distance(0, 1) == pytest.approx(5.0)

    def test_distances_to_set_and_radius(self, tiny_points):
        data = Dataset(tiny_points)
        distances = data.distances_to_set([0, 3])
        assert distances.shape == (len(data),)
        # The farthest point from centers {0, 10} is 50, at distance 40.
        assert data.radius([0, 3]) == pytest.approx(40.0)

    def test_distances_to_empty_set_raises(self, tiny_points):
        data = Dataset(tiny_points)
        with pytest.raises(InvalidParameterError):
            data.distances_to_set([])

    def test_subset(self, small_blobs):
        data = Dataset(small_blobs)
        sub = data.subset([0, 5, 10])
        assert len(sub) == 3
        np.testing.assert_allclose(sub.points[1], small_blobs[5])

    def test_take_returns_copy(self, small_blobs):
        data = Dataset(small_blobs)
        taken = data.take([0, 1])
        taken[0, 0] = 1e9
        assert data.points[0, 0] != 1e9

    def test_distances_from(self, tiny_points):
        data = Dataset(tiny_points)
        distances = data.distances_from(0, [1, 2])
        np.testing.assert_allclose(distances, [1.0, 2.0])

    def test_pairwise_subset(self, tiny_points):
        data = Dataset(tiny_points)
        matrix = data.pairwise([0, 1, 2])
        assert matrix.shape == (3, 3)
        assert matrix[0, 2] == pytest.approx(2.0)

    def test_iteration(self):
        data = Dataset([[1.0], [2.0]])
        rows = list(data)
        assert len(rows) == 2

    def test_manhattan_metric(self):
        data = Dataset([[0.0, 0.0], [1.0, 1.0]], metric="manhattan")
        assert data.distance(0, 1) == pytest.approx(2.0)


class TestWeightedPoints:
    def test_basic_construction(self):
        wp = WeightedPoints(points=[[0.0], [1.0]], weights=[2.0, 3.0])
        assert len(wp) == 2
        assert wp.total_weight == pytest.approx(5.0)
        assert wp.dimension == 1

    def test_rejects_wrong_weight_length(self):
        with pytest.raises(InvalidParameterError):
            WeightedPoints(points=[[0.0], [1.0]], weights=[1.0])

    def test_rejects_non_positive_weights(self):
        with pytest.raises(InvalidParameterError):
            WeightedPoints(points=[[0.0]], weights=[0.0])

    def test_origin_indices_validation(self):
        with pytest.raises(InvalidParameterError):
            WeightedPoints(points=[[0.0], [1.0]], weights=[1.0, 1.0], origin_indices=[5])

    def test_concatenate_preserves_weights_and_origins(self):
        a = WeightedPoints(points=[[0.0]], weights=[2.0], origin_indices=[0])
        b = WeightedPoints(points=[[1.0]], weights=[3.0], origin_indices=[7])
        union = WeightedPoints.concatenate([a, b])
        assert len(union) == 2
        assert union.total_weight == pytest.approx(5.0)
        np.testing.assert_array_equal(union.origin_indices, [0, 7])

    def test_concatenate_drops_origins_when_missing(self):
        a = WeightedPoints(points=[[0.0]], weights=[1.0], origin_indices=[0])
        b = WeightedPoints(points=[[1.0]], weights=[1.0])
        union = WeightedPoints.concatenate([a, b])
        assert union.origin_indices is None

    def test_concatenate_empty_raises(self):
        with pytest.raises(InvalidParameterError):
            WeightedPoints.concatenate([])

    def test_unit_weights(self):
        wp = WeightedPoints(points=[[0.0], [1.0]], weights=[5.0, 9.0])
        unit = wp.unit_weights()
        np.testing.assert_allclose(unit.weights, [1.0, 1.0])
        assert wp.total_weight == pytest.approx(14.0)

    def test_from_dataset_defaults_to_unit_weights(self, small_blobs):
        data = Dataset(small_blobs)
        wp = WeightedPoints.from_dataset(data, [3, 4, 5])
        assert len(wp) == 3
        np.testing.assert_allclose(wp.weights, 1.0)
        np.testing.assert_array_equal(wp.origin_indices, [3, 4, 5])
