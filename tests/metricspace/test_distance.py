"""Tests for repro.metricspace.distance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.metricspace import (
    DistanceCounter,
    Metric,
    available_metrics,
    cdist,
    chebyshev,
    euclidean,
    get_metric,
    manhattan,
    pairwise,
    point_to_points,
)


class TestEuclidean:
    def test_known_distance(self):
        result = euclidean(np.array([[0.0, 0.0]]), np.array([[3.0, 4.0]]))
        assert result.shape == (1, 1)
        assert result[0, 0] == pytest.approx(5.0)

    def test_zero_distance_to_self(self):
        points = np.array([[1.5, -2.0, 7.0]])
        assert euclidean(points, points)[0, 0] == pytest.approx(0.0, abs=1e-12)

    def test_matrix_shape(self):
        a = np.random.default_rng(0).normal(size=(4, 3))
        b = np.random.default_rng(1).normal(size=(6, 3))
        assert euclidean(a, b).shape == (4, 6)

    def test_matches_naive_computation(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(5, 4))
        b = rng.normal(size=(7, 4))
        fast = euclidean(a, b)
        naive = np.sqrt(((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2))
        np.testing.assert_allclose(fast, naive, atol=1e-9)


class TestOtherMetrics:
    def test_manhattan_known_value(self):
        result = manhattan(np.array([[0.0, 0.0]]), np.array([[3.0, 4.0]]))
        assert result[0, 0] == pytest.approx(7.0)

    def test_chebyshev_known_value(self):
        result = chebyshev(np.array([[0.0, 0.0]]), np.array([[3.0, 4.0]]))
        assert result[0, 0] == pytest.approx(4.0)

    def test_metric_ordering(self):
        # Chebyshev <= Euclidean <= Manhattan for the same pair of points.
        rng = np.random.default_rng(3)
        a = rng.normal(size=(10, 5))
        b = rng.normal(size=(10, 5))
        c = chebyshev(a, b)
        e = euclidean(a, b)
        m = manhattan(a, b)
        assert np.all(c <= e + 1e-9)
        assert np.all(e <= m + 1e-9)


class TestMetricRegistry:
    def test_available_metrics(self):
        names = available_metrics()
        assert "euclidean" in names
        assert "manhattan" in names
        assert "chebyshev" in names

    def test_get_metric_by_name_case_insensitive(self):
        assert get_metric("Euclidean").name == "euclidean"

    def test_get_metric_passthrough(self):
        metric = get_metric("manhattan")
        assert get_metric(metric) is metric

    def test_get_metric_unknown_raises(self):
        with pytest.raises(InvalidParameterError):
            get_metric("cosine-similarity")

    def test_get_metric_invalid_type_raises(self):
        with pytest.raises(InvalidParameterError):
            get_metric(42)


class TestMetricHelpers:
    def test_point_to_points(self):
        distances = point_to_points([0.0, 0.0], [[1.0, 0.0], [0.0, 2.0]])
        np.testing.assert_allclose(distances, [1.0, 2.0])

    def test_pairwise_is_symmetric_with_zero_diagonal(self):
        rng = np.random.default_rng(4)
        points = rng.normal(size=(8, 3))
        matrix = pairwise(points)
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 0.0)

    def test_cdist_matches_pairwise_on_same_input(self):
        rng = np.random.default_rng(5)
        points = rng.normal(size=(6, 2))
        np.testing.assert_allclose(cdist(points, points), pairwise(points), atol=1e-6)

    def test_metric_distance_scalar(self):
        metric = get_metric("euclidean")
        assert metric.distance([0.0, 0.0], [0.0, 3.0]) == pytest.approx(3.0)

    def test_triangle_inequality_euclidean(self):
        rng = np.random.default_rng(6)
        a, b, c = rng.normal(size=(3, 4))
        metric = get_metric("euclidean")
        assert metric.distance(a, c) <= metric.distance(a, b) + metric.distance(b, c) + 1e-9


class TestBlockedPrimitives:
    metric_names = ("euclidean", "manhattan", "chebyshev", "angular")

    def _sets(self):
        rng = np.random.default_rng(31)
        return rng.normal(size=(41, 4)), rng.normal(size=(13, 4))

    @pytest.mark.parametrize("name", metric_names)
    @pytest.mark.parametrize("max_block_elements", (16, 200, 10**7))
    def test_cdist_blocked_matches_cdist(self, name, max_block_elements):
        a, b = self._sets()
        metric = get_metric(name)
        full = metric.cdist(a, b)
        blocked = metric.cdist_blocked(a, b, max_block_elements=max_block_elements)
        np.testing.assert_allclose(blocked, full, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("name", metric_names)
    @pytest.mark.parametrize("max_block_elements", (16, 200, 10**7))
    def test_nearest_matches_full_matrix(self, name, max_block_elements):
        a, b = self._sets()
        metric = get_metric(name)
        full = metric.cdist(a, b)
        distances, indices = metric.nearest(a, b, max_block_elements=max_block_elements)
        np.testing.assert_allclose(distances, full.min(axis=1), rtol=1e-12, atol=1e-12)
        assert np.array_equal(indices, full.argmin(axis=1))

    def test_cdist_blocked_out_parameter(self):
        a, b = self._sets()
        metric = get_metric("euclidean")
        out = np.empty((a.shape[0], b.shape[0]))
        result = metric.cdist_blocked(a, b, out=out)
        assert result is out

    def test_cdist_blocked_bad_out_shape_raises(self):
        a, b = self._sets()
        with pytest.raises(InvalidParameterError):
            get_metric("euclidean").cdist_blocked(a, b, out=np.empty((1, 1)))

    def test_nearest_empty_candidates_raises(self):
        with pytest.raises(InvalidParameterError):
            get_metric("euclidean").nearest(np.zeros((3, 2)), np.empty((0, 2)))

    def test_nearest_tie_break_is_lowest_index(self):
        points = np.array([[0.0, 0.0], [0.0, 0.0], [5.0, 0.0]])
        _, indices = get_metric("euclidean").nearest(np.array([[0.0, 0.0]]), points)
        assert indices[0] == 0

    @pytest.mark.parametrize("name", ("manhattan", "chebyshev"))
    def test_elementwise_metrics_skip_symmetrisation(self, name):
        metric = get_metric(name)
        assert metric.exactly_symmetric
        points = np.random.default_rng(8).normal(size=(20, 3))
        raw = metric.cross(points, points)
        assert np.array_equal(raw, raw.T)

    @pytest.mark.parametrize("name", metric_names)
    def test_pairwise_still_symmetric_with_zero_diagonal(self, name):
        points = np.random.default_rng(9).normal(size=(25, 3))
        matrix = get_metric(name).pairwise(points)
        assert np.array_equal(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0.0)


class TestDistanceCounter:
    def test_counts_evaluations(self):
        counter = DistanceCounter("euclidean")
        counter.metric.cdist(np.zeros((3, 2)), np.zeros((5, 2)))
        assert counter.count == 15

    def test_reset(self):
        counter = DistanceCounter()
        counter.metric.cdist(np.zeros((2, 2)), np.zeros((2, 2)))
        counter.reset()
        assert counter.count == 0

    def test_counted_metric_is_a_metric(self):
        counter = DistanceCounter()
        assert isinstance(counter.metric, Metric)
