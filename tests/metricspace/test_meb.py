"""Tests for repro.metricspace.meb."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metricspace import Ball, bounding_box_ball, minimum_enclosing_ball


class TestMinimumEnclosingBall:
    def test_covers_all_points(self, medium_blobs):
        ball = minimum_enclosing_ball(medium_blobs)
        distances = np.linalg.norm(medium_blobs - ball.center, axis=1)
        assert distances.max() <= ball.radius + 1e-9

    def test_two_points(self):
        ball = minimum_enclosing_ball(np.array([[0.0, 0.0], [2.0, 0.0]]), epsilon=0.01)
        # Optimal MEB has radius 1 centered at (1, 0); accept the (1+eps) slack.
        assert ball.radius <= 1.0 * 1.05 + 1e-9
        assert ball.radius >= 1.0 - 1e-9

    def test_single_point(self):
        ball = minimum_enclosing_ball(np.array([[3.0, 4.0]]))
        assert ball.radius == pytest.approx(0.0, abs=1e-12)
        np.testing.assert_allclose(ball.center, [3.0, 4.0])

    def test_approximation_quality_on_sphere(self):
        rng = np.random.default_rng(0)
        directions = rng.normal(size=(200, 3))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        ball = minimum_enclosing_ball(directions, epsilon=0.05)
        # The optimal radius is 1; the approximation must be within (1+eps).
        assert ball.radius <= 1.05 + 1e-6

    def test_max_iterations_cap(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(50, 2))
        ball = minimum_enclosing_ball(points, epsilon=0.001, max_iterations=3)
        distances = np.linalg.norm(points - ball.center, axis=1)
        assert distances.max() <= ball.radius + 1e-9


class TestBoundingBoxBall:
    def test_covers_all_points(self, medium_blobs):
        ball = bounding_box_ball(medium_blobs)
        distances = np.linalg.norm(medium_blobs - ball.center, axis=1)
        assert distances.max() <= ball.radius + 1e-9

    def test_center_is_box_center(self):
        points = np.array([[0.0, 0.0], [4.0, 2.0]])
        ball = bounding_box_ball(points)
        np.testing.assert_allclose(ball.center, [2.0, 1.0])


class TestBall:
    def test_contains(self):
        ball = Ball(center=np.array([0.0, 0.0]), radius=1.0)
        mask = ball.contains(np.array([[0.5, 0.0], [2.0, 0.0]]))
        assert mask.tolist() == [True, False]
