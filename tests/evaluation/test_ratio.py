"""Tests for repro.evaluation.ratio."""

from __future__ import annotations

import pytest

from repro.evaluation import BestRadiusRegistry, approximation_ratios
from repro.exceptions import InvalidParameterError


class TestBestRadiusRegistry:
    def test_tracks_minimum(self):
        registry = BestRadiusRegistry()
        registry.record("cfg", 5.0)
        registry.record("cfg", 3.0)
        registry.record("cfg", 4.0)
        assert registry.best("cfg") == 3.0

    def test_ratio(self):
        registry = BestRadiusRegistry()
        registry.record("cfg", 2.0)
        assert registry.ratio("cfg", 3.0) == pytest.approx(1.5)

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            BestRadiusRegistry().best("missing")

    def test_invalid_radius(self):
        with pytest.raises(InvalidParameterError):
            BestRadiusRegistry().record("cfg", -1.0)

    def test_zero_best_radius(self):
        registry = BestRadiusRegistry()
        registry.record("cfg", 0.0)
        assert registry.ratio("cfg", 0.0) == 1.0
        assert registry.ratio("cfg", 1.0) == float("inf")

    def test_keys(self):
        registry = BestRadiusRegistry()
        registry.record("a", 1.0)
        registry.record("b", 2.0)
        assert set(registry.keys()) == {"a", "b"}


class TestApproximationRatios:
    def test_relative_to_minimum(self):
        ratios = approximation_ratios({"x": 2.0, "y": 4.0})
        assert ratios["x"] == pytest.approx(1.0)
        assert ratios["y"] == pytest.approx(2.0)

    def test_external_best(self):
        ratios = approximation_ratios({"x": 2.0}, best=1.0)
        assert ratios["x"] == pytest.approx(2.0)

    def test_empty(self):
        assert approximation_ratios({}) == {}

    def test_zero_reference(self):
        ratios = approximation_ratios({"x": 0.0, "y": 1.0})
        assert ratios["x"] == 1.0
        assert ratios["y"] == float("inf")
