"""Tests for repro.evaluation.experiments (the figure drivers, at toy scale)."""

from __future__ import annotations

import pytest

from repro.datasets import higgs_like, power_like
from repro.evaluation import (
    ablation_coreset_stopping,
    ablation_partitioning,
    default_datasets,
    figure2_mr_kcenter,
    figure3_stream_kcenter,
    figure4_mr_outliers,
    figure5_stream_outliers,
    figure6_scaling_size,
    figure7_scaling_processors,
    figure8_sequential,
)


@pytest.fixture(scope="module")
def toy_datasets():
    """Very small stand-ins so every driver runs in a few seconds."""
    return {
        "higgs": higgs_like(400, random_state=0),
        "power": power_like(400, random_state=1),
    }


TOY_K = {"higgs": 8, "power": 8}


class TestDefaultDatasets:
    def test_names_and_sizes(self):
        datasets = default_datasets(n_points=100, random_state=0)
        assert set(datasets) == {"higgs", "power", "wiki"}
        assert all(points.shape[0] == 100 for points in datasets.values())

    def test_subset_of_names(self):
        datasets = default_datasets(n_points=50, names=("power",), random_state=0)
        assert set(datasets) == {"power"}


class TestFigureDrivers:
    def test_figure2_shape_and_ratios(self, toy_datasets):
        records = figure2_mr_kcenter(
            toy_datasets, k_values=TOY_K, multipliers=(1, 4), ells=(2, 4), random_state=0
        )
        assert len(records) == len(toy_datasets) * 2 * 2
        assert all(record["ratio"] >= 1.0 for record in records)
        assert all(record["coreset_size"] > 0 for record in records)

    def test_figure3_contains_both_algorithms(self, toy_datasets):
        records = figure3_stream_kcenter(
            toy_datasets, k_values=TOY_K, multipliers=(1, 4), base_instances=(1, 2), random_state=0
        )
        algorithms = {record["algorithm"] for record in records}
        assert algorithms == {"CoresetStream", "BaseStream"}
        assert all(record["throughput"] > 0 for record in records)

    def test_figure4_variants_and_improvement(self, toy_datasets):
        records = figure4_mr_outliers(
            toy_datasets, k=5, z=20, ell=4, multipliers=(1, 4), random_state=0
        )
        variants = {record["variant"] for record in records}
        assert variants == {"deterministic", "randomized"}
        assert all(record["ratio"] >= 1.0 for record in records)

    def test_figure5_space_grows_with_mu(self, toy_datasets):
        records = figure5_stream_outliers(
            toy_datasets,
            k=5,
            z=20,
            multipliers=(1, 4),
            base_instances=(1,),
            base_buffer_capacity=60,
            random_state=0,
        )
        coreset_records = [r for r in records if r["algorithm"] == "CoresetOutliers"]
        by_dataset: dict = {}
        for record in coreset_records:
            by_dataset.setdefault(record["dataset"], {})[record["space_param"]] = record["space"]
        for spaces in by_dataset.values():
            assert spaces[4] > spaces[1]

    def test_figure6_scaling_records(self, toy_datasets):
        records = figure6_scaling_size(
            {"power": toy_datasets["power"][:200]},
            k=5,
            z=10,
            ell=4,
            mu=2,
            size_factors=(1, 2),
            random_state=0,
        )
        assert len(records) == 2
        assert records[1]["n_points"] > records[0]["n_points"]

    def test_figure7_union_size_constant(self, toy_datasets):
        records = figure7_scaling_processors(
            {"power": toy_datasets["power"]}, k=5, z=20, ells=(1, 2, 4), random_state=0
        )
        union_sizes = {record["union_coreset_size"] for record in records}
        # Rounding means sizes are close but not identical across ell.
        assert max(union_sizes) - min(union_sizes) <= len(union_sizes) * 8
        assert all(record["coreset_time_parallel_s"] <= record["coreset_time_total_s"] + 1e-9
                   for record in records)

    def test_figure8_contains_all_algorithms(self, toy_datasets):
        records = figure8_sequential(
            {"higgs": toy_datasets["higgs"]}, k=5, z=20, multipliers=(2,), sample_size=300, random_state=0
        )
        algorithms = {record["algorithm"] for record in records}
        assert algorithms == {"CharikarEtAl", "MalkomesEtAl", "Ours(mu=2)"}
        assert all(record["time_s"] >= 0 for record in records)


class TestAblations:
    def test_coreset_stopping(self):
        points = higgs_like(400, random_state=2)
        records = ablation_coreset_stopping(
            points, k=5, epsilons=(1.0, 0.5), multipliers=(1, 4), ell=4, random_state=0
        )
        rules = {record["rule"] for record in records}
        assert rules == {"epsilon", "mu"}

    def test_partitioning(self):
        points = power_like(400, random_state=3)
        records = ablation_partitioning(points, k=5, z=15, ell=4, mu=2, random_state=0)
        assert len(records) == 4
        labels = {record["configuration"] for record in records}
        assert "randomized" in labels
