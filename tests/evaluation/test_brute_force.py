"""Tests for repro.evaluation.brute_force."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation import (
    optimal_kcenter_radius,
    optimal_kcenter_with_outliers_radius,
)
from repro.exceptions import InvalidParameterError


class TestOptimalKCenter:
    def test_hand_computed_instance(self):
        # Points 0, 1, 10 with k=2: best is {0 or 1, 10} with radius 1... but
        # choosing centers {1, 10} covers 0 at distance 1; radius 1.
        points = np.array([[0.0], [1.0], [10.0]])
        assert optimal_kcenter_radius(points, 2) == pytest.approx(1.0)

    def test_k_equals_n(self):
        points = np.array([[0.0], [5.0], [9.0]])
        assert optimal_kcenter_radius(points, 3) == pytest.approx(0.0)

    def test_k_one_is_min_over_centers(self):
        points = np.array([[0.0], [4.0], [10.0]])
        # Best single center restricted to the points is 4 -> radius 6.
        assert optimal_kcenter_radius(points, 1) == pytest.approx(6.0)

    def test_monotone_in_k(self, rng):
        points = rng.normal(size=(12, 2))
        radii = [optimal_kcenter_radius(points, k) for k in (1, 2, 3, 4)]
        assert all(radii[i] >= radii[i + 1] - 1e-12 for i in range(3))

    def test_too_many_points_rejected(self, rng):
        with pytest.raises(InvalidParameterError):
            optimal_kcenter_radius(rng.normal(size=(100, 2)), 3)


class TestOptimalKCenterWithOutliers:
    def test_outlier_discarded(self):
        points = np.array([[0.0], [1.0], [2.0], [100.0]])
        # With one outlier allowed, the far point is dropped: centers {1}
        # cover the rest with radius 1.
        assert optimal_kcenter_with_outliers_radius(points, 1, 1) == pytest.approx(1.0)

    def test_zero_outliers_matches_plain(self, rng):
        points = rng.normal(size=(10, 2))
        plain = optimal_kcenter_radius(points, 2)
        with_zero = optimal_kcenter_with_outliers_radius(points, 2, 0)
        assert plain == pytest.approx(with_zero)

    def test_monotone_in_z(self, rng):
        points = rng.normal(size=(11, 2))
        radii = [optimal_kcenter_with_outliers_radius(points, 2, z) for z in (0, 1, 2, 3)]
        assert all(radii[i] >= radii[i + 1] - 1e-12 for i in range(3))

    def test_equation_1_relation(self, rng):
        # r*_{k+z}(S) <= r*_{k,z}(S) (Equation 1 of the paper).
        points = rng.normal(size=(10, 2))
        k, z = 2, 2
        lhs = optimal_kcenter_radius(points, k + z)
        rhs = optimal_kcenter_with_outliers_radius(points, k, z)
        assert lhs <= rhs + 1e-12

    def test_z_too_large_rejected(self):
        points = np.zeros((4, 1))
        with pytest.raises(InvalidParameterError):
            optimal_kcenter_with_outliers_radius(points, 1, 4)
