"""Tests for repro.evaluation.reporting."""

from __future__ import annotations

import pytest

from repro.evaluation import format_records, format_table, summarize_series


class TestFormatTable:
    def test_alignment_and_content(self):
        table = format_table(["name", "value"], [["a", 1.5], ["bb", 2.0]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]
        assert "bb" in lines[3]

    def test_float_formatting(self):
        table = format_table(["x"], [[0.000001], [123456.0], [0.5]])
        assert "e" in table  # scientific notation for extreme magnitudes
        assert "0.500" in table

    def test_zero_rendered_plainly(self):
        assert "0" in format_table(["x"], [[0.0]])


class TestFormatRecords:
    def test_uses_first_record_keys(self):
        records = [{"a": 1, "b": 2}, {"a": 3, "b": 4}]
        text = format_records(records)
        assert text.splitlines()[0].startswith("a")

    def test_explicit_columns(self):
        records = [{"a": 1, "b": 2}]
        text = format_records(records, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_missing_column_blank(self):
        records = [{"a": 1}, {"a": 2, "b": 3}]
        text = format_records(records, columns=["a", "b"])
        assert "3" in text

    def test_empty_records(self):
        assert format_records([]) == "(no records)"


class TestSummarizeSeries:
    def test_group_means(self):
        records = [
            {"mu": 1, "ratio": 1.2},
            {"mu": 1, "ratio": 1.4},
            {"mu": 2, "ratio": 1.1},
        ]
        summary = summarize_series(records, group_by="mu", value="ratio")
        assert summary[1] == pytest.approx(1.3)
        assert summary[2] == pytest.approx(1.1)
