"""Tests for repro.evaluation.statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation import mean_confidence_interval, repeat_runs
from repro.exceptions import InvalidParameterError


class TestMeanConfidenceInterval:
    def test_basic_values(self):
        stats = mean_confidence_interval([1.0, 2.0, 3.0])
        assert stats.mean == pytest.approx(2.0)
        assert stats.n_samples == 3
        assert stats.lower < 2.0 < stats.upper

    def test_single_sample_has_zero_width(self):
        stats = mean_confidence_interval([5.0])
        assert stats.half_width == 0.0
        assert stats.lower == stats.upper == 5.0

    def test_constant_samples_have_zero_width(self):
        stats = mean_confidence_interval([4.0] * 10)
        assert stats.half_width == pytest.approx(0.0)

    def test_width_shrinks_with_more_samples(self):
        rng = np.random.default_rng(0)
        small = mean_confidence_interval(rng.normal(size=10))
        large = mean_confidence_interval(rng.normal(size=1000))
        assert large.half_width < small.half_width

    def test_higher_confidence_wider_interval(self):
        values = list(np.random.default_rng(1).normal(size=30))
        narrow = mean_confidence_interval(values, confidence=0.90)
        wide = mean_confidence_interval(values, confidence=0.99)
        assert wide.half_width > narrow.half_width

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            mean_confidence_interval([])

    def test_unsupported_confidence(self):
        with pytest.raises(InvalidParameterError):
            mean_confidence_interval([1.0, 2.0], confidence=0.5)


class TestRepeatRuns:
    def test_runs_with_seeds(self):
        seen = []

        def run(seed):
            seen.append(seed)
            return seed * 2.0

        stats = repeat_runs(run, n_runs=5)
        assert seen == [0, 1, 2, 3, 4]
        assert stats.mean == pytest.approx(4.0)

    def test_extract_field(self):
        stats = repeat_runs(lambda seed: {"radius": 1.0 + seed}, n_runs=3,
                            extract=lambda result: result["radius"])
        assert stats.mean == pytest.approx(2.0)

    def test_invalid_n_runs(self):
        with pytest.raises(InvalidParameterError):
            repeat_runs(lambda seed: 1.0, n_runs=0)
