"""Tests for the nightly benchmark-trajectory comparison script."""

from __future__ import annotations

import json

import pytest

from benchmarks.compare_trajectory import (
    compare,
    extract_metrics,
    load_metrics,
    main,
)


def _stream_doc(points_per_sec: float) -> dict:
    return {
        "benchmark": "bench_stream_throughput",
        "records": [
            {"mode": "per-point", "batch_size": 1, "points_per_sec": 100.0},
            {"mode": "batched", "batch_size": 1024, "points_per_sec": points_per_sec},
        ],
    }


def _mapreduce_doc(points_per_sec: float) -> dict:
    return {
        "benchmark": "bench_fig7_streamed_shuffle",
        "records": [
            {
                "backend": "serial", "mode": "streamed", "storage": "memory",
                "points_per_sec": points_per_sec,
            },
            {"backend": "serial", "mode": "in-memory", "storage": "n/a",
             "points_per_sec": 50.0},
        ],
    }


class TestExtractMetrics:
    def test_names_are_config_qualified(self):
        metrics = extract_metrics(_stream_doc(1000.0))
        assert metrics == {
            "bench_stream_throughput/mode=per-point/batch_size=1": 100.0,
            "bench_stream_throughput/mode=batched/batch_size=1024": 1000.0,
        }

    def test_na_fields_are_skipped(self):
        metrics = extract_metrics(_mapreduce_doc(200.0))
        assert "bench_fig7_streamed_shuffle/backend=serial/mode=in-memory" in metrics

    def test_records_without_throughput_ignored(self):
        metrics = extract_metrics({"benchmark": "x", "records": [{"radius": 1.0}]})
        assert metrics == {}


class TestCompare:
    def test_flags_regressions_beyond_threshold(self):
        previous = {"a": 100.0, "b": 100.0, "c": 100.0}
        current = {"a": 79.0, "b": 81.0, "c": 130.0}
        rows = compare(previous, current, threshold=0.20)
        by_name = {row["metric"]: row for row in rows}
        assert by_name["a"]["regressed"] is True
        assert by_name["b"]["regressed"] is False  # -19% is inside the band
        assert by_name["c"]["regressed"] is False  # improvements never flag

    def test_only_overlapping_metrics_compared(self):
        rows = compare({"old": 1.0}, {"new": 1.0}, threshold=0.2)
        assert rows == []


class TestMain:
    def _write(self, directory, stream_speed, mapreduce_speed):
        directory.mkdir(exist_ok=True)
        (directory / "BENCH_stream.json").write_text(json.dumps(_stream_doc(stream_speed)))
        (directory / "BENCH_mapreduce.json").write_text(
            json.dumps(_mapreduce_doc(mapreduce_speed))
        )

    def test_no_baseline_is_not_an_error(self, tmp_path, capsys):
        current = tmp_path / "current"
        self._write(current, 1000.0, 200.0)
        code = main(["--previous", str(tmp_path / "missing"), "--current", str(current)])
        assert code == 0
        assert "no baseline" in capsys.readouterr().out

    def test_regression_warns_but_exits_zero(self, tmp_path, capsys):
        previous, current = tmp_path / "prev", tmp_path / "cur"
        self._write(previous, 1000.0, 200.0)
        self._write(current, 500.0, 210.0)
        code = main(["--previous", str(previous), "--current", str(current)])
        assert code == 0
        out = capsys.readouterr().out
        assert "::warning" in out
        assert "REGRESSED" in out

    def test_fail_on_regression_flag(self, tmp_path):
        previous, current = tmp_path / "prev", tmp_path / "cur"
        self._write(previous, 1000.0, 200.0)
        self._write(current, 500.0, 210.0)
        code = main([
            "--previous", str(previous), "--current", str(current),
            "--fail-on-regression",
        ])
        assert code == 1

    def test_steady_trajectory_is_quiet(self, tmp_path, capsys):
        previous, current = tmp_path / "prev", tmp_path / "cur"
        self._write(previous, 1000.0, 200.0)
        self._write(current, 990.0, 205.0)
        code = main(["--previous", str(previous), "--current", str(current)])
        assert code == 0
        assert "::warning" not in capsys.readouterr().out

    def test_load_metrics_merges_both_files(self, tmp_path):
        self._write(tmp_path, 1000.0, 200.0)
        metrics = load_metrics(str(tmp_path))
        assert any(name.startswith("bench_stream_throughput") for name in metrics)
        assert any(name.startswith("bench_fig7") for name in metrics)

    def test_empty_current_dir(self, tmp_path, capsys):
        code = main(["--previous", str(tmp_path), "--current", str(tmp_path)])
        assert code == 0
        assert "nothing to compare" in capsys.readouterr().out


@pytest.mark.parametrize("speed,expected", [(79.9, True), (80.0, False)])
def test_threshold_boundary(speed, expected):
    rows = compare({"m": 100.0}, {"m": speed}, threshold=0.20)
    assert rows[0]["regressed"] is expected
