"""Integration tests: every solver works under every registered metric.

The paper's algorithms only rely on the triangle inequality, so they must
work unchanged under any of the registered metrics (Euclidean, Manhattan,
Chebyshev, angular). These tests run each solver end to end under each
metric and check basic solution sanity, guarding against accidental
Euclidean-only assumptions creeping into the implementations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CoresetStreamOutliers,
    MapReduceKCenter,
    MapReduceKCenterOutliers,
    SequentialKCenter,
    SequentialKCenterOutliers,
)
from repro.metricspace import available_metrics, get_metric
from repro.streaming import ArrayStream, StreamingRunner

METRICS = available_metrics()


@pytest.fixture(scope="module")
def positive_blobs():
    """Strictly positive data so the angular metric is informative."""
    rng = np.random.default_rng(5)
    clusters = [
        rng.normal(loc=center, scale=0.4, size=(40, 3))
        for center in ([5, 1, 1], [1, 5, 1], [1, 1, 5])
    ]
    return np.abs(np.vstack(clusters)) + 0.1


@pytest.mark.parametrize("metric_name", METRICS)
class TestSolversAcrossMetrics:
    def test_sequential_kcenter(self, metric_name, positive_blobs):
        result = SequentialKCenter(3, metric=metric_name).fit(positive_blobs)
        assert result.k == 3
        assert np.isfinite(result.radius)
        metric = get_metric(metric_name)
        distances = metric.cdist(positive_blobs, result.centers).min(axis=1)
        assert result.radius == pytest.approx(distances.max(), rel=1e-9)

    def test_mapreduce_kcenter(self, metric_name, positive_blobs):
        result = MapReduceKCenter(
            3, ell=3, coreset_multiplier=2, metric=metric_name, random_state=0
        ).fit(positive_blobs)
        assert result.k == 3
        assert np.isfinite(result.radius)

    def test_sequential_outliers(self, metric_name, positive_blobs):
        result = SequentialKCenterOutliers(
            3, 5, coreset_multiplier=2, metric=metric_name, random_state=0
        ).fit(positive_blobs)
        assert result.k <= 3
        assert result.radius <= result.radius_all_points + 1e-12

    def test_mapreduce_outliers(self, metric_name, positive_blobs):
        result = MapReduceKCenterOutliers(
            3, 5, ell=3, coreset_multiplier=2, metric=metric_name, random_state=0
        ).fit(positive_blobs)
        assert result.k <= 3
        assert np.isfinite(result.radius)

    def test_streaming_outliers(self, metric_name, positive_blobs):
        algorithm = CoresetStreamOutliers(3, 5, coreset_multiplier=3, metric=metric_name)
        report = StreamingRunner().run(algorithm, ArrayStream(positive_blobs))
        assert report.result.centers.shape[0] <= 3
        assert report.peak_memory <= algorithm.coreset_size + 1


class TestMetricSpecificBehaviour:
    def test_angular_ignores_vector_length(self, positive_blobs):
        # Scaling every point by a positive constant must not change the
        # angular-metric solution radius.
        base = SequentialKCenter(3, metric="angular").fit(positive_blobs)
        scaled = SequentialKCenter(3, metric="angular").fit(positive_blobs * 7.0)
        assert base.radius == pytest.approx(scaled.radius, rel=1e-9)

    def test_manhattan_radius_at_least_euclidean(self, positive_blobs):
        centers = positive_blobs[:3]
        manhattan = get_metric("manhattan").cdist(positive_blobs, centers).min(axis=1).max()
        euclidean = get_metric("euclidean").cdist(positive_blobs, centers).min(axis=1).max()
        assert manhattan >= euclidean - 1e-9
