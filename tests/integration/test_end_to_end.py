"""Integration tests: realistic end-to-end pipelines and failure injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CoresetStreamOutliers,
    MapReduceKCenter,
    MapReduceKCenterOutliers,
    radius_with_outliers,
)
from repro.datasets import (
    clustered_with_noise,
    higgs_like,
    inflate,
    inject_outliers,
    wiki_like,
)
from repro.exceptions import InvalidParameterError
from repro.streaming import GeneratorStream, StreamingRunner
from repro.datasets import inflate_streaming


class TestRealisticPipelines:
    def test_higgs_like_mapreduce_pipeline(self):
        points = higgs_like(1500, random_state=0)
        result = MapReduceKCenter(20, ell=8, coreset_multiplier=4, random_state=0).fit(points)
        assert result.k == 20
        assert result.stats.n_rounds == 2
        # Local memory must be far below the input size (the whole point of MR).
        assert result.stats.peak_local_memory < points.shape[0] // 2

    def test_wiki_like_high_dimensional(self):
        points = wiki_like(600, random_state=0)
        result = MapReduceKCenter(10, ell=4, coreset_multiplier=2, random_state=0).fit(points)
        assert result.radius > 0

    def test_outlier_pipeline_with_inflation(self):
        base = clustered_with_noise(400, 5, 3, noise_fraction=0.0, random_state=0)
        inflated = inflate(base, 2.0, random_state=1)
        injected = inject_outliers(inflated, 30, random_state=2)
        result = MapReduceKCenterOutliers(
            5, 30, ell=8, coreset_multiplier=4, randomized=True,
            include_log_term=False, random_state=0,
        ).fit(injected.points)
        assert set(result.outlier_indices) == set(injected.outlier_indices)

    def test_streaming_pipeline_from_generator(self):
        base = clustered_with_noise(300, 4, 2, noise_fraction=0.0, random_state=3)
        injected = inject_outliers(base, 10, random_state=4)
        algorithm = CoresetStreamOutliers(4, 10, coreset_multiplier=4)
        stream = GeneratorStream(inflate_streaming(injected.points, 1.0, batch_size=64))
        report = StreamingRunner().run(algorithm, stream)
        radius = radius_with_outliers(injected.points, report.result.centers, 10)
        assert radius < radius_with_outliers(injected.points, report.result.centers, 0)


class TestFailureInjection:
    def test_duplicate_points_everywhere(self):
        points = np.tile(np.array([[1.0, 2.0]]), (100, 1))
        result = MapReduceKCenter(3, ell=4, coreset_multiplier=2, random_state=0).fit(points)
        assert result.radius == pytest.approx(0.0)

    def test_duplicates_with_outliers(self):
        points = np.vstack([np.tile(np.array([[0.0, 0.0]]), (50, 1)), [[100.0, 100.0]]])
        result = MapReduceKCenterOutliers(1, 1, ell=2, coreset_multiplier=2, random_state=0).fit(points)
        assert result.radius == pytest.approx(0.0)

    def test_k_equals_n(self):
        points = np.arange(8, dtype=float).reshape(-1, 1)
        result = MapReduceKCenter(8, ell=2, coreset_multiplier=1, random_state=0).fit(points)
        assert result.radius == pytest.approx(0.0)

    def test_single_partition_more_workers_than_points(self):
        points = np.arange(5, dtype=float).reshape(-1, 1)
        result = MapReduceKCenter(2, ell=100, coreset_multiplier=1, random_state=0).fit(points)
        assert result.ell <= 5

    def test_z_larger_than_noise(self):
        # Asking for more outliers than actually exist must still work: the
        # solver simply discards the z farthest (legitimate) points.
        points = clustered_with_noise(200, 3, 2, noise_fraction=0.0, random_state=5)
        result = MapReduceKCenterOutliers(3, 50, ell=4, coreset_multiplier=2, random_state=0).fit(points)
        assert result.radius <= result.radius_all_points

    def test_streaming_dimension_mismatch_rejected(self):
        algorithm = CoresetStreamOutliers(2, 1, coreset_multiplier=2)
        algorithm.process(np.array([1.0, 2.0]))
        with pytest.raises(InvalidParameterError):
            algorithm.process(np.array([1.0]))

    def test_adversarial_all_outliers_one_partition_small_coreset(self):
        # The stress case of Figure 4 at mu=1: still returns a valid solution
        # (possibly with a poor radius), never crashes.
        base = clustered_with_noise(300, 4, 2, noise_fraction=0.0, random_state=6)
        injected = inject_outliers(base, 20, random_state=7)
        result = MapReduceKCenterOutliers(
            4,
            20,
            ell=4,
            coreset_multiplier=1,
            partitioning="adversarial",
            adversarial_indices=injected.outlier_indices,
            random_state=0,
        ).fit(injected.points)
        assert result.k <= 4
        assert np.isfinite(result.radius)
