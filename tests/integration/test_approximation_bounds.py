"""Integration tests: end-to-end approximation guarantees on small instances.

These tests verify the paper's headline theorems against brute-force
optima computed by :mod:`repro.evaluation.brute_force`: every solver, run
end to end through its real entry point (MapReduce runtime, streaming
runner, sequential driver), must respect its stated approximation factor
(with the usual numerical slack).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import CharikarKCenterOutliers
from repro.core import (
    CoresetStreamOutliers,
    MapReduceKCenter,
    MapReduceKCenterOutliers,
    SequentialKCenter,
    SequentialKCenterOutliers,
    radius_with_outliers,
)
from repro.evaluation import (
    optimal_kcenter_radius,
    optimal_kcenter_with_outliers_radius,
)
from repro.streaming import ArrayStream, StreamingRunner


@pytest.fixture(scope="module")
def tiny_instance():
    """A 22-point instance with two obvious outliers, small enough for brute force."""
    rng = np.random.default_rng(31)
    core = np.vstack(
        [
            rng.normal(loc=[0, 0], scale=0.5, size=(7, 2)),
            rng.normal(loc=[10, 0], scale=0.5, size=(7, 2)),
            rng.normal(loc=[0, 10], scale=0.5, size=(6, 2)),
        ]
    )
    outliers = np.array([[200.0, 200.0], [-180.0, 150.0]])
    points = np.vstack([core, outliers])
    return points


K, Z, EPSILON = 3, 2, 1.0


class TestKCenterBounds:
    def test_sequential_gmm(self, tiny_instance):
        optimum = optimal_kcenter_radius(tiny_instance, K)
        result = SequentialKCenter(K).fit(tiny_instance)
        assert result.radius <= 2.0 * optimum + 1e-9

    def test_mapreduce_theorem1(self, tiny_instance):
        optimum = optimal_kcenter_radius(tiny_instance, K)
        for ell in (1, 2, 3):
            result = MapReduceKCenter(K, ell=ell, epsilon=EPSILON, random_state=0).fit(tiny_instance)
            assert result.radius <= (2.0 + EPSILON) * optimum + 1e-9


class TestOutlierBounds:
    def test_charikar_three_approximation(self, tiny_instance):
        optimum = optimal_kcenter_with_outliers_radius(tiny_instance, K, Z)
        result = CharikarKCenterOutliers(K, Z).fit(tiny_instance)
        assert result.radius <= 3.0 * optimum + 1e-9

    def test_sequential_theorem2(self, tiny_instance):
        optimum = optimal_kcenter_with_outliers_radius(tiny_instance, K, Z)
        result = SequentialKCenterOutliers(K, Z, epsilon=EPSILON, random_state=0).fit(tiny_instance)
        assert result.radius <= (3.0 + EPSILON) * optimum + 1e-9

    def test_mapreduce_theorem2_deterministic(self, tiny_instance):
        optimum = optimal_kcenter_with_outliers_radius(tiny_instance, K, Z)
        for ell in (1, 2):
            result = MapReduceKCenterOutliers(
                K, Z, ell=ell, epsilon=EPSILON, random_state=0
            ).fit(tiny_instance)
            assert result.radius <= (3.0 + EPSILON) * optimum + 1e-9

    def test_mapreduce_randomized(self, tiny_instance):
        optimum = optimal_kcenter_with_outliers_radius(tiny_instance, K, Z)
        result = MapReduceKCenterOutliers(
            K, Z, ell=2, epsilon=EPSILON, randomized=True, random_state=4
        ).fit(tiny_instance)
        assert result.radius <= (3.0 + EPSILON) * optimum + 1e-9

    def test_streaming_theorem3(self, tiny_instance):
        optimum = optimal_kcenter_with_outliers_radius(tiny_instance, K, Z)
        algorithm = CoresetStreamOutliers(K, Z, coreset_size=tiny_instance.shape[0])
        report = StreamingRunner().run(
            algorithm, ArrayStream(tiny_instance, shuffle=True, random_state=0)
        )
        radius = radius_with_outliers(tiny_instance, report.result.centers, Z)
        assert radius <= (3.0 + EPSILON) * optimum + 1e-9


class TestCrossAlgorithmConsistency:
    def test_all_solvers_agree_on_easy_instance(self, tiny_instance):
        # On a well-separated instance every outlier-aware solver should find
        # (roughly) the same clustering radius once the two planted outliers
        # are excluded.
        radii = []
        radii.append(CharikarKCenterOutliers(K, Z).fit(tiny_instance).radius)
        radii.append(SequentialKCenterOutliers(K, Z, coreset_multiplier=8, random_state=0).fit(tiny_instance).radius)
        radii.append(
            MapReduceKCenterOutliers(K, Z, ell=2, coreset_multiplier=8, random_state=0)
            .fit(tiny_instance)
            .radius
        )
        spread = max(radii) / max(min(radii), 1e-12)
        assert spread <= 3.0

    def test_kcenter_radius_larger_with_fewer_centers(self, tiny_instance):
        r2 = MapReduceKCenter(2, ell=2, coreset_multiplier=4, random_state=0).fit(tiny_instance).radius
        r5 = MapReduceKCenter(5, ell=2, coreset_multiplier=4, random_state=0).fit(tiny_instance).radius
        assert r5 <= r2 + 1e-9
