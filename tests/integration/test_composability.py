"""Integration tests of the composable-coreset property itself.

The entire paper rests on one structural fact: if each subset of a
partition of ``S`` is summarised by its (weighted) GMM coreset, the
*union* of those coresets still embodies a near-optimal solution for all
of ``S``. These tests exercise that property directly — independent of
any particular driver — by building per-partition coresets, taking their
union, solving on the union, and comparing against (a) the guarantee and
(b) a single global coreset of the same total size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CoresetSpec,
    OutliersClusterSolver,
    build_coreset,
    gmm_select,
    search_radius,
)
from repro.core.assignment import assign_to_centers, radius_from_distances
from repro.evaluation import optimal_kcenter_radius
from repro.mapreduce import split_contiguous, split_random
from repro.metricspace import WeightedPoints


def _union_coreset(points: np.ndarray, parts, spec: CoresetSpec) -> WeightedPoints:
    pieces = []
    for indices in parts:
        result = build_coreset(points[indices], spec, weighted=True)
        pieces.append(
            WeightedPoints(
                points=result.coreset.points,
                weights=result.coreset.weights,
                origin_indices=indices[result.center_indices],
            )
        )
    return WeightedPoints.concatenate(pieces)


class TestComposability:
    def test_union_embodies_good_kcenter_solution(self, rng):
        # Small instance so the optimum is computable: the union coreset,
        # built with the epsilon rule, must contain a (2 + eps)-approximate
        # solution for the WHOLE dataset regardless of the partitioning.
        points = rng.normal(size=(24, 2)) * 10
        k, epsilon = 3, 1.0
        optimum = optimal_kcenter_radius(points, k)
        spec = CoresetSpec.from_epsilon(k, epsilon)
        for splitter in (split_contiguous, split_random):
            parts = splitter(points.shape[0], 3, random_state=0) if splitter is split_random else splitter(points.shape[0], 3)
            union = _union_coreset(points, parts, spec)
            solution = gmm_select(union.points, k)
            centers = union.points[solution.centers]
            radius = assign_to_centers(points, centers).radius
            assert radius <= (2.0 + epsilon) * optimum + 1e-9

    def test_union_weights_account_for_every_point(self, medium_blobs):
        spec = CoresetSpec.from_multiplier(10, 2)
        parts = split_contiguous(medium_blobs.shape[0], 6)
        union = _union_coreset(medium_blobs, parts, spec)
        assert union.total_weight == pytest.approx(medium_blobs.shape[0])
        assert len(union) == 6 * 20

    def test_union_proxy_distance_bounded_by_worst_partition(self, medium_blobs):
        # The proxy distance of the union is the max over partitions, so it
        # cannot exceed the largest per-partition coreset radius.
        spec = CoresetSpec.from_multiplier(8, 4)
        parts = split_contiguous(medium_blobs.shape[0], 4)
        per_partition_max = []
        for indices in parts:
            result = build_coreset(medium_blobs[indices], spec, weighted=True)
            per_partition_max.append(result.max_proxy_distance)
        union = _union_coreset(medium_blobs, parts, spec)
        distances = assign_to_centers(medium_blobs, union.points).distances
        assert distances.max() <= max(per_partition_max) + 1e-9

    def test_union_versus_global_coreset_of_same_size(self, medium_blobs):
        # A single global coreset of the same total size should not be
        # dramatically better than the union of per-partition coresets —
        # composability costs little (this is what makes the MapReduce
        # algorithms competitive with the sequential ones).
        k, ell, mu = 8, 4, 4
        parts = split_contiguous(medium_blobs.shape[0], ell)
        union = _union_coreset(medium_blobs, parts, CoresetSpec.from_multiplier(k, mu))
        global_coreset = build_coreset(
            medium_blobs, CoresetSpec.from_multiplier(k, mu * ell), weighted=True
        ).coreset

        union_solution = gmm_select(union.points, k)
        global_solution = gmm_select(global_coreset.points, k)
        union_radius = assign_to_centers(
            medium_blobs, union.points[union_solution.centers]
        ).radius
        global_radius = assign_to_centers(
            medium_blobs, global_coreset.points[global_solution.centers]
        ).radius
        assert union_radius <= 2.0 * global_radius + 1e-9

    def test_outlier_union_supports_radius_search(self, blobs_with_outliers):
        # The weighted union built from an arbitrary partition must let the
        # radius search discard (at most) z weight and cover the rest.
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        k = 5
        spec = CoresetSpec.from_multiplier(k + z, 2)
        parts = split_contiguous(data.shape[0], 4)
        union = _union_coreset(data, parts, spec)
        solver = OutliersClusterSolver(union, k, eps_hat=1 / 6)
        search = search_radius(solver, z)
        centers = union.points[search.solution.center_indices]
        distances = assign_to_centers(data, centers).distances
        radius_excl = radius_from_distances(distances, z)
        radius_all = radius_from_distances(distances, 0)
        assert search.solution.uncovered_weight <= z
        assert radius_excl < radius_all / 10.0
