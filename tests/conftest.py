"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import GaussianMixtureSpec, gaussian_mixture, inject_outliers


@pytest.fixture
def rng():
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_blobs():
    """A small, well-clustered 2-d dataset (5 clusters, 200 points)."""
    spec = GaussianMixtureSpec(n_clusters=5, dimension=2, cluster_std=0.5, box_size=50.0)
    return gaussian_mixture(200, spec, random_state=7)


@pytest.fixture
def medium_blobs():
    """A medium, well-clustered 3-d dataset (8 clusters, 600 points)."""
    spec = GaussianMixtureSpec(n_clusters=8, dimension=3, cluster_std=0.8, box_size=80.0)
    return gaussian_mixture(600, spec, random_state=11)


@pytest.fixture
def blobs_with_outliers(small_blobs):
    """The small dataset with 15 far-away planted outliers (shuffled)."""
    return inject_outliers(small_blobs, 15, random_state=3)


@pytest.fixture
def tiny_points():
    """A hand-crafted 1-d dataset whose optima are easy to reason about."""
    return np.array([[0.0], [1.0], [2.0], [10.0], [11.0], [12.0], [50.0]])
