"""Tests for repro.io (saving and loading solutions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import load_solution, save_solution
from repro.core import MapReduceKCenterOutliers, SequentialKCenter
from repro.exceptions import InvalidParameterError


class TestSaveAndLoad:
    def test_roundtrip_sequential(self, small_blobs, tmp_path):
        result = SequentialKCenter(4).fit(small_blobs)
        base = tmp_path / "solutions" / "kcenter"
        json_path, npz_path = save_solution(result, base, metadata={"dataset": "blobs", "k": 4})
        assert json_path.exists() and npz_path.exists()

        loaded = load_solution(base)
        np.testing.assert_allclose(loaded.centers, result.centers)
        assert loaded.radius == pytest.approx(result.radius)
        np.testing.assert_array_equal(loaded.center_indices, result.center_indices)
        assert loaded.metadata["dataset"] == "blobs"
        assert loaded.metadata["result_type"] == "SequentialResult"
        assert loaded.k == 4

    def test_roundtrip_mr_outliers(self, blobs_with_outliers, tmp_path):
        data = blobs_with_outliers.points
        z = blobs_with_outliers.n_outliers
        result = MapReduceKCenterOutliers(4, z, ell=2, coreset_multiplier=2, random_state=0).fit(data)
        base = tmp_path / "mr_outliers"
        save_solution(result, base)
        loaded = load_solution(base)
        np.testing.assert_array_equal(loaded.outlier_indices, result.outlier_indices)
        assert loaded.radius == pytest.approx(result.radius)

    def test_extension_in_base_path_is_dropped(self, small_blobs, tmp_path):
        result = SequentialKCenter(3).fit(small_blobs)
        save_solution(result, tmp_path / "with_ext.json")
        loaded = load_solution(tmp_path / "with_ext.npz")
        assert loaded.k == 3

    def test_missing_files_raise(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            load_solution(tmp_path / "nothing_here")

    def test_result_without_centers_rejected(self, tmp_path):
        class Bogus:
            radius = 1.0

        with pytest.raises(InvalidParameterError):
            save_solution(Bogus(), tmp_path / "bogus")

    def test_result_without_radius_rejected(self, tmp_path):
        class Bogus:
            centers = np.zeros((2, 2))

        with pytest.raises(InvalidParameterError):
            save_solution(Bogus(), tmp_path / "bogus")

    def test_format_version_checked(self, small_blobs, tmp_path):
        result = SequentialKCenter(2).fit(small_blobs)
        json_path, _ = save_solution(result, tmp_path / "versioned")
        payload = json_path.read_text().replace('"format_version": 1', '"format_version": 99')
        json_path.write_text(payload)
        with pytest.raises(InvalidParameterError):
            load_solution(tmp_path / "versioned")
