"""Ablation — the OUTLIERSCLUSTER precision parameter ``eps_hat``.

Algorithm 1 uses selection balls of radius ``(1 + 2 eps_hat) r`` and
coverage balls of radius ``(3 + 4 eps_hat) r``; the paper sets
``eps_hat = eps / 6`` so the end-to-end guarantee is ``3 + eps``. This
ablation measures how the choice of ``eps_hat`` affects the sequential
coreset algorithm's solution quality and the radius accepted by the
search, holding the coreset fixed — quantifying how much slack the
weighted analysis actually costs in practice (with ``eps_hat = 0`` the
routine degenerates to the unweighted Charikar et al. ball radii).
"""

from __future__ import annotations

from repro.core import SequentialKCenterOutliers
from repro.datasets import inject_outliers
from repro.evaluation import approximation_ratios

from .conftest import attach_records, bench_seed

K, Z, MU = 10, 60, 4
EPS_HAT_VALUES = (0.0, 1.0 / 12.0, 1.0 / 6.0, 1.0 / 3.0, 2.0 / 3.0)


def test_ablation_eps_hat(benchmark, paper_datasets):
    injected = {
        name: inject_outliers(points, Z, random_state=bench_seed())
        for name, points in paper_datasets.items()
    }

    records = []
    for name, injection in injected.items():
        radii = {}
        partial = []
        for eps_hat in EPS_HAT_VALUES:
            solver = SequentialKCenterOutliers(
                K, Z, coreset_multiplier=MU, eps_hat=eps_hat, random_state=bench_seed()
            )
            result = solver.fit(injection.points)
            radii[eps_hat] = result.radius
            partial.append(
                {
                    "dataset": name,
                    "eps_hat": round(eps_hat, 4),
                    "radius": result.radius,
                    "estimated_coreset_radius": result.radius_all_points,
                    "time_s": result.elapsed_time,
                }
            )
        ratios = approximation_ratios(radii)
        for row, eps_hat in zip(partial, EPS_HAT_VALUES):
            row["ratio"] = ratios[eps_hat]
        records.extend(partial)

    solver = SequentialKCenterOutliers(
        K, Z, coreset_multiplier=MU, eps_hat=1.0 / 6.0, random_state=bench_seed()
    )
    benchmark.pedantic(
        lambda: solver.fit(injected["power"].points), rounds=3, iterations=1
    )

    attach_records(
        benchmark,
        records,
        printed_columns=["dataset", "eps_hat", "radius", "ratio", "time_s"],
    )

    # The solution quality should be insensitive to eps_hat over the range the
    # paper uses (every configuration within 50% of the best for its dataset).
    assert all(record["ratio"] <= 1.5 for record in records)
