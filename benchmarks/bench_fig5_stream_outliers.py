"""Figure 5 — Streaming k-center with outliers: ratio and throughput vs space.

Paper setup: CORESETOUTLIERS with space ``mu (k + z)``, mu in
{1, 2, 4, 8, 16}, vs BASEOUTLIERS ([27]) with space ``m (k z)``, m in
{1, 2, 4, 8, 16}; k=20, z=200. Expected shape: on the Higgs- and
Power-like datasets CORESETOUTLIERS reaches better ratios using much less
space and at least an order of magnitude higher throughput; on the
Wiki-like stand-in both achieve good ratios already at minimum space.

The baseline's per-instance buffer is scaled down together with the
datasets (its paper-faithful k*z buffer would exceed the scaled-down
stream length). The timed section wraps one CORESETOUTLIERS pass (mu=8).
"""

from __future__ import annotations

from repro.core import CoresetStreamOutliers
from repro.datasets import inject_outliers
from repro.evaluation import figure5_stream_outliers
from repro.streaming import ArrayStream, StreamingRunner

from .conftest import attach_records, bench_batch_size, bench_seed


K, Z = 10, 60


def test_figure5_stream_outliers(benchmark, paper_datasets):
    records = figure5_stream_outliers(
        paper_datasets,
        k=K,
        z=Z,
        multipliers=(1, 2, 4, 8, 16),
        base_instances=(1, 2),
        base_buffer_capacity=K * Z,
        batch_size=bench_batch_size(),
        random_state=bench_seed(),
    )

    injected = inject_outliers(paper_datasets["higgs"], Z, random_state=bench_seed())

    def run_stream():
        algorithm = CoresetStreamOutliers(K, Z, coreset_multiplier=8)
        return StreamingRunner(batch_size=bench_batch_size()).run(
            algorithm, ArrayStream(injected.points, shuffle=True, random_state=0)
        )

    benchmark.pedantic(run_stream, rounds=3, iterations=1)

    attach_records(
        benchmark,
        records,
        printed_columns=["dataset", "algorithm", "space_param", "space", "radius", "ratio", "throughput"],
    )

    for dataset_name in paper_datasets:
        coreset_rows = [
            r for r in records
            if r["dataset"] == dataset_name and r["algorithm"] == "CoresetOutliers"
        ]
        base_rows = [
            r for r in records
            if r["dataset"] == dataset_name and r["algorithm"] == "BaseOutliers"
        ]
        best_coreset = min(r["ratio"] for r in coreset_rows)
        best_base = min(r["ratio"] for r in base_rows)
        # The coreset algorithm reaches at least comparable quality...
        assert best_coreset <= best_base * 1.25 + 1e-9
        # ...while its largest configuration still uses less space than the
        # baseline's smallest (the paper's central space claim).
        assert max(r["space"] for r in coreset_rows) <= 2 * min(r["space"] for r in base_rows)
