"""Benchmark harness regenerating the paper's figures (run with pytest).

This package marker lets the ``bench_*.py`` modules use ``from .conftest
import ...`` regardless of how pytest is invoked.
"""
