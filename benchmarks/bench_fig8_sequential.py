"""Figure 8 — Sequential algorithms: running time and radius.

Paper setup: 10 000-point samples of Higgs, Power, Wiki with 200 planted
outliers, k in {50, 100}, z=200; CHARIKARETAL [16] vs MALKOMESETAL [26]
(our algorithm at mu=1) vs our coreset-based sequential algorithm at
mu in {2, 4, 8}. Expected shape: the coreset-based algorithms are one to
two orders of magnitude faster than CHARIKARETAL; at mu=1 the radius is
noticeably worse, from mu >= 2 it is essentially on par (sometimes
better, due to coreset shuffling effects).

The samples are scaled down so the quadratic baseline stays fast; the
timed section wraps the mu=4 coreset solver.
"""

from __future__ import annotations

from repro.core import SequentialKCenterOutliers
from repro.datasets import inject_outliers
from repro.evaluation import figure8_sequential

from .conftest import attach_records, bench_seed

K, Z, SAMPLE = 10, 50, 1000


def test_figure8_sequential(benchmark, paper_datasets):
    records = figure8_sequential(
        paper_datasets,
        k=K,
        z=Z,
        multipliers=(2, 4, 8),
        sample_size=SAMPLE,
        random_state=bench_seed(),
    )

    injected = inject_outliers(paper_datasets["higgs"][:SAMPLE], Z, random_state=bench_seed())

    def run_ours_mu4():
        solver = SequentialKCenterOutliers(K, Z, coreset_multiplier=4, random_state=bench_seed())
        return solver.fit(injected.points)

    benchmark.pedantic(run_ours_mu4, rounds=3, iterations=1)

    attach_records(
        benchmark,
        records,
        printed_columns=["dataset", "algorithm", "mu", "radius", "ratio", "time_s"],
    )

    for dataset_name in paper_datasets:
        rows = {r["algorithm"]: r for r in records if r["dataset"] == dataset_name}
        charikar = rows["CharikarEtAl"]
        # The coreset-based configurations are faster than the quadratic
        # baseline (allow a small margin: at these tiny sample sizes the
        # mu = 8 coreset approaches the sample itself and timing noise is real).
        for label, row in rows.items():
            if label != "CharikarEtAl":
                assert row["time_s"] <= charikar["time_s"] * 1.2
        # With mu >= 4 the radius is within 50% of the baseline's.
        assert rows["Ours(mu=4)"]["radius"] <= charikar["radius"] * 1.5 + 1e-9
