"""Micro-benchmarks of the core primitives.

These do not correspond to a paper figure; they track the performance of
the building blocks every experiment relies on, so regressions in the
hot paths (GMM extension, weighted coreset construction, OUTLIERSCLUSTER,
the streaming doubling coreset) are visible in benchmark history even
when the figure-level numbers move for other reasons.
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    CoresetSpec,
    OutliersClusterSolver,
    StreamingCoreset,
    build_coreset,
    gmm_select,
    search_radius,
)
from repro.metricspace import WeightedPoints

from .conftest import bench_seed


def _points(n: int, d: int = 7) -> np.ndarray:
    return np.random.default_rng(bench_seed()).normal(size=(n, d))


def test_gmm_select(benchmark):
    points = _points(4000)
    result = benchmark(lambda: gmm_select(points, 50))
    assert result.n_centers == 50


def test_weighted_coreset_construction(benchmark):
    points = _points(4000)
    spec = CoresetSpec.from_multiplier(60, 4)
    result = benchmark(lambda: build_coreset(points, spec, weighted=True))
    assert result.size == 240


def test_outliers_cluster_single_run(benchmark):
    points = _points(1200)
    coreset = WeightedPoints(points=points, weights=np.ones(points.shape[0]))
    solver = OutliersClusterSolver(coreset, k=20, eps_hat=1 / 6)
    radius = float(np.median(solver.candidate_radii()))
    result = benchmark(lambda: solver.run(radius))
    assert result.n_centers <= 20


def test_outliers_cluster_radius_probes(benchmark):
    # The radius-probe pattern of search_radius: many run() calls over the
    # same cached pairwise matrix. Tracks the cost of the per-probe setup
    # (boolean selection balls + incremental ball-weight maintenance).
    points = _points(900)
    coreset = WeightedPoints(points=points, weights=np.ones(points.shape[0]))
    solver = OutliersClusterSolver(coreset, k=15, eps_hat=1 / 6)
    radii = np.quantile(solver.candidate_radii(), np.linspace(0.05, 0.6, 12))

    def probe_all():
        return [solver.run(float(r)).uncovered_weight for r in radii]

    weights = benchmark(probe_all)
    assert len(weights) == 12
    # Larger radii never leave more weight uncovered.
    assert all(a >= b - 1e-9 for a, b in zip(weights, weights[1:]))


def test_radius_search(benchmark):
    points = _points(600)
    coreset = WeightedPoints(points=points, weights=np.ones(points.shape[0]))
    solver = OutliersClusterSolver(coreset, k=10, eps_hat=1 / 6)
    result = benchmark(lambda: search_radius(solver, z=20))
    assert result.solution.uncovered_weight <= 20


def test_streaming_coreset_throughput(benchmark):
    points = _points(8000)

    def run():
        coreset = StreamingCoreset(tau=200)
        for point in points:
            coreset.process(point)
        return coreset

    coreset = benchmark(run)
    assert coreset.size <= 200


def test_streaming_coreset_batch_throughput(benchmark):
    # The vectorized update rule: same work as the per-point benchmark
    # above, consumed in 1024-point chunks.
    points = _points(8000)

    def run():
        coreset = StreamingCoreset(tau=200)
        for start in range(0, points.shape[0], 1024):
            coreset.process_batch(points[start : start + 1024])
        return coreset

    coreset = benchmark(run)
    assert coreset.size <= 200
