"""Shared configuration for the benchmark harness.

Every benchmark regenerates one figure of the paper's evaluation section
on scaled-down datasets (see ``DESIGN.md`` §3 and ``EXPERIMENTS.md``).
The figures' result tables are printed to stdout (run pytest with ``-s``
to see them) and attached to the pytest-benchmark ``extra_info`` so they
are preserved in ``--benchmark-json`` output.

Environment knobs (all optional):

* ``REPRO_BENCH_POINTS`` — points per dataset stand-in (default 1500);
* ``REPRO_BENCH_SEED`` — master seed (default 7).
"""

from __future__ import annotations

import os

import pytest

from repro.evaluation import default_datasets


def bench_points() -> int:
    """Dataset size used by the benchmark harness."""
    return int(os.environ.get("REPRO_BENCH_POINTS", "1500"))


def bench_seed() -> int:
    """Master seed used by the benchmark harness."""
    return int(os.environ.get("REPRO_BENCH_SEED", "7"))


@pytest.fixture(scope="session")
def paper_datasets():
    """Scaled-down Higgs/Power/Wiki stand-ins shared by all benchmarks."""
    return default_datasets(n_points=bench_points(), random_state=bench_seed())


@pytest.fixture(scope="session")
def bench_k_values():
    """Per-dataset k values, scaled down with the dataset size.

    The paper uses k = 50 / 100 / 60 on multi-million-point datasets; on the
    default 1500-point stand-ins we keep the same ordering at a smaller
    scale so clusters stay meaningful.
    """
    return {"higgs": 20, "power": 25, "wiki": 15}


def attach_records(benchmark, records, *, printed_columns=None) -> None:
    """Store experiment records on the benchmark and print them."""
    from repro.evaluation import format_records

    benchmark.extra_info["records"] = [
        {key: (value.item() if hasattr(value, "item") else value)
         for key, value in record.items()
         if not hasattr(value, "__len__") or isinstance(value, str)}
        for record in records
    ]
    table = format_records(records, columns=printed_columns)
    print()
    print(table)
