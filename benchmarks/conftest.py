"""Shared configuration for the benchmark harness.

Every benchmark regenerates one figure of the paper's evaluation section
on scaled-down datasets (see ``DESIGN.md`` §3 and ``EXPERIMENTS.md``).
The figures' result tables are printed to stdout (run pytest with ``-s``
to see them) and attached to the pytest-benchmark ``extra_info`` so they
are preserved in ``--benchmark-json`` output.

Reproducibility knobs — every ``bench_*.py`` draws its seed and problem
size from here, so a CI smoke run is fully determined by the command
line:

* ``--seed N`` — master seed (overrides ``REPRO_BENCH_SEED``; default 7);
* ``--bench-points N`` — points per dataset stand-in (overrides
  ``REPRO_BENCH_POINTS``; default 1500);
* ``--backend NAME`` — MapReduce executor backend for the benchmarks
  that support one (default serial);
* ``--scaling-points N`` — instance size for the true wall-clock
  scaling benchmark in ``bench_fig7_scaling_procs.py`` (default 100000).

The options are registered only when pytest is invoked on the
``benchmarks/`` directory (an "initial conftest"); the helpers fall back
to the environment variables otherwise.
"""

from __future__ import annotations

import os

import pytest

from repro.evaluation import default_datasets
from repro.mapreduce import available_backends, available_storage_tiers

_CONFIG = None


def pytest_addoption(parser):
    group = parser.getgroup("repro-bench", "paper-reproduction benchmark knobs")
    group.addoption("--seed", type=int, default=None,
                    help="master seed for all benchmarks (overrides REPRO_BENCH_SEED)")
    group.addoption("--bench-points", type=int, default=None,
                    help="points per dataset stand-in (overrides REPRO_BENCH_POINTS)")
    group.addoption("--backend", choices=available_backends(), default=None,
                    help="MapReduce executor backend for backend-aware benchmarks")
    group.addoption("--storage", choices=available_storage_tiers(), default="auto",
                    help="partition-storage tier for the streamed-shuffle benchmark's "
                         "'streamed' mode (the spill-to-disk column always runs)")
    group.addoption("--scaling-points", type=int, default=100_000,
                    help="instance size for the true wall-clock scaling benchmark")
    group.addoption("--batch-size", type=int, default=1024,
                    help="streaming chunk size for the batched streaming benchmarks "
                         "(0 = per-point path)")
    group.addoption("--stream-points", type=int, default=100_000,
                    help="stream length for the streaming throughput benchmark")


def pytest_configure(config):
    global _CONFIG
    _CONFIG = config


def _option(name: str, default=None):
    if _CONFIG is None:
        return default
    return _CONFIG.getoption(name, default=default)


def bench_points() -> int:
    """Dataset size used by the benchmark harness."""
    from_option = _option("--bench-points")
    if from_option is not None:
        return int(from_option)
    return int(os.environ.get("REPRO_BENCH_POINTS", "1500"))


def bench_seed() -> int:
    """Master seed used by the benchmark harness."""
    from_option = _option("--seed")
    if from_option is not None:
        return int(from_option)
    return int(os.environ.get("REPRO_BENCH_SEED", "7"))


def bench_backend() -> str | None:
    """Executor backend requested on the command line (``None`` = serial)."""
    return _option("--backend")


def bench_storage() -> str:
    """Partition-storage tier requested on the command line (default ``"auto"``)."""
    return str(_option("--storage", default="auto"))


def scaling_points() -> int:
    """Instance size for the true wall-clock scaling benchmark."""
    return int(_option("--scaling-points", default=100_000))


def bench_batch_size() -> int | None:
    """Streaming chunk size requested on the command line (``None`` = per point)."""
    value = int(_option("--batch-size", default=1024))
    return None if value == 0 else value


def stream_points() -> int:
    """Stream length for the streaming throughput benchmark."""
    return int(_option("--stream-points", default=100_000))


@pytest.fixture(scope="session")
def paper_datasets():
    """Scaled-down Higgs/Power/Wiki stand-ins shared by all benchmarks."""
    return default_datasets(n_points=bench_points(), random_state=bench_seed())


@pytest.fixture(scope="session")
def bench_k_values():
    """Per-dataset k values, scaled down with the dataset size.

    The paper uses k = 50 / 100 / 60 on multi-million-point datasets; on the
    default 1500-point stand-ins we keep the same ordering at a smaller
    scale so clusters stay meaningful.
    """
    return {"higgs": 20, "power": 25, "wiki": 15}


def attach_records(benchmark, records, *, printed_columns=None) -> None:
    """Store experiment records on the benchmark and print them."""
    from repro.evaluation import format_records

    benchmark.extra_info["records"] = [
        {key: (value.item() if hasattr(value, "item") else value)
         for key, value in record.items()
         if not hasattr(value, "__len__") or isinstance(value, str)}
        for record in records
    ]
    table = format_records(records, columns=printed_columns)
    print()
    print(table)
