"""Ablation — partitioning strategy for the outlier algorithm.

The paper's Figure 4 stresses the deterministic algorithm by packing all
planted outliers into a single partition. This ablation quantifies how
much the partitioning strategy alone matters at a fixed coreset size:
contiguous vs random vs adversarial placement for the deterministic
algorithm, plus the randomized variant (which re-randomises the
partitioning itself and shrinks the coresets).
"""

from __future__ import annotations

from repro.core import MapReduceKCenterOutliers
from repro.datasets import inject_outliers
from repro.evaluation import ablation_partitioning

from .conftest import attach_records, bench_seed

K, Z, ELL, MU = 10, 60, 8, 4


def test_ablation_partitioning(benchmark, paper_datasets):
    points = paper_datasets["power"]
    records = ablation_partitioning(
        points, k=K, z=Z, ell=ELL, mu=MU, random_state=bench_seed()
    )

    injected = inject_outliers(points, Z, random_state=bench_seed())

    def run_adversarial():
        solver = MapReduceKCenterOutliers(
            K, Z, ell=ELL, coreset_multiplier=MU,
            partitioning="adversarial",
            adversarial_indices=injected.outlier_indices,
            random_state=bench_seed(),
        )
        return solver.fit(injected.points)

    benchmark.pedantic(run_adversarial, rounds=3, iterations=1)

    attach_records(
        benchmark,
        records,
        printed_columns=["configuration", "coreset_size", "radius", "ratio"],
    )

    by_label = {record["configuration"]: record for record in records}
    assert set(by_label) == {
        "deterministic/contiguous",
        "deterministic/random",
        "deterministic/adversarial",
        "randomized",
    }
    # The randomized variant uses smaller coresets than the deterministic ones.
    deterministic_size = by_label["deterministic/contiguous"]["coreset_size"]
    assert by_label["randomized"]["coreset_size"] <= deterministic_size
