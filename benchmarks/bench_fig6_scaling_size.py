"""Figure 6 — Scalability with respect to the input size.

Paper setup: the Higgs/Power/Wiki datasets inflated 25/50/100-fold with a
SMOTE-like perturbation (up to 1.1 billion points), randomized MapReduce
algorithm with k=20, z=200, ell=16, coresets of size ``8 (k + 6 z / ell)``.
Expected shape: running time grows linearly with the input size.

At simulation scale the constant-cost final solve (the union-coreset size
does not depend on n) can mask the linear part, so the table reports the
coreset-phase time separately — that is the component whose work is
proportional to the input and whose growth should look linear.

The timed section wraps the largest inflated instance.
"""

from __future__ import annotations

from repro.core import MapReduceKCenterOutliers
from repro.datasets import inflate, inject_outliers
from repro.evaluation import figure6_scaling_size

from .conftest import attach_records, bench_seed

K, Z, ELL, MU = 10, 40, 8, 4
SIZE_FACTORS = (1, 2, 4, 8)


def test_figure6_scaling_size(benchmark, paper_datasets):
    base = {name: points[:500] for name, points in paper_datasets.items()}
    records = figure6_scaling_size(
        base,
        k=K,
        z=Z,
        ell=ELL,
        mu=MU,
        size_factors=SIZE_FACTORS,
        random_state=bench_seed(),
    )

    largest = inject_outliers(
        inflate(base["power"], SIZE_FACTORS[-1], random_state=bench_seed()),
        Z,
        random_state=bench_seed(),
    )

    def run_largest():
        solver = MapReduceKCenterOutliers(
            K, Z, ell=ELL, coreset_multiplier=MU, randomized=True,
            include_log_term=False, random_state=bench_seed(),
        )
        return solver.fit(largest.points)

    benchmark.pedantic(run_largest, rounds=3, iterations=1)

    attach_records(
        benchmark,
        records,
        printed_columns=[
            "dataset", "size_factor", "n_points", "radius",
            "coreset_time_s", "solve_time_s", "time_s", "points_per_s",
        ],
    )

    # Shape check: the coreset-phase work grows with the input size (compare
    # the smallest and largest factor per dataset).
    for dataset_name in base:
        rows = sorted(
            (r for r in records if r["dataset"] == dataset_name),
            key=lambda r: r["size_factor"],
        )
        assert rows[-1]["n_points"] > rows[0]["n_points"]
        assert rows[-1]["coreset_time_s"] >= rows[0]["coreset_time_s"] * 0.8
