"""Figure 3 — Streaming k-center: ratio and throughput vs space.

Paper setup: CORESETSTREAM with space ``mu * k`` vs BASESTREAM ([27]) with
space ``m * k``, mu and m in {1, 2, 4, 8, 16}. Expected shape: both
algorithms reach similar quality; BASESTREAM makes slightly better use of
space, CORESETSTREAM often has higher throughput.

The timed section wraps one full CORESETSTREAM pass (mu = 8) over the
Higgs stand-in.
"""

from __future__ import annotations

from repro.core import CoresetStreamKCenter
from repro.evaluation import figure3_stream_kcenter
from repro.streaming import ArrayStream, StreamingRunner

from .conftest import attach_records, bench_batch_size, bench_seed


def test_figure3_stream_kcenter(benchmark, paper_datasets, bench_k_values):
    records = figure3_stream_kcenter(
        paper_datasets,
        k_values=bench_k_values,
        multipliers=(1, 2, 4, 8, 16),
        base_instances=(1, 2, 4, 8, 16),
        batch_size=bench_batch_size(),
        random_state=bench_seed(),
    )

    dataset = paper_datasets["higgs"]
    k = bench_k_values["higgs"]

    def run_stream():
        algorithm = CoresetStreamKCenter(k, coreset_multiplier=8)
        return StreamingRunner(batch_size=bench_batch_size()).run(
            algorithm, ArrayStream(dataset, shuffle=True, random_state=0)
        )

    benchmark.pedantic(run_stream, rounds=3, iterations=1)

    attach_records(
        benchmark,
        records,
        printed_columns=["dataset", "algorithm", "space_param", "space", "radius", "ratio", "throughput"],
    )

    # Shape checks: space grows with the knob for both algorithms, and the
    # coreset algorithm's quality improves (or stays flat) with more space.
    for dataset_name in paper_datasets:
        coreset_rows = [
            r for r in records
            if r["dataset"] == dataset_name and r["algorithm"] == "CoresetStream"
        ]
        coreset_rows.sort(key=lambda r: r["space_param"])
        assert coreset_rows[-1]["space"] > coreset_rows[0]["space"]
    assert all(record["throughput"] > 0 for record in records)
