"""Ablation — epsilon-driven vs size-driven coreset stopping.

Beyond the paper's figures, this ablation compares the two coreset
stopping rules the library exposes on the same input: the theoretical
``epsilon`` rule (coreset grows until the GMM radius drops below
``(eps/2) r_{T^k}``, adapting to the dataset's doubling dimension) and
the experimental ``mu`` rule (fixed coreset size ``mu * k``). It reports
the coreset sizes each rule produces and the resulting solution quality,
showing that the epsilon rule buys its quality with an input-dependent
(rather than a-priori) amount of memory.
"""

from __future__ import annotations

from repro.core import MapReduceKCenter
from repro.evaluation import ablation_coreset_stopping

from .conftest import attach_records, bench_seed

K, ELL = 15, 8


def test_ablation_coreset_stopping(benchmark, paper_datasets):
    points = paper_datasets["higgs"]
    records = ablation_coreset_stopping(
        points,
        k=K,
        epsilons=(1.0, 0.5, 0.25),
        multipliers=(1, 2, 4, 8),
        ell=ELL,
        random_state=bench_seed(),
    )

    def run_epsilon_rule():
        solver = MapReduceKCenter(K, ell=ELL, epsilon=0.5, random_state=bench_seed())
        return solver.fit(points)

    benchmark.pedantic(run_epsilon_rule, rounds=3, iterations=1)

    attach_records(
        benchmark,
        records,
        printed_columns=["rule", "parameter", "coreset_size", "radius", "ratio"],
    )

    epsilon_rows = sorted(
        (r for r in records if r["rule"] == "epsilon"), key=lambda r: r["parameter"]
    )
    # Smaller epsilon => larger coresets (the doubling-dimension-driven growth).
    assert epsilon_rows[0]["coreset_size"] >= epsilon_rows[-1]["coreset_size"]
    assert all(record["ratio"] >= 1.0 for record in records)
