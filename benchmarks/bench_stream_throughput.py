"""Streaming-engine throughput: batched vs per-point CORESETSTREAM.

This benchmark backs the batched streaming engine with a number: it runs
the same seeded synthetic stream through CORESETSTREAM twice — once
through the classic per-point path (one ``process`` call per point) and
once through the batched path (``process_batch`` over chunks) — and
reports points/second for both, plus their ratio.

The measured trajectory is written to ``BENCH_stream.json`` (override
the location with ``REPRO_BENCH_STREAM_JSON``) so CI can archive the
numbers as an artifact and benchmark history can track them.

Knobs (see ``conftest.py``): ``--stream-points`` (default 100000),
``--batch-size`` (default 1024), ``--seed``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core import CoresetStreamKCenter
from repro.datasets import higgs_like
from repro.streaming import ArrayStream, StreamingRunner

from .conftest import bench_batch_size, bench_seed, stream_points

K = 50
MU = 8
#: Batched throughput must beat per-point by this factor on streams long
#: enough to amortise the warm-up (the acceptance bar of the engine).
MIN_SPEEDUP = 5.0
#: Below this stream length the interpreter warm-up dominates both paths,
#: so only sanity (speedup > 1) is asserted.
FULL_ASSERT_POINTS = 50_000


def _trajectory_path() -> str:
    return os.environ.get("REPRO_BENCH_STREAM_JSON", "BENCH_stream.json")


def _run_once(points: np.ndarray, batch_size: int | None):
    algorithm = CoresetStreamKCenter(K, coreset_multiplier=MU, random_state=bench_seed())
    runner = StreamingRunner(batch_size=batch_size)
    start = time.perf_counter()
    report = runner.run(algorithm, ArrayStream(points))
    elapsed = time.perf_counter() - start
    return report, elapsed


def test_stream_throughput_batched_vs_per_point():
    n = stream_points()
    batch_size = bench_batch_size() or 1024
    points = higgs_like(n, random_state=bench_seed())

    per_point_report, _ = _run_once(points, None)
    batched_report, _ = _run_once(points, batch_size)

    # Identical results: batching is an execution detail, not an algorithm
    # change.
    assert np.array_equal(
        batched_report.result.centers, per_point_report.result.centers
    )
    assert batched_report.n_points == per_point_report.n_points == n

    speedup = batched_report.throughput / per_point_report.throughput
    trajectory = {
        "benchmark": "bench_stream_throughput",
        "algorithm": "CoresetStreamKCenter",
        "k": K,
        "coreset_multiplier": MU,
        "n_points": n,
        "seed": bench_seed(),
        "records": [
            {
                "mode": "per-point",
                "batch_size": 1,
                "stream_time_s": per_point_report.stream_time,
                "points_per_sec": per_point_report.throughput,
            },
            {
                "mode": "batched",
                "batch_size": batch_size,
                "stream_time_s": batched_report.stream_time,
                "points_per_sec": batched_report.throughput,
            },
        ],
        "speedup": speedup,
    }
    with open(_trajectory_path(), "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")

    print()
    print(
        f"stream throughput (n={n}, batch_size={batch_size}): "
        f"per-point {per_point_report.throughput:,.0f} pts/s, "
        f"batched {batched_report.throughput:,.0f} pts/s, "
        f"speedup {speedup:.1f}x"
    )

    assert speedup > 1.0
    if n >= FULL_ASSERT_POINTS:
        assert speedup >= MIN_SPEEDUP, (
            f"batched throughput only {speedup:.2f}x the per-point path "
            f"(need >= {MIN_SPEEDUP}x at n={n})"
        )
