"""Figure 7 — Scalability with respect to the number of processors.

Paper setup: randomized MapReduce algorithm with k=20, z=200, the size of
the *union* of the coresets fixed at ``8 (16 k + 6 z)``, parallelism ell
in {1, 2, 4, 8, 16}; the plot separates the coreset-construction time
(which shrinks super-linearly with ell, since each worker handles
``|S|/ell`` points and builds a coreset a factor ell smaller) from the
constant time of the final OUTLIERSCLUSTER solve.

Three complementary measurements:

* ``test_figure7_scaling_processors`` — the per-reducer accounting view:
  the parallel time of the coreset phase is the slowest round-1 reducer,
  which must decrease as ell grows while the solve time stays constant.
  Runs on whatever backend ``--backend`` selects (serial by default).
* ``test_figure7_true_wallclock_scaling`` — real end-to-end wall-clock
  over 1/2/4 worker pools on a synthetic ``--scaling-points`` instance
  (default 100k points). Requires ``--backend threads`` or
  ``--backend processes``; the speedup assertion additionally needs at
  least 4 CPUs (it is reported either way).
* ``test_figure7_streamed_shuffle_memory`` — the out-of-core shuffle on
  the seeded fig7 configuration: per backend, ``fit`` vs ``fit_stream``
  — on the backend's natural partition tier *and* with
  ``storage="disk"`` spill files — must agree bit for bit while the
  coordinator's accounted working set drops from ``n`` to
  ``O(chunk + coreset)``. Emits points/sec, spilled bytes, the exact
  coordinator accounting and the process peak RSS to
  ``BENCH_mapreduce.json`` (override with ``REPRO_BENCH_MAPREDUCE_JSON``)
  so CI can archive the trajectory, tracking the disk tier from day one.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.core import MapReduceKCenterOutliers
from repro.datasets import inject_outliers
from repro.evaluation import (
    figure7_scaling_processors,
    figure7_wallclock_scaling,
    format_records,
)
from repro.streaming import ArrayStream

from .conftest import (
    attach_records,
    bench_backend,
    bench_seed,
    bench_storage,
    scaling_points,
)

K, Z = 10, 60
ELLS = (1, 2, 4, 8, 16)

MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "1.5"))


def test_figure7_scaling_processors(benchmark, paper_datasets):
    records = figure7_scaling_processors(
        paper_datasets,
        k=K,
        z=Z,
        ells=ELLS,
        union_multiplier=8.0,
        backend=bench_backend(),
        random_state=bench_seed(),
    )

    injected = inject_outliers(paper_datasets["power"], Z, random_state=bench_seed())

    def run_ell16():
        solver = MapReduceKCenterOutliers(
            K, Z, ell=16, coreset_multiplier=8, randomized=True,
            include_log_term=False, random_state=bench_seed(),
            backend=bench_backend(),
        )
        return solver.fit(injected.points)

    benchmark.pedantic(run_ell16, rounds=3, iterations=1)

    attach_records(
        benchmark,
        records,
        printed_columns=[
            "dataset", "ell", "backend", "per_partition_coreset", "union_coreset_size",
            "radius", "coreset_time_parallel_s", "coreset_time_total_s", "solve_time_s",
        ],
    )

    for dataset_name in paper_datasets:
        rows = sorted(
            (r for r in records if r["dataset"] == dataset_name),
            key=lambda r: r["ell"],
        )
        # The parallel coreset time (slowest reducer) at ell=16 is below the ell=1 time.
        assert rows[-1]["coreset_time_parallel_s"] <= rows[0]["coreset_time_parallel_s"] + 1e-6
        # The final solve runs on a union of roughly constant size, so its
        # cost does not explode with ell.
        solve_times = np.array([r["solve_time_s"] for r in rows])
        assert solve_times.max() <= max(10 * solve_times.min(), solve_times.min() + 0.5)


def _mapreduce_trajectory_path() -> str:
    return os.environ.get("REPRO_BENCH_MAPREDUCE_JSON", "BENCH_mapreduce.json")


def _peak_rss_kib() -> int:
    """Process high-water RSS in KiB (monotonic; observational only)."""
    try:
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except Exception:  # pragma: no cover - non-POSIX fallback
        return 0


def test_figure7_streamed_shuffle_memory(paper_datasets):
    """Out-of-core shuffle: bit-identical to in-memory, coordinator O(chunk + coreset)."""
    k, z, ell, chunk_size = K, Z, 8, 256
    points = inject_outliers(
        paper_datasets["power"], Z, random_state=bench_seed()
    ).points
    n = points.shape[0]

    records = []
    for backend in ("serial", "threads", "processes"):
        def solver():
            # mu = 1 keeps the coreset union well below n at smoke scale so
            # the coordinator-memory separation is visible; at paper scale
            # (millions of points) any mu leaves union << n.
            return MapReduceKCenterOutliers(
                k, z, ell=ell, coreset_multiplier=1, randomized=True,
                include_log_term=False, random_state=bench_seed(),
                backend=backend, max_workers=2,
            )

        start = time.perf_counter()
        in_memory = solver().fit(points)
        in_memory_s = time.perf_counter() - start

        start = time.perf_counter()
        streamed = solver().fit_stream(
            ArrayStream(points), chunk_size=chunk_size, storage=bench_storage()
        )
        streamed_s = time.perf_counter() - start

        start = time.perf_counter()
        spilled = solver().fit_stream(
            ArrayStream(points), chunk_size=chunk_size, storage="disk"
        )
        spilled_s = time.perf_counter() - start

        # The acceptance contract: identical solutions, bounded coordinator —
        # on the in-memory partition tier and on the spill-to-disk tier alike.
        for variant in (streamed, spilled):
            np.testing.assert_array_equal(
                variant.center_indices, in_memory.center_indices
            )
            assert variant.radius == in_memory.radius
            np.testing.assert_array_equal(
                variant.outlier_indices, in_memory.outlier_indices
            )
            assert variant.stats.coordinator_peak_items <= max(
                chunk_size, variant.coreset_size
            )
            if max(chunk_size, variant.coreset_size) < n:
                assert variant.stats.coordinator_peak_items < n
        assert in_memory.stats.coordinator_peak_items >= n
        assert spilled.stats.storage_tier == "disk"
        assert spilled.stats.spilled_bytes > 0

        for mode, result, elapsed in (
            ("in-memory", in_memory, in_memory_s),
            ("streamed", streamed, streamed_s),
            ("streamed-disk", spilled, spilled_s),
        ):
            records.append({
                "backend": backend,
                "mode": mode,
                "chunk_size": chunk_size if mode != "in-memory" else None,
                "storage": result.stats.storage_tier or "n/a",
                "spilled_bytes": result.stats.spilled_bytes,
                "n_points": n,
                "radius": float(result.radius),
                "points_per_sec": n / elapsed if elapsed > 0 else float("inf"),
                "wall_time_s": elapsed,
                "peak_local_memory": result.stats.peak_local_memory,
                "coordinator_peak_items": result.stats.coordinator_peak_items,
                "peak_working_memory": result.peak_working_memory_size,
                "coordinator_peak_rss_kib": _peak_rss_kib(),
            })

    trajectory = {
        "benchmark": "bench_fig7_streamed_shuffle",
        "k": k,
        "z": z,
        "ell": ell,
        "chunk_size": chunk_size,
        "n_points": n,
        "seed": bench_seed(),
        "records": records,
    }
    with open(_mapreduce_trajectory_path(), "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")

    print()
    print(format_records(
        records,
        columns=["backend", "mode", "storage", "points_per_sec", "spilled_bytes",
                 "coordinator_peak_items", "peak_local_memory", "peak_working_memory",
                 "coordinator_peak_rss_kib"],
    ))


def test_figure7_true_wallclock_scaling():
    backend = bench_backend()
    if backend in (None, "serial"):
        pytest.skip("pass --backend threads|processes to measure true wall-clock scaling")

    records = figure7_wallclock_scaling(
        scaling_points(),
        k=K,
        z=Z,
        workers=(1, 2, 4),
        backend=backend,
        random_state=bench_seed(),
    )
    print()
    print(format_records(
        records,
        columns=["backend", "workers", "ell", "n_points", "radius",
                 "coreset_time_total_s", "wall_time_s", "speedup"],
    ))

    # The solution must not depend on the worker count (shared seed).
    radii = {r["radius"] for r in records}
    assert len(radii) == 1

    speedup_at_4 = next(r["speedup"] for r in records if r["workers"] == 4)
    if (os.cpu_count() or 1) >= 4:
        assert speedup_at_4 > MIN_SPEEDUP, (
            f"expected > {MIN_SPEEDUP}x wall-clock speedup at 4 workers, "
            f"got {speedup_at_4:.2f}x"
        )
