"""Figure 7 — Scalability with respect to the number of processors.

Paper setup: randomized MapReduce algorithm with k=20, z=200, the size of
the *union* of the coresets fixed at ``8 (16 k + 6 z)``, parallelism ell
in {1, 2, 4, 8, 16}; the plot separates the coreset-construction time
(which shrinks super-linearly with ell, since each worker handles
``|S|/ell`` points and builds a coreset a factor ell smaller) from the
constant time of the final OUTLIERSCLUSTER solve.

The simulated parallel time of the coreset phase is the slowest
round-1 reducer; the benchmark checks that it decreases as ell grows and
that the solve time stays roughly constant.
"""

from __future__ import annotations

import numpy as np

from repro.core import MapReduceKCenterOutliers
from repro.datasets import inject_outliers
from repro.evaluation import figure7_scaling_processors

from .conftest import attach_records, bench_seed

K, Z = 10, 60
ELLS = (1, 2, 4, 8, 16)


def test_figure7_scaling_processors(benchmark, paper_datasets):
    records = figure7_scaling_processors(
        paper_datasets,
        k=K,
        z=Z,
        ells=ELLS,
        union_multiplier=8.0,
        random_state=bench_seed(),
    )

    injected = inject_outliers(paper_datasets["power"], Z, random_state=bench_seed())

    def run_ell16():
        solver = MapReduceKCenterOutliers(
            K, Z, ell=16, coreset_multiplier=8, randomized=True,
            include_log_term=False, random_state=bench_seed(),
        )
        return solver.fit(injected.points)

    benchmark.pedantic(run_ell16, rounds=3, iterations=1)

    attach_records(
        benchmark,
        records,
        printed_columns=[
            "dataset", "ell", "per_partition_coreset", "union_coreset_size",
            "radius", "coreset_time_parallel_s", "coreset_time_total_s", "solve_time_s",
        ],
    )

    for dataset_name in paper_datasets:
        rows = sorted(
            (r for r in records if r["dataset"] == dataset_name),
            key=lambda r: r["ell"],
        )
        # The (simulated) parallel coreset time at ell=16 is below the ell=1 time.
        assert rows[-1]["coreset_time_parallel_s"] <= rows[0]["coreset_time_parallel_s"] + 1e-6
        # The final solve runs on a union of roughly constant size, so its
        # cost does not explode with ell.
        solve_times = np.array([r["solve_time_s"] for r in rows])
        assert solve_times.max() <= max(10 * solve_times.min(), solve_times.min() + 0.5)
