"""Figure 7 — Scalability with respect to the number of processors.

Paper setup: randomized MapReduce algorithm with k=20, z=200, the size of
the *union* of the coresets fixed at ``8 (16 k + 6 z)``, parallelism ell
in {1, 2, 4, 8, 16}; the plot separates the coreset-construction time
(which shrinks super-linearly with ell, since each worker handles
``|S|/ell`` points and builds a coreset a factor ell smaller) from the
constant time of the final OUTLIERSCLUSTER solve.

Two complementary measurements:

* ``test_figure7_scaling_processors`` — the per-reducer accounting view:
  the parallel time of the coreset phase is the slowest round-1 reducer,
  which must decrease as ell grows while the solve time stays constant.
  Runs on whatever backend ``--backend`` selects (serial by default).
* ``test_figure7_true_wallclock_scaling`` — real end-to-end wall-clock
  over 1/2/4 worker pools on a synthetic ``--scaling-points`` instance
  (default 100k points). Requires ``--backend threads`` or
  ``--backend processes``; the speedup assertion additionally needs at
  least 4 CPUs (it is reported either way).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import MapReduceKCenterOutliers
from repro.datasets import inject_outliers
from repro.evaluation import (
    figure7_scaling_processors,
    figure7_wallclock_scaling,
    format_records,
)

from .conftest import attach_records, bench_backend, bench_seed, scaling_points

K, Z = 10, 60
ELLS = (1, 2, 4, 8, 16)

MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "1.5"))


def test_figure7_scaling_processors(benchmark, paper_datasets):
    records = figure7_scaling_processors(
        paper_datasets,
        k=K,
        z=Z,
        ells=ELLS,
        union_multiplier=8.0,
        backend=bench_backend(),
        random_state=bench_seed(),
    )

    injected = inject_outliers(paper_datasets["power"], Z, random_state=bench_seed())

    def run_ell16():
        solver = MapReduceKCenterOutliers(
            K, Z, ell=16, coreset_multiplier=8, randomized=True,
            include_log_term=False, random_state=bench_seed(),
            backend=bench_backend(),
        )
        return solver.fit(injected.points)

    benchmark.pedantic(run_ell16, rounds=3, iterations=1)

    attach_records(
        benchmark,
        records,
        printed_columns=[
            "dataset", "ell", "backend", "per_partition_coreset", "union_coreset_size",
            "radius", "coreset_time_parallel_s", "coreset_time_total_s", "solve_time_s",
        ],
    )

    for dataset_name in paper_datasets:
        rows = sorted(
            (r for r in records if r["dataset"] == dataset_name),
            key=lambda r: r["ell"],
        )
        # The parallel coreset time (slowest reducer) at ell=16 is below the ell=1 time.
        assert rows[-1]["coreset_time_parallel_s"] <= rows[0]["coreset_time_parallel_s"] + 1e-6
        # The final solve runs on a union of roughly constant size, so its
        # cost does not explode with ell.
        solve_times = np.array([r["solve_time_s"] for r in rows])
        assert solve_times.max() <= max(10 * solve_times.min(), solve_times.min() + 0.5)


def test_figure7_true_wallclock_scaling():
    backend = bench_backend()
    if backend in (None, "serial"):
        pytest.skip("pass --backend threads|processes to measure true wall-clock scaling")

    records = figure7_wallclock_scaling(
        scaling_points(),
        k=K,
        z=Z,
        workers=(1, 2, 4),
        backend=backend,
        random_state=bench_seed(),
    )
    print()
    print(format_records(
        records,
        columns=["backend", "workers", "ell", "n_points", "radius",
                 "coreset_time_total_s", "wall_time_s", "speedup"],
    ))

    # The solution must not depend on the worker count (shared seed).
    radii = {r["radius"] for r in records}
    assert len(radii) == 1

    speedup_at_4 = next(r["speedup"] for r in records if r["workers"] == 4)
    if (os.cpu_count() or 1) >= 4:
        assert speedup_at_4 > MIN_SPEEDUP, (
            f"expected > {MIN_SPEEDUP}x wall-clock speedup at 4 workers, "
            f"got {speedup_at_4:.2f}x"
        )
