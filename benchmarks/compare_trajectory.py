"""Compare benchmark trajectories across nightly runs and warn on regressions.

The nightly workflow (``.github/workflows/nightly.yml``) runs the
full-scale streaming and fig7-shuffle benchmarks, which write
``BENCH_stream.json`` and ``BENCH_mapreduce.json``. This script diffs
the throughput metrics (``points_per_sec``) of the current run against
the previous run's archived files and reports any metric that dropped by
more than the threshold (default 20%). It is intentionally
*non-blocking*: wall-clock on shared runners is noisy, so a regression
produces a GitHub ``::warning::`` annotation (and a non-zero exit only
under ``--fail-on-regression``), never a red nightly on its own.

Usage::

    python benchmarks/compare_trajectory.py \
        --previous bench-previous --current . --threshold 0.20

A missing previous trajectory (the first nightly run, or an expired
cache) is not an error: the script reports that there is no baseline and
exits 0 so the current run can become the next baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Iterable

#: The trajectory files a nightly run produces, relative to the run dir.
TRAJECTORY_FILES = ("BENCH_stream.json", "BENCH_mapreduce.json")


def extract_metrics(document: dict) -> dict[str, float]:
    """Flatten one benchmark JSON into ``{metric_name: points_per_sec}``.

    Metric names combine the benchmark name with each record's
    identifying fields (backend, mode, storage, batch size), so the same
    configuration lines up across runs regardless of record order.
    """
    benchmark = str(document.get("benchmark", "unknown"))
    metrics: dict[str, float] = {}
    for record in document.get("records", []):
        if not isinstance(record, dict) or "points_per_sec" not in record:
            continue
        parts = [benchmark]
        for field in ("backend", "mode", "storage", "batch_size"):
            value = record.get(field)
            if value not in (None, "n/a"):
                parts.append(f"{field}={value}")
        metrics["/".join(parts)] = float(record["points_per_sec"])
    return metrics


def load_metrics(directory: str) -> dict[str, float]:
    """Union of the metrics of every trajectory file present in ``directory``."""
    metrics: dict[str, float] = {}
    for name in TRAJECTORY_FILES:
        path = os.path.join(directory, name)
        if not os.path.exists(path):
            continue
        with open(path) as handle:
            metrics.update(extract_metrics(json.load(handle)))
    return metrics


def compare(
    previous: dict[str, float],
    current: dict[str, float],
    threshold: float,
) -> list[dict]:
    """Diff two metric sets; a metric regressed when it lost > ``threshold``.

    Only metrics present in both runs are compared (a renamed or new
    benchmark has no baseline). Each row reports the previous and
    current points/sec, the ratio, and whether it crossed the threshold.
    """
    rows = []
    for name in sorted(set(previous) & set(current)):
        before, after = previous[name], current[name]
        ratio = after / before if before > 0 else float("inf")
        rows.append({
            "metric": name,
            "previous": before,
            "current": after,
            "ratio": ratio,
            "regressed": ratio < 1.0 - threshold,
        })
    return rows


def format_report(rows: Iterable[dict]) -> str:
    lines = [f"{'metric':<70} {'previous':>12} {'current':>12} {'ratio':>7}"]
    for row in rows:
        flag = "  << REGRESSED" if row["regressed"] else ""
        lines.append(
            f"{row['metric']:<70} {row['previous']:>12.1f} "
            f"{row['current']:>12.1f} {row['ratio']:>7.2f}{flag}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--previous", required=True,
        help="directory holding the previous run's BENCH_*.json files",
    )
    parser.add_argument(
        "--current", default=".",
        help="directory holding the current run's BENCH_*.json files",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.20,
        help="relative points/sec drop that counts as a regression (default 0.20)",
    )
    parser.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit 1 when any metric regressed (default: warn only)",
    )
    args = parser.parse_args(argv)

    current = load_metrics(args.current)
    if not current:
        print(f"no trajectory files found under {args.current!r}; nothing to compare")
        return 0
    previous = load_metrics(args.previous)
    if not previous:
        print(
            f"no baseline under {args.previous!r} (first run or expired cache); "
            f"the current trajectory becomes the next baseline"
        )
        return 0

    rows = compare(previous, current, args.threshold)
    if not rows:
        print("no overlapping metrics between the two runs")
        return 0
    print(format_report(rows))
    regressions = [row for row in rows if row["regressed"]]
    for row in regressions:
        # GitHub Actions warning annotation; visible even on a green job.
        print(
            f"::warning title=benchmark regression::{row['metric']} dropped to "
            f"{row['ratio']:.0%} of the previous nightly "
            f"({row['previous']:.0f} -> {row['current']:.0f} points/sec)"
        )
    if regressions and args.fail_on_regression:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
