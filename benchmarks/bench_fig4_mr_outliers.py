"""Figure 4 — MapReduce k-center with outliers: deterministic vs randomized.

Paper setup: k=20, z=200 planted outliers, ell=16, adversarial placement
of all outliers in one partition; deterministic coresets of size
``mu (k + z)`` and randomized coresets of size ``mu (k + 6 z / ell)``,
mu in {1, 2, 4, 8}. Expected shape: quality improves sharply with mu for
the deterministic variant (which suffers at mu=1 under the adversarial
placement), the randomized variant reaches comparable quality with much
smaller coresets and lower running time.

The benchmark uses larger stand-ins than the other figures (the
deterministic/randomized coreset-size gap only exists while
``mu (k + z)`` stays below the partition size ``n / ell``); k, z and ell
are scaled so that this relationship matches the paper's regime. The
timed section wraps one randomized run at mu=8.
"""

from __future__ import annotations

import pytest

from repro.core import MapReduceKCenterOutliers
from repro.datasets import inflate, inject_outliers
from repro.evaluation import figure4_mr_outliers

from .conftest import attach_records, bench_seed


K, Z, ELL = 10, 30, 8
INFLATION = 2.0  # grow the shared stand-ins so partitions dwarf the coresets


@pytest.fixture(scope="module")
def figure4_datasets(paper_datasets):
    return {
        name: inflate(points, INFLATION, random_state=bench_seed())
        for name, points in paper_datasets.items()
    }


def test_figure4_mr_outliers(benchmark, figure4_datasets):
    records = figure4_mr_outliers(
        figure4_datasets,
        k=K,
        z=Z,
        ell=ELL,
        multipliers=(1, 2, 4, 8),
        random_state=bench_seed(),
    )

    injected = inject_outliers(figure4_datasets["power"], Z, random_state=bench_seed())

    def run_randomized():
        solver = MapReduceKCenterOutliers(
            K, Z, ell=ELL, coreset_multiplier=8, randomized=True,
            include_log_term=False, random_state=bench_seed(),
        )
        return solver.fit(injected.points)

    benchmark.pedantic(run_randomized, rounds=3, iterations=1)

    attach_records(
        benchmark,
        records,
        printed_columns=[
            "dataset", "variant", "mu", "radius", "ratio",
            "coreset_size", "coreset_time_s", "solve_time_s",
        ],
    )

    det_mu1_ratios, det_mu8_ratios = [], []
    for dataset_name in figure4_datasets:
        rows = [r for r in records if r["dataset"] == dataset_name]
        det = {r["mu"]: r for r in rows if r["variant"] == "deterministic"}
        rand = {r["mu"]: r for r in rows if r["variant"] == "randomized"}
        det_mu1_ratios.append(det[1.0]["ratio"])
        det_mu8_ratios.append(det[8.0]["ratio"])
        # The randomized variant uses smaller coresets than the deterministic
        # one at the same mu (z' = 6 z / ell < z).
        assert rand[8.0]["coreset_size"] < det[8.0]["coreset_size"]
        # Every configuration stays within a sane factor of the best run.
        assert all(r["ratio"] <= 2.0 for r in rows)
    # Deterministic quality improves (on average over the datasets) from mu=1
    # to mu=8 under adversarial placement. The gap is muted at simulation
    # scale — see EXPERIMENTS.md — so the check uses a small slack rather
    # than the strict per-dataset ordering the paper's Figure 4 exhibits.
    mean_mu1 = sum(det_mu1_ratios) / len(det_mu1_ratios)
    mean_mu8 = sum(det_mu8_ratios) / len(det_mu8_ratios)
    assert mean_mu8 <= mean_mu1 + 0.05
