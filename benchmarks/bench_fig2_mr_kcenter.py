"""Figure 2 — MapReduce k-center: approximation ratio vs coreset size and parallelism.

Paper setup: Higgs (k=50), Power (k=100), Wiki (k=60); coresets of size
``mu * k`` with mu in {1, 2, 4, 8}; parallelism ell in {2, 4, 8, 16};
``mu = 1`` is the MALKOMESETAL baseline. Expected shape: the ratio
decreases monotonically (on average) as mu grows, and larger ell also
helps because the union coreset grows.

This benchmark reproduces the same grid on scaled-down stand-ins and
reports the per-configuration ratio table; the benchmark timing wraps a
single representative configuration (mu=8, ell=8) so pytest-benchmark
also tracks the algorithm's runtime across revisions.
"""

from __future__ import annotations

from repro.core import MapReduceKCenter
from repro.evaluation import figure2_mr_kcenter, summarize_series

from .conftest import attach_records, bench_seed


def test_figure2_mr_kcenter(benchmark, paper_datasets, bench_k_values):
    records = figure2_mr_kcenter(
        paper_datasets,
        k_values=bench_k_values,
        multipliers=(1, 2, 4, 8),
        ells=(2, 4, 8, 16),
        random_state=bench_seed(),
    )

    # Representative timed configuration.
    dataset = paper_datasets["higgs"]
    k = bench_k_values["higgs"]
    solver = MapReduceKCenter(k, ell=8, coreset_multiplier=8, random_state=bench_seed())
    benchmark.pedantic(lambda: solver.fit(dataset), rounds=3, iterations=1)

    attach_records(
        benchmark,
        records,
        printed_columns=["dataset", "ell", "mu", "radius", "ratio", "coreset_size", "local_memory"],
    )

    # Shape check mirroring the paper's claim: averaged over datasets and
    # parallelism, mu = 8 is at least as good as the mu = 1 baseline.
    by_mu = summarize_series(records, group_by="mu", value="ratio")
    assert by_mu[8.0] <= by_mu[1.0] + 0.02
    assert all(record["ratio"] >= 1.0 for record in records)
